"""Shared fixtures for the paper-figure benchmarks.

Scale is controlled by ``REPRO_SCALE`` (``tiny`` / ``small`` / ``paper``;
default ``small`` — see ``repro.bench.config``).  Every benchmark writes
its data table to ``benchmarks/results/<experiment>.txt`` so the numbers
cited in EXPERIMENTS.md are regenerated artifacts, not copy-paste.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.config import get_profile
from repro.bench.report import ascii_chart, format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir, profile):
    """Persist an ExperimentResult table (and chart) and echo it."""

    def _record(result, chart_x: str | None = None,
                chart_series: tuple[str, ...] = ()) -> None:
        lines = [f"# {result.experiment} (profile: {profile.name})"]
        for key, value in result.meta.items():
            lines.append(f"#   {key}: {value}")
        lines.append(format_table(result.rows))
        if chart_x and chart_series and len(result.rows) > 1:
            series = {name: [row.get(name) for row in result.rows]
                      for name in chart_series}
            lines.append("")
            lines.append(ascii_chart(
                [row[chart_x] for row in result.rows], series,
                title=f"{result.experiment} (log scale)"))
        text = "\n".join(lines)
        path = results_dir / f"{result.experiment}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _record


def comparable_rows(rows):
    """Rows where both solvers actually ran."""
    return [row for row in rows
            if row.get("maxfirst_s") and row.get("maxoverlap_s")]


def assert_scores_agree(rows):
    for row in rows:
        if row.get("maxoverlap_score") is None:
            continue
        a, b = row["maxfirst_score"], row["maxoverlap_score"]
        assert abs(a - b) <= 1e-6 * max(1.0, abs(a)), \
            f"solver scores disagree: {row}"
