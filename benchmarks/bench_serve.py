"""Serve-layer benchmark: queries/sec against a published instance.

Publishes the scripted workload instance (:mod:`repro.serve.workload`)
once, then times batched request rounds against it through two arms:

* ``inprocess`` — :class:`~repro.serve.service.QueryService` called
  directly (no socket, no pool): the ceiling the front end is measured
  against.
* ``socket``    — a real ``repro serve`` daemon subprocess on an
  ephemeral port, driven through
  :class:`~repro.serve.client.ServeClient`: JSON codec + HTTP + batch
  scheduler included, which is the number a deployment sees.

Each round replays the same mixed batch (a full BRkNN sweep over all
sites plus a what-if grid); queries/sec is requests divided by the
**best** round time.  Every response of the first round is asserted
**bit-identical** to a direct in-process :mod:`repro.core.queries`
call on the same problem — a throughput number obtained by answering
differently is a bug, not a result.

Run:

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --tiny   # CI smoke

Writes ``BENCH_serve.json`` (see ``--out``); the headline is
``headline.socket_qps``.  Timings move with the machine; the identity
assertions and per-batch counter behaviour must not move at all.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.queries import (brknn_of_site, impact_of_new_site,
                                knn_sites)
from repro.serve.client import ServeClient
from repro.serve.protocol import (BrknnRequest, BrknnResponse,
                                  ImpactRequest, ImpactResponse)
from repro.serve.service import QueryService
from repro.serve.smoke import _boot_daemon
from repro.serve.workload import publish_doc, tiny_problem


def _bench_batch(instance_id: str, n_sites: int) -> list:
    """The timed batch: BRkNN of every site + a 4x4 what-if grid."""
    batch: list = [BrknnRequest(instance_id, j) for j in range(n_sites)]
    batch += [ImpactRequest(instance_id, 12.5 * i, 12.5 * j)
              for i in range(1, 5) for j in range(1, 5)]
    return batch


def _assert_identity(batch, responses, problem, ranks) -> None:
    for request, response in zip(batch, responses):
        if isinstance(request, BrknnRequest):
            direct = brknn_of_site(problem, request.site, ranks=ranks)
            assert isinstance(response, BrknnResponse), response
            assert response.members == direct.members
            assert response.influence == direct.influence
        else:
            direct = impact_of_new_site(problem, request.x, request.y,
                                        ranks=ranks)
            assert isinstance(response, ImpactResponse), response
            assert response.gain == direct.gain
            assert response.customer_ranks == direct.customer_ranks
            assert response.incumbent_losses == direct.incumbent_losses


def _time_rounds(run_batch, batch_size: int, rounds: int) -> dict:
    best = float("inf")
    total = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        run_batch()
        elapsed = time.perf_counter() - t0
        total += elapsed
        if elapsed < best:
            best = elapsed
    return {
        "rounds": rounds,
        "batch_requests": batch_size,
        "best_round_s": round(best, 6),
        "mean_round_s": round(total / rounds, 6),
        "qps": round(batch_size / best, 1),
    }


def run(rounds: int = 20, workers: int | None = None) -> dict:
    problem = tiny_problem()
    ranks = knn_sites(problem)
    n_sites = problem.n_sites
    rows = []

    # -- in-process arm -------------------------------------------------- #
    with QueryService(store="ram", workers=workers) as service:
        instance = service.publish(problem)
        batch = _bench_batch(instance.instance_id, n_sites)
        responses = service.execute(batch)          # warm-up + identity
        _assert_identity(batch, responses, problem, ranks)
        row = {"arm": "inprocess",
               **_time_rounds(lambda: service.execute(batch),
                              len(batch), rounds)}
    rows.append(row)
    print(f"  inprocess: {row['qps']:>9.1f} queries/s "
          f"(batch={row['batch_requests']}, "
          f"best={row['best_round_s']:.4f}s)")

    # -- socket arm ------------------------------------------------------ #
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
    os.makedirs(out_dir, exist_ok=True)
    proc, host, port = _boot_daemon(out_dir, "shm", workers)
    try:
        with ServeClient(host, port) as client:
            instance_id = client.publish(publish_doc("shm"))
            batch = _bench_batch(instance_id, n_sites)
            responses = client.query(batch)         # warm-up + identity
            _assert_identity(batch, responses, problem, ranks)
            row = {"arm": "socket",
                   **_time_rounds(lambda: client.query(batch),
                                  len(batch), rounds)}
            client.shutdown()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    rows.append(row)
    print(f"  socket:    {row['qps']:>9.1f} queries/s "
          f"(batch={row['batch_requests']}, "
          f"best={row['best_round_s']:.4f}s)")

    by_arm = {r["arm"]: r for r in rows}
    return {
        "benchmark": "serve",
        "workload": ("fig11-tiny instance (800 uniform customers, "
                     "40 sites, k=2, seed 11); batch = BRkNN of every "
                     "site + 4x4 what-if grid"),
        "timing": "best round of N; identity asserted on round 1",
        "rounds": rounds,
        "workers": workers,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "identity": ("every round-1 response bit-identical to direct "
                     "in-process repro.core.queries calls"),
        "headline": {
            "socket_qps": by_arm["socket"]["qps"],
            "inprocess_qps": by_arm["inprocess"]["qps"],
            "socket_overhead": round(
                by_arm["inprocess"]["qps"] / by_arm["socket"]["qps"], 2),
        },
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20,
                        help="timed rounds per arm (best is reported)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool workers for the service (default: "
                             "in-process execution)")
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke: 5 rounds")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_serve.json"))
    args = parser.parse_args(argv)
    rounds = 5 if args.tiny else args.rounds
    report = run(rounds=rounds, workers=args.workers)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nsocket throughput: {report['headline']['socket_qps']:.1f} "
          f"queries/s ({report['headline']['socket_overhead']:.2f}x "
          "in-process)")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
