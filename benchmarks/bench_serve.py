"""Serve-layer benchmark: queries/sec against a published instance.

Publishes the scripted workload instance (:mod:`repro.serve.workload`)
once, then times batched request rounds against it through four arms:

* ``inprocess_cold`` — :class:`~repro.serve.service.QueryService` with
  the result cache disabled (``cache_bytes=0``): every round pays the
  full geometric computation.  The ceiling the serve path is measured
  against.
* ``inprocess_warm`` — the same service with the default cache,
  prewarmed by one untimed round: every timed round answers from the
  result cache.  This is the repeat-read number the cache exists for.
* ``socket_cold``    — a real ``repro serve --cache-bytes 0`` daemon
  subprocess on an ephemeral port, driven through the persistent
  :class:`~repro.serve.client.ServeClient` connection: JSON codec +
  HTTP/1.1 keep-alive + batch scheduler, recomputing every round.
* ``socket_warm``    — the same daemon shape with the default cache,
  prewarmed: what a deployment sees on repeated reads.

Each round replays the same mixed batch (a full BRkNN sweep over all
sites plus a what-if grid); queries/sec is requests divided by the
**best** round time.  Before any timing, cold responses are asserted
**bit-identical** to direct in-process :mod:`repro.core.queries` calls,
and warm (cached) responses are asserted byte-identical to the cold
ones — a throughput number obtained by answering differently is a bug,
not a result.  The report refuses to write unless the warm in-process
arm is at least 5x the cold one.

Run:

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --tiny   # CI smoke

Writes ``BENCH_serve.json`` (see ``--out``); the headline is
``headline.warm_inprocess_qps``.  Timings move with the machine; the
identity assertions and the >=5x cache floor must not move at all.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.queries import (brknn_of_site, impact_of_new_site,
                                knn_sites)
from repro.serve.client import ServeClient
from repro.serve.protocol import (BrknnRequest, BrknnResponse,
                                  ImpactRequest, ImpactResponse)
from repro.serve.service import QueryService
from repro.serve.smoke import _boot_daemon, _canonical
from repro.serve.workload import publish_doc, tiny_problem

MIN_CACHE_SPEEDUP = 5.0


def _bench_batch(instance_id: str, n_sites: int) -> list:
    """The timed batch: BRkNN of every site + a 4x4 what-if grid."""
    batch: list = [BrknnRequest(instance_id, j) for j in range(n_sites)]
    batch += [ImpactRequest(instance_id, 12.5 * i, 12.5 * j)
              for i in range(1, 5) for j in range(1, 5)]
    return batch


def _assert_identity(batch, responses, problem, ranks) -> None:
    for request, response in zip(batch, responses):
        if isinstance(request, BrknnRequest):
            direct = brknn_of_site(problem, request.site, ranks=ranks)
            assert isinstance(response, BrknnResponse), response
            assert response.members == direct.members
            assert response.influence == direct.influence
        else:
            direct = impact_of_new_site(problem, request.x, request.y,
                                        ranks=ranks)
            assert isinstance(response, ImpactResponse), response
            assert response.gain == direct.gain
            assert response.customer_ranks == direct.customer_ranks
            assert response.incumbent_losses == direct.incumbent_losses


def _time_rounds(run_batch, batch_size: int, rounds: int) -> dict:
    best = float("inf")
    total = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        run_batch()
        elapsed = time.perf_counter() - t0
        total += elapsed
        if elapsed < best:
            best = elapsed
    return {
        "rounds": rounds,
        "batch_requests": batch_size,
        "best_round_s": round(best, 6),
        "mean_round_s": round(total / rounds, 6),
        "qps": round(batch_size / best, 1),
    }


def _print_row(row: dict) -> None:
    print(f"  {row['arm']:<15} {row['qps']:>11.1f} queries/s "
          f"(batch={row['batch_requests']}, "
          f"best={row['best_round_s']:.4f}s)")


def run(rounds: int = 20, workers: int | None = None) -> dict:
    problem = tiny_problem()
    ranks = knn_sites(problem)
    n_sites = problem.n_sites
    rows = []

    # -- in-process arms ------------------------------------------------- #
    with QueryService(store="ram", workers=workers,
                      cache_bytes=0) as service:
        instance = service.publish(problem)
        batch = _bench_batch(instance.instance_id, n_sites)
        cold = service.execute(batch)               # warm-up + identity
        _assert_identity(batch, cold, problem, ranks)
        blessed = [_canonical(r) for r in cold]
        row = {"arm": "inprocess_cold",
               **_time_rounds(lambda: service.execute(batch),
                              len(batch), rounds)}
    rows.append(row)
    _print_row(row)

    with QueryService(store="ram", workers=workers) as service:
        instance = service.publish(problem)
        batch = _bench_batch(instance.instance_id, n_sites)
        miss_pass = service.execute(batch)          # fills the cache
        hit_pass = service.execute(batch)           # answered from it
        # Bit-identity before timing: cached bytes == fresh bytes.
        assert [_canonical(r) for r in miss_pass] == blessed
        assert [_canonical(r) for r in hit_pass] == blessed
        row = {"arm": "inprocess_warm",
               **_time_rounds(lambda: service.execute(batch),
                              len(batch), rounds)}
    rows.append(row)
    _print_row(row)

    # -- socket arms ----------------------------------------------------- #
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
    os.makedirs(out_dir, exist_ok=True)
    for arm, cache_bytes in (("socket_cold", 0), ("socket_warm", None)):
        proc, host, port = _boot_daemon(out_dir, "shm", workers,
                                        cache_bytes=cache_bytes)
        try:
            with ServeClient(host, port) as client:
                instance_id = client.publish(publish_doc("shm"))
                batch = _bench_batch(instance_id, n_sites)
                first = client.query(batch)         # warm-up + identity
                _assert_identity(batch, first, problem, ranks)
                assert [_canonical(r) for r in first] == blessed
                row = {"arm": arm,
                       **_time_rounds(lambda: client.query(batch),
                                      len(batch), rounds)}
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        rows.append(row)
        _print_row(row)

    by_arm = {r["arm"]: r for r in rows}
    speedup = round(by_arm["inprocess_warm"]["qps"]
                    / by_arm["inprocess_cold"]["qps"], 2)
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"warm in-process arm is only {speedup}x the cold arm "
        f"(floor {MIN_CACHE_SPEEDUP}x)")
    return {
        "benchmark": "serve",
        "workload": ("fig11-tiny instance (800 uniform customers, "
                     "40 sites, k=2, seed 11); batch = BRkNN of every "
                     "site + 4x4 what-if grid"),
        "timing": ("best round of N; cold identity vs repro.core."
                   "queries and warm byte-identity vs cold asserted "
                   "before timing"),
        "rounds": rounds,
        "workers": workers,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "identity": ("cold responses bit-identical to direct in-process "
                     "repro.core.queries calls; cached responses "
                     "byte-identical to cold ones"),
        "headline": {
            "warm_inprocess_qps": by_arm["inprocess_warm"]["qps"],
            "cold_inprocess_qps": by_arm["inprocess_cold"]["qps"],
            "cache_speedup": speedup,
            "socket_warm_qps": by_arm["socket_warm"]["qps"],
            "socket_cold_qps": by_arm["socket_cold"]["qps"],
        },
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20,
                        help="timed rounds per arm (best is reported)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool workers for the service (default: "
                             "in-process execution)")
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke: 5 rounds")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_serve.json"))
    args = parser.parse_args(argv)
    rounds = 5 if args.tiny else args.rounds
    report = run(rounds=rounds, workers=args.workers)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    headline = report["headline"]
    print(f"\nwarm repeat reads: {headline['warm_inprocess_qps']:.1f} "
          f"queries/s in-process ({headline['cache_speedup']:.1f}x "
          f"cold), {headline['socket_warm_qps']:.1f} queries/s over "
          "the socket")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
