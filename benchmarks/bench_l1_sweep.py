"""Extension bench: the exact L1 sweep solver's scaling.

Not a paper figure — the L1 variant is this library's extension (DESIGN
§6).  Records how the compressed-grid sweep scales with |O| (quadratic in
cells, heavily vectorised) and cross-checks the L1 optimum stays within
the structural bounds shared with the L2 solver.
"""

import time

import pytest

from repro.bench.runner import ExperimentResult
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.l1.solver import solve_l1


@pytest.mark.benchmark(group="l1")
def test_l1_sweep_scaling(benchmark, profile, record_experiment):
    sizes = [n for n in profile.customers_sweep if n <= 8_000][:4]

    def run():
        result = ExperimentResult(
            "l1_sweep_scaling", meta={"profile": profile.name,
                                      "n_sites": profile.n_sites})
        for n in sizes:
            customers, sites = synthetic_instance(
                n, profile.n_sites, "uniform", seed=profile.seeds[0])
            problem = MaxBRkNNProblem(customers, sites, k=1)
            start = time.perf_counter()
            l1 = solve_l1(problem)
            l1_s = time.perf_counter() - start
            start = time.perf_counter()
            l2 = MaxFirst().solve(problem)
            l2_s = time.perf_counter() - start
            result.add_row(n_customers=n, l1_sweep_s=l1_s,
                           l2_maxfirst_s=l2_s, l1_score=l1.score,
                           l2_score=l2.score, cells=l1.cell_count)
        return result

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    record_experiment(result, chart_x="n_customers",
                      chart_series=("l1_sweep_s", "l2_maxfirst_s"))

    for row in result.rows:
        # Different metrics, same structural bounds: at least the best
        # single customer, at most all of them.
        assert 1.0 - 1e-9 <= row["l1_score"] <= row["n_customers"]
        assert 1.0 - 1e-9 <= row["l2_score"] <= row["n_customers"]
        # The sweep's cell count is quadratic-bounded: (2n+..)^2.
        assert row["cells"] <= (2 * row["n_customers"] + 2) ** 2
