"""NLC build + Phase II benchmark: compiled kNN and incremental growth.

Two arms, both asserted bit-identical to their pre-optimisation
counterparts before any timing is believed:

* **NLC build** — a fig10-style customers sweep timing the brute-force
  kNN pass that dominates ``build_nlcs``: the compiled ``knn_brute``
  C kernel (via ``knn_chunked``) against the pure-numpy chunked body
  (``_knn_chunked_numpy``, the ``REPRO_NO_CKERNEL`` fallback).  Every
  point asserts the two produce byte-identical distances AND neighbour
  indices; the headline is the sweep-aggregate speedup, budgeted at
  >= 2x.  When the toolchain cannot build the kernel the arm records
  ``compiled_available: false`` and skips the budget (the fallback *is*
  the measured path then).

* **Phase II** — region growth for the ``top_t`` distinct covers of
  real solves (``top_t >= 4``): the incremental clipper +
  SoA-seeded ``compute_optimal_region`` against the preserved pre-PR
  loop ``compute_optimal_region_reference`` (scalar heap seeding,
  from-scratch ``intersect_disks`` per accepted disk).  Every point
  asserts per-region identity — score, cover, clipping_count, and
  float-identical arcs — then times both loops; aggregate budget
  >= 2x.  A ``pooled_s`` column additionally times the same entries
  through the :mod:`repro.engine.pool` worker pool (informational:
  on a single-core runner it honestly pays queue + shm overhead).

Run:

    PYTHONPATH=src python benchmarks/bench_phase2_nlc.py
    PYTHONPATH=src python benchmarks/bench_phase2_nlc.py \
        --scale tiny --repeats 2 --relax      # CI smoke

Writes ``BENCH_phase2.json``; headlines are
``headline.nlc_speedup`` and ``headline.phase2_speedup``.  Timings move
with the machine; the identity fields must never move.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.bench.config import get_profile
from repro.bench.figures import _problem
from repro.core import nlc as nlc_mod
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.region import (compute_optimal_region,
                               compute_optimal_region_reference)
from repro.index._ckernel import load_knn_kernel
from repro.obs import metrics as obs_metrics

MIN_NLC_SPEEDUP = 2.0
MIN_PHASE2_SPEEDUP = 2.0
PHASE2_TOP_T = 8  # acceptance asks for top_t >= 4
POOL_WORKERS = 2


# ---------------------------------------------------------------------- #
# NLC build arm
# ---------------------------------------------------------------------- #

def _numpy_knn(queries: np.ndarray, points: np.ndarray,
               k: int) -> tuple[np.ndarray, np.ndarray]:
    """The REPRO_NO_CKERNEL body, driven directly for the fallback arm."""
    n = queries.shape[0]
    dists = np.empty((n, k), dtype=np.float64)
    indices = np.empty((n, k), dtype=np.int64)
    nlc_mod._knn_chunked_numpy(queries, points, k, dists, indices)
    return dists, indices


def _nlc_point(n_customers: int, n_sites: int, k: int, seed: int,
               repeats: int, compiled_available: bool) -> dict:
    problem = _problem(n_customers, n_sites, k, "uniform", seed)
    queries = np.ascontiguousarray(problem.customers)
    points = np.ascontiguousarray(problem.sites)

    with obs_metrics.REGISTRY.isolated():
        kernel_d, kernel_i = nlc_mod.knn_chunked(queries, points, k)
    numpy_d, numpy_i = _numpy_knn(queries, points, k)
    if kernel_d.tobytes() != numpy_d.tobytes():
        raise AssertionError(
            f"kNN distance mismatch at |O|={n_customers}: compiled and "
            "numpy arms are not byte-identical")
    if kernel_i.tobytes() != numpy_i.tobytes():
        raise AssertionError(
            f"kNN index mismatch at |O|={n_customers}: compiled and "
            "numpy arms are not byte-identical")

    best_kernel = best_numpy = float("inf")
    for _ in range(repeats):
        with obs_metrics.REGISTRY.isolated():
            t0 = time.perf_counter()
            nlc_mod.knn_chunked(queries, points, k)
            best_kernel = min(best_kernel, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _numpy_knn(queries, points, k)
        best_numpy = min(best_numpy, time.perf_counter() - t0)
    return {
        "n_customers": n_customers, "n_sites": n_sites, "k": k,
        "seed": seed,
        "compiled_s": round(best_kernel, 6),
        "numpy_s": round(best_numpy, 6),
        "speedup": round(best_numpy / best_kernel, 3),
        "identical": True,  # asserted above (distances and indices)
        "compiled_available": compiled_available,
    }


# ---------------------------------------------------------------------- #
# Phase II arm
# ---------------------------------------------------------------------- #

def _phase2_entries(problem) -> tuple:
    """Solve once; return the NLC set and the solved regions' covers."""
    result = MaxFirst(top_t=PHASE2_TOP_T).solve(problem)
    nlcs = build_nlcs(problem)
    entries = [(r.seed_quadrant, np.asarray(r.cover, dtype=np.int64),
                r.score) for r in result.regions]
    return nlcs, entries, result


def _assert_regions_identical(new_regions, ref_regions, label: str):
    for new, ref in zip(new_regions, ref_regions):
        same = (new.score == ref.score and new.cover == ref.cover
                and new.clipping_count == ref.clipping_count
                and (new.shape is None) == (ref.shape is None)
                and (new.shape is None
                     or (new.shape.arcs == ref.shape.arcs
                         and new.shape.degenerate_point
                         == ref.shape.degenerate_point)))
        if not same:
            raise AssertionError(
                f"Phase II identity broken at {label}: optimised region "
                f"(cover {new.cover}) differs from the reference path")


def _phase2_point(distribution: str, n_customers: int, n_sites: int,
                  k: int, seed: int, repeats: int) -> dict:
    problem = _problem(n_customers, n_sites, k, distribution, seed)
    nlcs, entries, result = _phase2_entries(problem)

    def run_new():
        with obs_metrics.REGISTRY.isolated():
            return [compute_optimal_region(quad, cover, nlcs, score=score)
                    for quad, cover, score in entries]

    def run_ref():
        return [compute_optimal_region_reference(quad, cover, nlcs,
                                                 score=score)
                for quad, cover, score in entries]

    label = f"{distribution}/|O|={n_customers}"
    new_regions = run_new()
    ref_regions = run_ref()
    _assert_regions_identical(new_regions, ref_regions, label)
    # The solver's own output came through the optimised path too.
    _assert_regions_identical(result.regions, ref_regions, label)

    best_new = best_ref = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_new()
        best_new = min(best_new, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_ref()
        best_ref = min(best_ref, time.perf_counter() - t0)

    pooled_s = _phase2_pooled_time(nlcs, entries, new_regions, repeats,
                                   label)
    covers = [len(cover) for _, cover, _ in entries]
    return {
        "distribution": distribution, "n_customers": n_customers,
        "n_sites": n_sites, "k": k, "seed": seed,
        "top_t": PHASE2_TOP_T, "n_regions": len(entries),
        "cover_min": int(min(covers)), "cover_max": int(max(covers)),
        "incremental_s": round(best_new, 6),
        "reference_s": round(best_ref, 6),
        "pooled_s": pooled_s,
        "speedup": round(best_ref / best_new, 3),
        "identical": True,  # asserted above, per region
    }


def _phase2_pooled_time(nlcs, entries, serial_regions, repeats: int,
                        label: str) -> float:
    """Time the same entries through the worker pool (informational)."""
    from repro.engine.pool import PersistentPool, run_phase2_pool

    quads = [((quad.xmin, quad.ymin, quad.xmax, quad.ymax),
              tuple(int(i) for i in cover), float(score))
             for quad, cover, score in entries]
    pool = PersistentPool(max_workers=POOL_WORKERS)
    try:
        with obs_metrics.REGISTRY.isolated():
            warm = run_phase2_pool(pool, nlcs, quads)  # also spins workers
        _assert_regions_identical(warm, serial_regions, label + "/pooled")
        best = float("inf")
        for _ in range(repeats):
            with obs_metrics.REGISTRY.isolated():
                t0 = time.perf_counter()
                run_phase2_pool(pool, nlcs, quads)
                best = min(best, time.perf_counter() - t0)
    finally:
        pool.close()
    return round(best, 6)


# ---------------------------------------------------------------------- #
# Driver
# ---------------------------------------------------------------------- #

def run(scale: str = "small", repeats: int = 5, relax: bool = False
        ) -> dict:
    profile = get_profile(scale)
    seed = profile.seeds[0]
    k = max(profile.k, 4)
    compiled_available = load_knn_kernel() is not None

    kernel_note = ("present" if compiled_available
                   else "ABSENT - numpy arm measures itself")
    print(f"NLC build (fig10-style |O| sweep, k={k}, compiled kernel "
          f"{kernel_note}):")
    nlc_rows = []
    for n_customers in profile.customers_sweep:
        row = _nlc_point(n_customers, profile.n_sites, k, seed, repeats,
                         compiled_available)
        nlc_rows.append(row)
        print(f"  |O|={n_customers:6d}  compiled={row['compiled_s']:.4f}s"
              f"  numpy={row['numpy_s']:.4f}s"
              f"  speedup={row['speedup']:.2f}x")

    print(f"Phase II (top_t={PHASE2_TOP_T}, k={k}):")
    phase2_rows = []
    for distribution in ("uniform", "normal"):
        row = _phase2_point(distribution, profile.n_customers,
                            profile.n_sites, k, seed, repeats)
        phase2_rows.append(row)
        print(f"  {distribution:8s} regions={row['n_regions']:3d} "
              f"covers {row['cover_min']}..{row['cover_max']}  "
              f"incremental={row['incremental_s']:.4f}s "
              f"reference={row['reference_s']:.4f}s "
              f"pooled={row['pooled_s']:.4f}s "
              f"speedup={row['speedup']:.2f}x")

    nlc_speedup = (sum(r["numpy_s"] for r in nlc_rows)
                   / sum(r["compiled_s"] for r in nlc_rows))
    phase2_speedup = (sum(r["reference_s"] for r in phase2_rows)
                      / sum(r["incremental_s"] for r in phase2_rows))
    if not relax and compiled_available and nlc_speedup < MIN_NLC_SPEEDUP:
        raise AssertionError(
            f"NLC build speedup {nlc_speedup:.2f}x below the "
            f"{MIN_NLC_SPEEDUP}x budget")
    if not relax and phase2_speedup < MIN_PHASE2_SPEEDUP:
        raise AssertionError(
            f"Phase II speedup {phase2_speedup:.2f}x below the "
            f"{MIN_PHASE2_SPEEDUP}x budget")

    return {
        "benchmark": "phase2_nlc",
        "scale": profile.name,
        "repeats": repeats,
        "timing": "min over repeats, arms interleaved in-process",
        "identity": "every NLC point asserted byte-identical (distances "
                    "and indices, compiled vs numpy); every Phase II "
                    "region asserted identical (score, cover, "
                    "clipping_count, arcs) vs the pre-optimisation "
                    "reference path",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "compiled_kernel": compiled_available,
        "headline": {
            "nlc_speedup": round(nlc_speedup, 3),
            "nlc_speedup_budget": MIN_NLC_SPEEDUP,
            "phase2_speedup": round(phase2_speedup, 3),
            "phase2_speedup_budget": MIN_PHASE2_SPEEDUP,
        },
        "nlc_rows": nlc_rows,
        "phase2_rows": phase2_rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small",
                        help="benchmark profile (tiny/small/paper)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per arm (min is reported)")
    parser.add_argument("--relax", action="store_true",
                        help="skip the speedup budget assertions "
                             "(CI smoke on noisy/tiny runs)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_phase2.json"))
    args = parser.parse_args(argv)
    report = run(scale=args.scale, repeats=args.repeats, relax=args.relax)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    headline = report["headline"]
    print(f"\nNLC build speedup: {headline['nlc_speedup']:.2f}x "
          f"(budget {MIN_NLC_SPEEDUP}x); Phase II speedup: "
          f"{headline['phase2_speedup']:.2f}x (budget "
          f"{MIN_PHASE2_SPEEDUP}x, cpu_count={report['cpu_count']})")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
