"""Figure 12 — effect of k (a) and of the probability model series (b).

Paper shape, 12(a): both solvers slow with k; MaxOverlap deteriorates so
fast its curve is left incomplete ("needs days") — reproduced here by the
pair-budget skip.  12(b): the M1 and M2 curves nearly coincide — runtime
is governed by k, not by the probability values.
"""

import pytest

from conftest import assert_scores_agree

from repro.bench.figures import fig12a_effect_of_k, fig12b_probability_models


@pytest.mark.benchmark(group="fig12")
def test_fig12a_effect_of_k(benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig12a_effect_of_k(profile), iterations=1, rounds=1)
    record_experiment(result, chart_x="k",
                      chart_series=("maxfirst_s", "maxoverlap_s"))
    assert_scores_agree(result.rows)

    mf = [row["maxfirst_s"] for row in result.rows]
    # MaxFirst slows with k but stays feasible across the sweep.
    assert mf[-1] >= mf[0] * 0.5
    # MaxOverlap deteriorates faster wherever it ran.
    ran = [row for row in result.rows if row["maxoverlap_s"]]
    if len(ran) >= 2:
        mo_growth = ran[-1]["maxoverlap_s"] / ran[0]["maxoverlap_s"]
        mf_growth = (ran[-1]["maxfirst_s"]
                     / max(ran[0]["maxfirst_s"], 1e-9))
        assert mo_growth >= mf_growth * 0.5  # never dramatically better


@pytest.mark.benchmark(group="fig12")
def test_fig12b_probability_models(benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig12b_probability_models(profile), iterations=1,
        rounds=1)
    record_experiment(result, chart_x="k", chart_series=("m1_s", "m2_s"))

    # Shape: the two series stay close at every k (paper: "the two lines
    # are close").
    for row in result.rows:
        hi = max(row["m1_s"], row["m2_s"])
        lo = min(row["m1_s"], row["m2_s"])
        assert hi <= 5.0 * lo, f"M1/M2 diverge at k={row['k']}: {row}"
