"""Sharded Phase I benchmark: 1/2/4-shard arms over the fig11 sweep.

Times Phase I + merge (``solve_nlcs``; NLC construction excluded) on the
fig11 uniform/normal configurations, comparing:

* ``single``   — the one-process ``hotpath=batched`` solver (the
  identity baseline every sharded arm is checked against);
* ``serial2`` / ``serial4``  — tile-sharded execution run in-process in
  tile order: no IPC or fork cost, later tiles start with the best bound
  the earlier tiles proved (Theorem 2 cross-shard pruning);
* ``process2`` / ``process4`` — the same tiles in worker processes with
  the shared-``Value`` bound exchange.  On a single-core box these arms
  measure the fork/pickle overhead honestly; real parallel speedup needs
  real cores, so the report records ``cpu_count`` next to the numbers.

All arms run interleaved in the same process with min-of-``repeats``
timing (same methodology as ``bench_phase1_hotpath.py``).  Every point
asserts that every sharded arm returns the **bit-identical optimal score
and identical region cover sets** as the single-process run — a speedup
obtained by changing the answer is a bug, not a result.

Run:

    PYTHONPATH=src python benchmarks/bench_engine_shards.py
    PYTHONPATH=src python benchmarks/bench_engine_shards.py \
        --scale tiny --repeats 2 --skip-process     # CI smoke

Writes ``BENCH_engine.json``; the headline is
``headline.fig11_uniform_serial4_speedup`` — aggregate single/serial4
time over the fig11 uniform sweep.  Timings move with the machine; the
score/region identity fields must never move.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.bench.config import get_profile
from repro.bench.figures import _problem
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.engine import ShardedMaxFirst


def _region_keys(result):
    return sorted(tuple(int(i) for i in r.cover) for r in result.regions)


def _arms(skip_process: bool) -> dict:
    arms = {
        "single": MaxFirst(),
        "serial2": ShardedMaxFirst(shards=2, mode="serial"),
        "serial4": ShardedMaxFirst(shards=4, mode="serial"),
    }
    if not skip_process:
        arms["process2"] = ShardedMaxFirst(shards=2, mode="process")
        arms["process4"] = ShardedMaxFirst(shards=4, mode="process")
    return arms


def _time_point(nlcs, repeats: int, skip_process: bool) -> dict:
    """Interleaved min-of-``repeats`` timing of all arms, with identity
    assertions of every sharded arm against the single-process run."""
    arms = _arms(skip_process)
    results = {arm: solver.solve_nlcs(nlcs)       # warm-up + result
               for arm, solver in arms.items()}
    single = results["single"]
    for arm, result in results.items():
        if result.score != single.score:
            raise AssertionError(
                f"{arm} disagrees on score: {result.score} != "
                f"{single.score}")
        if _region_keys(result) != _region_keys(single):
            raise AssertionError(
                f"{arm} disagrees on region covers: "
                f"{_region_keys(result)} != {_region_keys(single)}")
    best = {arm: float("inf") for arm in arms}
    for _ in range(repeats):
        for arm, solver in arms.items():
            t0 = time.perf_counter()
            solver.solve_nlcs(nlcs)
            elapsed = time.perf_counter() - t0
            if elapsed < best[arm]:
                best[arm] = elapsed
    row = {f"{arm}_s": round(seconds, 6) for arm, seconds in best.items()}
    row["serial4_speedup"] = round(best["single"] / best["serial4"], 3)
    row["score"] = single.score
    row["n_regions"] = len(single.regions)
    row["identical"] = True  # asserted above
    return row


def run(scale: str = "small", repeats: int = 5,
        skip_process: bool = False) -> dict:
    profile = get_profile(scale)
    seed = profile.seeds[0]
    rows = []

    def point(figure: str, distribution: str, n_customers: int,
              n_sites: int) -> None:
        problem = _problem(n_customers, n_sites, profile.k, distribution,
                           seed)
        nlcs = build_nlcs(problem)
        row = {"figure": figure, "distribution": distribution,
               "n_customers": n_customers, "n_sites": n_sites,
               "k": profile.k, "seed": seed, "n_nlcs": len(nlcs)}
        row.update(_time_point(nlcs, repeats, skip_process))
        rows.append(row)
        extra = ("" if skip_process
                 else f" process4={row['process4_s']:.4f}s")
        print(f"  {figure} {distribution:8s} |O|={n_customers:6d} "
              f"|P|={n_sites:4d}  single={row['single_s']:.4f}s "
              f"serial4={row['serial4_s']:.4f}s{extra}  "
              f"serial4-speedup={row['serial4_speedup']:.2f}x")

    for distribution in ("uniform", "normal"):
        print(f"fig11 (effect of |P|), {distribution}:")
        for n_sites in profile.sites_sweep:
            point("fig11", distribution, profile.n_customers, n_sites)

    fig11u = [r for r in rows
              if r["figure"] == "fig11" and r["distribution"] == "uniform"]
    single_total = sum(r["single_s"] for r in fig11u)
    serial4_total = sum(r["serial4_s"] for r in fig11u)
    headline = {
        "fig11_uniform_single_s": round(single_total, 6),
        "fig11_uniform_serial4_s": round(serial4_total, 6),
        "fig11_uniform_serial4_speedup": round(
            single_total / serial4_total, 3),
    }
    if not skip_process:
        process4_total = sum(r["process4_s"] for r in fig11u)
        headline["fig11_uniform_process4_s"] = round(process4_total, 6)
        headline["fig11_uniform_process4_speedup"] = round(
            single_total / process4_total, 3)
    report = {
        "benchmark": "engine_shards",
        "scale": profile.name,
        "repeats": repeats,
        "timing": "min over repeats, arms interleaved in-process",
        "measured": "solve_nlcs (Phase I + merge; NLC build excluded)",
        "identity": "every sharded arm asserted bit-identical (score and "
                    "region covers) to the single-process batched run",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "headline": headline,
        "rows": rows,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small",
                        help="benchmark profile (tiny/small/paper)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per arm (min is reported)")
    parser.add_argument("--skip-process", action="store_true",
                        help="omit the process-pool arms (CI smoke)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_engine.json"))
    args = parser.parse_args(argv)
    report = run(scale=args.scale, repeats=args.repeats,
                 skip_process=args.skip_process)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    headline = report["headline"]["fig11_uniform_serial4_speedup"]
    print(f"\nfig11 uniform serial4 aggregate speedup: {headline:.2f}x "
          f"(cpu_count={report['cpu_count']})")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
