"""Zero-copy sharded Phase I benchmark: unsharded vs serial vs pool.

Times Phase I + merge (``solve_nlcs``; NLC construction excluded) over
the fig11 uniform sweep plus the fig13 sizes (both distributions),
comparing:

* ``unsharded`` — the one-process ``hotpath=batched`` solver, the
  identity baseline;
* ``serial``    — 4-way tile-sharded execution in-process, in tile
  order.  Its overhead against ``unsharded`` is the headline: the tile
  grid costs only the work the cuts actually add (boundary tessellation),
  bounded at <= 1.15x aggregate on fig11-uniform;
* ``pool``      — the same tiles on the persistent worker pool with the
  shared-memory NLC store.  On a single-core box this arm honestly pays
  queue + shm round-trip with no parallel win; ``cpu_count`` is recorded
  next to the numbers.

Every point asserts all arms return the bit-identical optimal score and
identical region cover sets.  A separate transport check runs one
pool-mode solve through the engine pipeline and asserts the NLC payload
crossed the process boundary only via shared memory: mapped bytes are a
whole-number multiple of the store size and nothing else carries it.

Run:

    PYTHONPATH=src python benchmarks/bench_sharding.py
    PYTHONPATH=src python benchmarks/bench_sharding.py \
        --scale tiny --repeats 2 --relax      # CI smoke

Writes ``BENCH_sharding.json``; the headline is
``headline.fig11_uniform_serial_overhead`` (serial/unsharded aggregate,
asserted <= 1.15 unless ``--relax``).  Timings move with the machine;
the identity and transport fields must never move.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.bench.config import get_profile
from repro.bench.figures import _problem
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.engine import ShardedMaxFirst, run_pipeline

SHARDS = 4
MAX_SERIAL_OVERHEAD = 1.15


def _region_keys(result):
    return sorted(tuple(int(i) for i in r.cover) for r in result.regions)


def _time_point(nlcs, arms: dict, repeats: int) -> dict:
    results = {arm: solver.solve_nlcs(nlcs)       # warm-up + result
               for arm, solver in arms.items()}
    single = results["unsharded"]
    for arm, result in results.items():
        if result.score != single.score:
            raise AssertionError(
                f"{arm} disagrees on score: {result.score} != "
                f"{single.score}")
        if _region_keys(result) != _region_keys(single):
            raise AssertionError(
                f"{arm} disagrees on region covers: "
                f"{_region_keys(result)} != {_region_keys(single)}")
    best = {arm: float("inf") for arm in arms}
    for _ in range(repeats):
        for arm, solver in arms.items():
            t0 = time.perf_counter()
            solver.solve_nlcs(nlcs)
            elapsed = time.perf_counter() - t0
            if elapsed < best[arm]:
                best[arm] = elapsed
    row = {f"{arm}_s": round(seconds, 6) for arm, seconds in best.items()}
    row["serial_overhead"] = round(best["serial"] / best["unsharded"], 3)
    row["score"] = single.score
    row["n_regions"] = len(single.regions)
    row["identical"] = True  # asserted above
    return row


def _transport_check(profile, seed: int) -> dict:
    """One pool-mode pipeline run: the NLC payload must reach workers
    exclusively through the shared-memory store."""
    problem = _problem(profile.n_customers, profile.n_sites, profile.k,
                       "uniform", seed)
    _, report = run_pipeline("maxfirst-sharded", problem, shards=SHARDS,
                             mode="pool", max_workers=1)
    store_bytes = 6 * 8 * report.meta["n_nlcs"]
    mapped = report.counters["shm_bytes_mapped"]
    tasks = report.counters["pool_tasks"]
    if mapped <= 0 or mapped % store_bytes != 0:
        raise AssertionError(
            f"shm transport broken: mapped {mapped} bytes is not a "
            f"whole number of {store_bytes}-byte stores")
    if tasks < 1:
        raise AssertionError("pool ran no tasks")
    return {
        "nlc_store_bytes": store_bytes,
        "shm_bytes_mapped": mapped,
        "mappings": mapped // store_bytes,
        "pool_tasks": tasks,
        "tiles_stolen": report.counters["tiles_stolen"],
        "workers": report.meta["workers"],
        "nlc_payload_pickled_bytes": 0,  # by construction; shm asserted
    }


def run(scale: str = "small", repeats: int = 5, relax: bool = False
        ) -> dict:
    profile = get_profile(scale)
    seed = profile.seeds[0]
    rows = []
    arms = {
        "unsharded": MaxFirst(),
        "serial": ShardedMaxFirst(shards=SHARDS, mode="serial"),
        "pool": ShardedMaxFirst(shards=SHARDS, mode="pool"),
    }

    def point(figure: str, distribution: str, n_customers: int,
              n_sites: int) -> None:
        problem = _problem(n_customers, n_sites, profile.k, distribution,
                           seed)
        nlcs = build_nlcs(problem)
        row = {"figure": figure, "distribution": distribution,
               "n_customers": n_customers, "n_sites": n_sites,
               "k": profile.k, "seed": seed, "n_nlcs": len(nlcs)}
        row.update(_time_point(nlcs, arms, repeats))
        rows.append(row)
        print(f"  {figure} {distribution:8s} |O|={n_customers:6d} "
              f"|P|={n_sites:4d}  unsharded={row['unsharded_s']:.4f}s "
              f"serial={row['serial_s']:.4f}s pool={row['pool_s']:.4f}s  "
              f"serial-overhead={row['serial_overhead']:.2f}x")

    try:
        print("fig11 (effect of |P|), uniform:")
        for n_sites in profile.sites_sweep:
            point("fig11", "uniform", profile.n_customers, n_sites)
        print("fig13 sizes, both distributions:")
        for distribution in ("uniform", "normal"):
            point("fig13", distribution, profile.n_customers,
                  profile.n_sites)
        transport = _transport_check(profile, seed)
    finally:
        arms["serial"].close()
        arms["pool"].close()

    fig11u = [r for r in rows
              if r["figure"] == "fig11" and r["distribution"] == "uniform"]
    unsharded_total = sum(r["unsharded_s"] for r in fig11u)
    serial_total = sum(r["serial_s"] for r in fig11u)
    pool_total = sum(r["pool_s"] for r in fig11u)
    overhead = serial_total / unsharded_total
    if not relax and overhead > MAX_SERIAL_OVERHEAD:
        raise AssertionError(
            f"fig11-uniform serial overhead {overhead:.3f}x exceeds the "
            f"{MAX_SERIAL_OVERHEAD}x budget")
    headline = {
        "fig11_uniform_unsharded_s": round(unsharded_total, 6),
        "fig11_uniform_serial_s": round(serial_total, 6),
        "fig11_uniform_pool_s": round(pool_total, 6),
        "fig11_uniform_serial_overhead": round(overhead, 3),
        "serial_overhead_budget": MAX_SERIAL_OVERHEAD,
    }
    report = {
        "benchmark": "sharding",
        "scale": profile.name,
        "shards": SHARDS,
        "repeats": repeats,
        "timing": "min over repeats, arms interleaved in-process",
        "measured": "solve_nlcs (Phase I + merge; NLC build excluded)",
        "identity": "every sharded arm asserted bit-identical (score and "
                    "region covers) to the single-process batched run",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "headline": headline,
        "transport": transport,
        "rows": rows,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small",
                        help="benchmark profile (tiny/small/paper)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per arm (min is reported)")
    parser.add_argument("--relax", action="store_true",
                        help="skip the serial-overhead budget assertion "
                             "(CI smoke on noisy/tiny runs)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_sharding.json"))
    args = parser.parse_args(argv)
    report = run(scale=args.scale, repeats=args.repeats, relax=args.relax)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    headline = report["headline"]["fig11_uniform_serial_overhead"]
    print(f"\nfig11 uniform serial aggregate overhead: {headline:.2f}x "
          f"(budget {MAX_SERIAL_OVERHEAD}x, "
          f"cpu_count={report['cpu_count']})")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
