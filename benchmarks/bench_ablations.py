"""Ablations for the design decisions in DESIGN.md §5.

* backends — hierarchical vectorised classification vs paper-literal
  R-tree range queries (identical answers, different constants);
* theorem3 — subset test (ours) vs the pseudocode's equality test
  (subset prunes at least as much).
"""

import pytest

from repro.bench.figures import ablation_backends, ablation_theorem3


@pytest.mark.benchmark(group="ablation")
def test_ablation_backends(benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: ablation_backends(profile), iterations=1, rounds=1)
    record_experiment(result, chart_x="n_customers",
                      chart_series=("vector_s", "rtree_s"))
    for row in result.rows:
        assert row["vector_score"] == pytest.approx(row["rtree_score"])
    # The vector backend is the default because it wins.
    last = result.rows[-1]
    assert last["vector_s"] < last["rtree_s"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_theorem3(benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: ablation_theorem3(profile), iterations=1, rounds=1)
    record_experiment(result)
    by_mode = {row["mode"]: row for row in result.rows}
    assert by_mode["subset"]["score"] == pytest.approx(
        by_mode["equality"]["score"])
    assert by_mode["subset"]["splits"] <= by_mode["equality"]["splits"]
