"""Phase I hot-path benchmark: batched kernel vs the seed hot path.

Times ``MaxFirst.solve_nlcs`` (Phase I's pop/classify/split loop plus the
in-loop refinement; NLC construction is excluded) on the fig10/fig11
configurations, comparing the two hot-path implementations:

* ``legacy``  — the seed hot path: one scalar ``classify_rect`` call per
  child, frozenset Theorem 3 tests, scalar refinement geometry.
* ``batched`` — this PR's path: one batched kernel call per split
  frontier (compiled single-pass quad-split kernel when a C compiler is
  available, numpy broadcast otherwise), cover-identity bitsets for
  Theorem 3, vectorised refinement geometry.

Both arms are run interleaved in the same process with min-of-``repeats``
timing — on a noisy single-core box, cross-process wall-clock comparisons
drift by 2x between runs, while interleaved same-process ratios are
stable.  Every point asserts that the two arms return identical
``maxfirst_score`` and identical stats counters; a speedup obtained by
changing the search is a bug, not a result.

Run:

    PYTHONPATH=src python benchmarks/bench_phase1_hotpath.py
    PYTHONPATH=src python benchmarks/bench_phase1_hotpath.py \
        --scale tiny --repeats 3          # CI smoke

Writes ``BENCH_phase1.json`` (see ``--out``); the headline number is
``headline.fig11_uniform_speedup`` — aggregate legacy/batched time over
the fig11 uniform sweep, the ISSUE's >=2x acceptance metric.  Future PRs
regress-check against the committed file: re-run and compare speedups
(timings move with the machine; the score/stats fields must not move
at all).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.bench.config import get_profile
from repro.bench.figures import _problem
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.index._ckernel import load_quad_kernel

_STAT_FIELDS = (
    "generated", "splits", "pruned_theorem2", "pruned_theorem3", "results",
    "point_splits", "intersection_checks", "refinement_checks",
    "pruned_refined", "resolution_closed", "max_depth",
)


def _stats_dict(result) -> dict[str, int]:
    return {name: int(getattr(result.stats, name)) for name in _STAT_FIELDS}


def _time_point(nlcs, repeats: int) -> dict:
    """Interleaved min-of-``repeats`` timing of both hot paths."""
    solvers = {arm: MaxFirst(hotpath=arm) for arm in ("legacy", "batched")}
    results = {arm: solver.solve_nlcs(nlcs)        # warm-up + result
               for arm, solver in solvers.items()}
    best = {arm: float("inf") for arm in solvers}
    for _ in range(repeats):
        for arm, solver in solvers.items():
            t0 = time.perf_counter()
            solver.solve_nlcs(nlcs)
            elapsed = time.perf_counter() - t0
            if elapsed < best[arm]:
                best[arm] = elapsed
    legacy, batched = results["legacy"], results["batched"]
    if legacy.score != batched.score:
        raise AssertionError(
            f"hot paths disagree on score: legacy={legacy.score} "
            f"batched={batched.score}")
    if _stats_dict(legacy) != _stats_dict(batched):
        raise AssertionError(
            f"hot paths disagree on stats: legacy={_stats_dict(legacy)} "
            f"batched={_stats_dict(batched)}")
    return {
        "legacy_s": round(best["legacy"], 6),
        "batched_s": round(best["batched"], 6),
        "speedup": round(best["legacy"] / best["batched"], 3),
        "maxfirst_score": batched.score,
        "stats": _stats_dict(batched),
    }


def run(scale: str = "small", repeats: int = 7) -> dict:
    profile = get_profile(scale)
    seed = profile.seeds[0]
    rows = []

    def point(figure: str, distribution: str, n_customers: int,
              n_sites: int) -> None:
        problem = _problem(n_customers, n_sites, profile.k, distribution,
                           seed)
        nlcs = build_nlcs(problem)
        row = {"figure": figure, "distribution": distribution,
               "n_customers": n_customers, "n_sites": n_sites,
               "k": profile.k, "seed": seed, "n_nlcs": len(nlcs)}
        row.update(_time_point(nlcs, repeats))
        rows.append(row)
        print(f"  {figure} {distribution:8s} |O|={n_customers:6d} "
              f"|P|={n_sites:4d}  legacy={row['legacy_s']:.4f}s "
              f"batched={row['batched_s']:.4f}s  "
              f"speedup={row['speedup']:.2f}x")

    for distribution in ("uniform", "normal"):
        print(f"fig11 (effect of |P|), {distribution}:")
        for n_sites in profile.sites_sweep:
            point("fig11", distribution, profile.n_customers, n_sites)
    print("fig10 (effect of |O|), uniform:")
    for n_customers in profile.customers_sweep:
        point("fig10", "uniform", n_customers, profile.n_sites)

    fig11u = [r for r in rows
              if r["figure"] == "fig11" and r["distribution"] == "uniform"]
    legacy_total = sum(r["legacy_s"] for r in fig11u)
    batched_total = sum(r["batched_s"] for r in fig11u)
    report = {
        "benchmark": "phase1_hotpath",
        "scale": profile.name,
        "repeats": repeats,
        "timing": "min over repeats, arms interleaved in-process",
        "measured": "MaxFirst.solve_nlcs (Phase I; NLC build excluded)",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "compiled_kernel": load_quad_kernel() is not None,
        "headline": {
            "fig11_uniform_legacy_s": round(legacy_total, 6),
            "fig11_uniform_batched_s": round(batched_total, 6),
            "fig11_uniform_speedup": round(legacy_total / batched_total, 3),
        },
        "rows": rows,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small",
                        help="benchmark profile (tiny/small/paper)")
    parser.add_argument("--repeats", type=int, default=7,
                        help="timing repetitions per arm (min is reported)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_phase1.json"))
    args = parser.parse_args(argv)
    report = run(scale=args.scale, repeats=args.repeats)
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    headline = report["headline"]["fig11_uniform_speedup"]
    print(f"\nfig11 uniform aggregate speedup: {headline:.2f}x "
          f"(compiled_kernel={report['compiled_kernel']})")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
