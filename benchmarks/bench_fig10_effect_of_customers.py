"""Figure 10 — effect of |O| on runtime (a: uniform, b: normal).

Paper shape: both solvers slow down as customers increase; MaxOverlap's
curve rises much faster (quadratic pair counts) and the gap reaches 2-3
orders of magnitude at the top of the sweep; MaxFirst scales near-
linearly.
"""

import pytest

from conftest import assert_scores_agree, comparable_rows

from repro.bench.figures import fig10_effect_of_customers


def _run(distribution, benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig10_effect_of_customers(distribution, profile),
        iterations=1, rounds=1)
    record_experiment(result, chart_x="n_customers",
                      chart_series=("maxfirst_s", "maxoverlap_s"))
    assert_scores_agree(result.rows)

    both = comparable_rows(result.rows)
    assert both, "no point where both solvers ran"
    # Shape 1: MaxFirst wins at the largest comparable size, by a
    # widening factor.
    last = both[-1]
    assert last["maxoverlap_s"] > last["maxfirst_s"], \
        "MaxFirst must win at scale"
    if len(both) >= 2:
        first_ratio = both[0]["maxoverlap_s"] / both[0]["maxfirst_s"]
        last_ratio = last["maxoverlap_s"] / last["maxfirst_s"]
        assert last_ratio > first_ratio, "the gap must widen with |O|"
    # Shape 2: MaxOverlap's growth outpaces MaxFirst's across the sweep.
    if len(both) >= 2:
        mo_growth = both[-1]["maxoverlap_s"] / both[0]["maxoverlap_s"]
        mf_growth = both[-1]["maxfirst_s"] / max(both[0]["maxfirst_s"],
                                                 1e-9)
        assert mo_growth > mf_growth


@pytest.mark.benchmark(group="fig10")
def test_fig10a_uniform(benchmark, profile, record_experiment):
    _run("uniform", benchmark, profile, record_experiment)


@pytest.mark.benchmark(group="fig10")
def test_fig10b_normal(benchmark, profile, record_experiment):
    _run("normal", benchmark, profile, record_experiment)
