"""Figure 14 — real-world datasets (UX, NE substitutes), |P|/|O| sweep.

Paper shape: both solvers slow down as the site ratio shrinks from 1/50
to 1/500, but MaxOverlap degrades ~100x while MaxFirst only ~3x.
The datasets are seeded substitutes with Table III cardinalities
(DESIGN.md §4).
"""

import pytest

from conftest import assert_scores_agree, comparable_rows

from repro.bench.figures import fig14_real_world


def _run(dataset, benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig14_real_world(dataset, profile), iterations=1,
        rounds=1)
    record_experiment(result, chart_x="ratio",
                      chart_series=("maxfirst_s", "maxoverlap_s"))
    assert_scores_agree(result.rows)

    # Shape: MaxFirst degrades far more slowly than MaxOverlap as the
    # ratio shrinks (rows are ordered largest ratio first).
    both = comparable_rows(result.rows)
    if len(both) >= 2:
        mo_growth = both[-1]["maxoverlap_s"] / both[0]["maxoverlap_s"]
        mf_growth = (both[-1]["maxfirst_s"]
                     / max(both[0]["maxfirst_s"], 1e-9))
        assert mo_growth > mf_growth, \
            f"MaxOverlap should degrade faster: mo x{mo_growth:.1f} " \
            f"vs mf x{mf_growth:.1f}"
    # MaxFirst completes every point.
    assert all(row["maxfirst_s"] for row in result.rows)


@pytest.mark.benchmark(group="fig14")
def test_fig14a_ux(benchmark, profile, record_experiment):
    _run("ux", benchmark, profile, record_experiment)


@pytest.mark.benchmark(group="fig14")
def test_fig14b_ne(benchmark, profile, record_experiment):
    _run("ne", benchmark, profile, record_experiment)
