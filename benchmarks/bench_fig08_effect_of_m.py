"""Figure 8 — effect of the intersection-point threshold ``m``.

Paper: MaxFirst's runtime is essentially flat in ``m`` (50K uniform
customers, 500 sites); the result never changes.
"""

import pytest

from repro.bench.figures import fig08_effect_of_m


@pytest.mark.benchmark(group="fig08")
def test_fig08_effect_of_m(benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig08_effect_of_m(profile), iterations=1, rounds=1)
    record_experiment(result, chart_x="m", chart_series=("maxfirst_s",))

    times = [row["maxfirst_s"] for row in result.rows]
    scores = {round(row["score"], 9) for row in result.rows}
    # The answer is invariant in m ...
    assert len(scores) == 1
    # ... and runtime stays within a small band (paper: flat line).
    assert max(times) <= 4.0 * min(times), \
        f"m unexpectedly changes runtime: {times}"
