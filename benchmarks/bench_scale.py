"""Out-of-core scale benchmark: a 10M-customer solve under 480 MB.

The acceptance run of the storage tier (see DESIGN.md "§ Storage
tier"): build ten million NLCs straight into a ``memmap`` store with
:func:`repro.core.nlc.stream_nlc_chunks` — the full coordinate, weight
and SoA arrays never materialise — then solve the instance with
:func:`repro.engine.outofcore.solve_streamed`, which chunk-scans the
file for planning and attaches one tile window at a time.  The process
peak RSS is asserted **below the in-RAM SoA footprint of the instance**
(``6 fields x 8 bytes x 10M rows = 480,000,000 bytes``): the solve
provably never held its own input in memory.

Instance design: customers stream x-sorted through
:func:`~repro.datasets.synthetic.striped_uniform_chunks` (so tile row
windows are tight), sites are uniform, and one vertical strip carries
~1000x the weight of the rest.  The skew localises the optimum, which
keeps Phase I output-sensitive at this scale — the benchmark measures
the out-of-core *mechanics* (streamed build, chunked planning, windowed
tiles), not worst-case tessellation.  Scores stay positive everywhere,
so the store holds all ``n x k`` rows and the footprint claim is exact.

Run:

    PYTHONPATH=src python benchmarks/bench_scale.py            # full 10M
    PYTHONPATH=src python benchmarks/bench_scale.py --tiny     # CI smoke

Writes ``BENCH_scale.json``.  The memory ceiling is asserted at every
scale (the CI perf-gate job runs ``--tiny``); wall-clock numbers are
informational and move with the machine, the ``peak_rss_bytes <
rss_ceiling_bytes`` field must never move.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import store as nlc_store
from repro.core.nlc import stream_nlc_chunks
from repro.datasets.synthetic import striped_uniform_chunks, uniform_points
from repro.engine.outofcore import solve_streamed
from repro.obs import metrics as obs_metrics

#: The asserted ceiling: the in-RAM SoA footprint of the full-scale
#: instance.  Binding evidence of out-of-core behaviour at ``--tiny``
#: scale it is not (the interpreter alone fits many tiny instances);
#: at full scale staying under it proves the 480 MB input never sat in
#: memory at once.
RSS_CEILING_BYTES = 6 * 8 * 10_000_000

FULL = dict(n_customers=10_000_000, n_sites=1024, strips=1024, shards=64)
TINY = dict(n_customers=200_000, n_sites=256, strips=256, shards=16)

#: Per-strip weight scale: one hot strip, everything else ~1000x lighter.
HOT_FACTOR, COLD_FACTOR = 1.0, 0.001
BUILD_CHUNKS_SEED = 0
WEIGHT_SEED = 1
SITES_SEED = 7


def _peak_rss_bytes() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak * (1 if sys.platform == "darwin" else 1024))


def _weight_chunks(n: int, strips: int):
    """Per-strip weights, uniform [0.5, 1.5) scaled hot/cold — chunk
    lengths mirror :func:`striped_uniform_chunks`'s base/extra split.

    The hot strip is the *first* one: the tile schedule visits the grid
    row-major from the origin, so tile 0 contains the optimum and every
    later tile inherits a dominating Theorem 2 bound at its root.  (A
    mid-domain hot strip lets the all-cold tiles before it tessellate a
    near-tie score plateau under no bound — measurably hundreds of tied
    accepts whose Theorem 3 seed masks then dominate memory.)"""
    base, extra = divmod(n, strips)
    hot = 0
    for j in range(strips):
        m = base + (1 if j < extra else 0)
        rng = np.random.default_rng([WEIGHT_SEED, j])
        factor = HOT_FACTOR if j == hot else COLD_FACTOR
        yield rng.uniform(0.5, 1.5, m) * factor


def run(params: dict, k: int = 1, chunk_rows: int = 1_048_576) -> dict:
    n, strips = params["n_customers"], params["strips"]
    sites = uniform_points(params["n_sites"],
                           np.random.default_rng([SITES_SEED, 0]))
    rss_start = _peak_rss_bytes()
    counters_before = obs_metrics.REGISTRY.snapshot()

    t0 = time.perf_counter()
    writer = nlc_store.writer(n * k, "memmap")
    try:
        chunks = stream_nlc_chunks(
            striped_uniform_chunks(n, strips, seed=BUILD_CHUNKS_SEED),
            sites, k, weight_chunks=_weight_chunks(n, strips))
        for chunk in chunks:
            writer.append(chunk)
        owner = writer.finalize()
    except BaseException:
        writer.abort()
        raise
    t1 = time.perf_counter()

    try:
        result = solve_streamed(owner.handle, shards=params["shards"],
                                chunk_rows=chunk_rows)
        t2 = time.perf_counter()
        peak = _peak_rss_bytes()
        store_bytes = nlc_store.store_nbytes(owner.length)
        row = {
            "benchmark": "scale",
            **params, "k": k, "store": "memmap",
            "n_nlcs": owner.length,
            "store_bytes": store_bytes,
            "rss_ceiling_bytes": RSS_CEILING_BYTES,
            "rss_start_bytes": rss_start,
            "peak_rss_bytes": peak,
            "under_ceiling": peak < RSS_CEILING_BYTES,
            "score": result.score,
            "n_regions": len(result.regions),
            "max_cover": max((len(r.cover) for r in result.regions),
                             default=0),
            "build_s": round(t1 - t0, 3),
            "solve_s": round(t2 - t1, 3),
            "solve_timings": {name: round(seconds, 3) for name, seconds
                              in result.timings.items()},
            "counters": obs_metrics.REGISTRY.delta_since(counters_before),
            "gauges": obs_metrics.REGISTRY.gauges_snapshot(),
        }
    finally:
        nlc_store.detach()
        owner.close()
    if not row["under_ceiling"]:
        raise AssertionError(
            f"peak RSS {peak} >= ceiling {RSS_CEILING_BYTES}: the "
            f"out-of-core solve held too much of the instance in memory")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke scale (~200K customers)")
    parser.add_argument("--customers", type=int, default=None,
                        help="override the customer count (pilot runs)")
    parser.add_argument("--output", default="BENCH_scale.json")
    args = parser.parse_args(argv)
    params = dict(TINY if args.tiny else FULL)
    if args.customers is not None:
        params["n_customers"] = args.customers
    row = run(params)
    with open(args.output, "w") as fh:
        json.dump(row, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"n={row['n_nlcs']} nlcs ({row['store_bytes'] / 1e6:.0f} MB "
          f"on disk)  score={row['score']:.4f}  "
          f"build={row['build_s']}s solve={row['solve_s']}s  "
          f"peak RSS {row['peak_rss_bytes'] / 1e6:.0f} MB < ceiling "
          f"{row['rss_ceiling_bytes'] / 1e6:.0f} MB")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
