"""Figure 13 — effectiveness of the pruning strategies.

Paper shape: the quadrants needing further partitioning stay at a few
percent of |O| (2% uniform, 3% normal in the paper); Theorem 2 does the
bulk of the pruning; normal data generates more quadrants but stays low.
"""

import pytest

from repro.bench.figures import fig13_pruning


def _run(distribution, benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig13_pruning(distribution, profile), iterations=1,
        rounds=1)
    record_experiment(result)
    row = result.rows[0]
    # Splits are a small fraction of the customer count.  The paper
    # reports 2-3% at 50K customers; the ratio shrinks with |O| (split
    # counts grow sub-linearly), so the tiny profile gets a loose bound.
    limit = 0.25 if profile.n_customers >= 5_000 else 1.0
    assert row["splits_per_customer"] < limit, row
    # Theorem 2 prunes the majority of the pruned quadrants.
    assert row["pruned1"] > row["pruned2"], row
    # Bookkeeping: every generated quadrant is accounted for.
    assert row["total"] >= row["splits"] + row["pruned1"] + row["pruned2"]
    return row


@pytest.mark.benchmark(group="fig13")
def test_fig13a_uniform(benchmark, profile, record_experiment):
    _run("uniform", benchmark, profile, record_experiment)


@pytest.mark.benchmark(group="fig13")
def test_fig13b_normal(benchmark, profile, record_experiment):
    _run("normal", benchmark, profile, record_experiment)
