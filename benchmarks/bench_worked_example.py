"""Table I / Figures 1-3 — the paper's worked example.

Regenerates the quadrant bound table (a Table I analogue — the paper
never publishes its example's coordinates, so the scene is a constructed
equivalent pinned to the same headline numbers: 1.6 vs 0.6 under
{0.8, 0.2}, 1.5 under {0.5, 0.5}).
"""

import pytest

from repro.bench.runner import ExperimentResult
from repro.bench.worked_example import (EXPECTED_SKEWED_SCORE,
                                        EXPECTED_UNIFORM_SCORE,
                                        SKEWED_MODEL, UNIFORM_MODEL,
                                        initial_quadrant_bounds,
                                        worked_example_problem)
from repro.core.maxfirst import MaxFirst


@pytest.mark.benchmark(group="table1")
def test_table1_worked_example(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: initial_quadrant_bounds(generations=4), iterations=1,
        rounds=1)
    result = ExperimentResult(
        "table1_worked_example",
        rows=rows,
        meta={"note": "constructed scene; paper coordinates unpublished",
              "model": str(SKEWED_MODEL)})
    record_experiment(result)

    for row in rows:
        assert row["min_hat"] <= row["max_hat"] + 1e-12

    skewed = MaxFirst().solve(worked_example_problem(SKEWED_MODEL))
    uniform = MaxFirst().solve(worked_example_problem(UNIFORM_MODEL))
    assert skewed.score == pytest.approx(EXPECTED_SKEWED_SCORE)
    assert uniform.score == pytest.approx(EXPECTED_UNIFORM_SCORE)
