"""Figure 11 — effect of |P| on runtime (a: uniform, b: normal).

Paper shape: both solvers get FASTER as sites increase (smaller NLCs,
less overlap), and the drop is steeper under the uniform distribution.
"""

import pytest

from conftest import assert_scores_agree, comparable_rows

from repro.bench.figures import fig11_effect_of_sites


def _run(distribution, benchmark, profile, record_experiment):
    result = benchmark.pedantic(
        lambda: fig11_effect_of_sites(distribution, profile),
        iterations=1, rounds=1)
    record_experiment(result, chart_x="n_sites",
                      chart_series=("maxfirst_s", "maxoverlap_s"))
    assert_scores_agree(result.rows)

    # Shape: runtimes trend downward from the fewest to the most sites.
    mo = [row["maxoverlap_s"] for row in result.rows
          if row["maxoverlap_s"]]
    if len(mo) >= 2:
        assert mo[-1] < mo[0], \
            f"MaxOverlap should speed up with more sites: {mo}"
    mf = [row["maxfirst_s"] for row in result.rows]
    assert mf[-1] < 4.0 * mf[0], "MaxFirst must not blow up with |P|"
    return result


@pytest.mark.benchmark(group="fig11")
def test_fig11a_uniform(benchmark, profile, record_experiment):
    _run("uniform", benchmark, profile, record_experiment)


@pytest.mark.benchmark(group="fig11")
def test_fig11b_normal(benchmark, profile, record_experiment):
    _run("normal", benchmark, profile, record_experiment)
