"""Setup shim.

The primary metadata lives in ``pyproject.toml``; this file exists so the
package installs in fully offline environments where pip cannot fetch the
``wheel`` backend required for PEP 660 editable installs
(``python setup.py develop`` only needs setuptools).
"""

from setuptools import setup

setup()
