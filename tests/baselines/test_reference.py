"""Tests for repro.baselines.reference."""

import numpy as np
import pytest

from repro.baselines.gridsearch import grid_search
from repro.baselines.reference import (ReferenceSolution, reference_solve,
                                       reference_solve_nlcs)
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.core.scoring import neighborhood_score
from repro.datasets.synthetic import synthetic_instance
from repro.index.circleset import CircleSet


class TestReferenceSolve:
    def test_empty_raises(self):
        empty = CircleSet(np.zeros(0), np.zeros(0), np.zeros(0),
                          np.zeros(0))
        with pytest.raises(ValueError):
            reference_solve_nlcs(empty)

    def test_single_customer(self):
        sol = reference_solve(MaxBRkNNProblem([(0, 0)], [(2, 0)]))
        assert sol.score == pytest.approx(1.0)
        assert sol.candidate_count == 1  # just the centre
        np.testing.assert_allclose(sol.locations, [[0.0, 0.0]])

    def test_two_overlapping(self):
        sol = reference_solve(MaxBRkNNProblem([(0, 0), (1, 0)],
                                              [(3, 0), (-3, 0)]))
        assert sol.score == pytest.approx(2.0)

    def test_locations_achieve_score(self):
        customers, sites = synthetic_instance(80, 8, "uniform", seed=13)
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  probability=[0.6, 0.4])
        sol = reference_solve(problem)
        nlcs = build_nlcs(problem)
        for x, y in sol.locations:
            value = neighborhood_score(nlcs, float(x), float(y), tol=1e-9)
            assert value == pytest.approx(sol.score)

    def test_dominates_grid_search(self):
        """Grid samples are real locations, so the reference optimum must
        dominate any lattice value, and the gap closes as the lattice
        refines."""
        customers, sites = synthetic_instance(60, 6, "uniform", seed=3)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        sol = reference_solve(problem)
        coarse = grid_search(problem, samples_per_axis=20)
        fine = grid_search(problem, samples_per_axis=100)
        assert coarse.score <= sol.score + 1e-9
        assert fine.score <= sol.score + 1e-9
        assert fine.score >= coarse.score - 1e-9

    def test_distinct_cover_count(self):
        problem = MaxBRkNNProblem([(0, 0), (100, 0)], [(2, 0), (102, 0)])
        sol = reference_solve(problem)
        nlcs = build_nlcs(problem)
        assert sol.score == pytest.approx(1.0)
        # Two isolated NLCs tie: two distinct optimal covers.
        assert sol.distinct_cover_count(nlcs) == 2

    def test_solution_is_frozen(self):
        sol = reference_solve(MaxBRkNNProblem([(0, 0)], [(1, 0)]))
        assert isinstance(sol, ReferenceSolution)
        with pytest.raises(AttributeError):
            sol.score = 2.0
