"""Tests for repro.baselines.maxoverlap."""

import numpy as np
import pytest

from repro.baselines.maxoverlap import MaxOverlap, _CircleGrid
from repro.baselines.reference import reference_solve
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.geometry.circle import Circle
from repro.index.circleset import CircleSet

from tests.conftest import assert_scores_close


class TestBasics:
    def test_empty_nlcs_raises(self):
        empty = CircleSet(np.zeros(0), np.zeros(0), np.zeros(0),
                          np.zeros(0))
        with pytest.raises(ValueError):
            MaxOverlap().solve_nlcs(empty)

    def test_single_customer(self):
        result = MaxOverlap().solve(MaxBRkNNProblem([(0, 0)], [(2, 0)]))
        assert result.score == pytest.approx(1.0)
        # Isolated NLC: its centre seeds the candidate, region = disk.
        assert result.best_region.area == pytest.approx(np.pi * 4,
                                                        rel=1e-6)

    def test_isolated_nlcs_fallback(self):
        """Instances violating MaxOverlap's every-NLC-intersects
        assumption still solve (robustness extension)."""
        result = MaxOverlap().solve(MaxBRkNNProblem(
            [(0, 0), (100, 100), (200, 0)],
            [(1, 0), (101, 100), (201, 0)]))
        assert result.score == pytest.approx(1.0)

    def test_stats_populated(self, small_uniform_problem):
        result = MaxOverlap().solve(small_uniform_problem)
        stats = result.overlap_stats
        assert stats.nlc_count == small_uniform_problem.n_customers
        assert stats.intersecting_pairs <= stats.candidate_pairs
        assert stats.intersection_points <= 2 * stats.intersecting_pairs
        assert stats.coverage_tests > 0

    def test_timings_recorded(self, small_uniform_problem):
        result = MaxOverlap().solve(small_uniform_problem)
        assert {"nlc", "pairs", "coverage", "region"} <= set(
            result.timings)


class TestAgainstReferenceAndMaxFirst:
    @pytest.mark.parametrize("seed", range(6))
    def test_uniform_probability_agreement(self, seed):
        customers, sites = synthetic_instance(120, 10, "uniform",
                                              seed=seed)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        mo = MaxOverlap().solve(problem)
        mf = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(mo.score, ref.score, context=f"seed={seed}")
        assert_scores_close(mo.score, mf.score, context=f"seed={seed}")

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_brknn_extension(self, k):
        customers, sites = synthetic_instance(100, 8, "uniform", seed=42)
        problem = MaxBRkNNProblem(customers, sites, k=k)
        mo = MaxOverlap().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(mo.score, ref.score, context=f"k={k}")

    def test_generalized_model_agreement(self):
        """Our MaxOverlap generalises to weights and skewed models."""
        rng = np.random.default_rng(1)
        customers, sites = synthetic_instance(90, 9, "uniform", seed=2)
        weights = rng.uniform(0.5, 2.0, 90)
        problem = MaxBRkNNProblem(customers, sites, k=2, weights=weights,
                                  probability=[0.7, 0.3])
        mo = MaxOverlap().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(mo.score, ref.score)

    def test_normal_distribution(self):
        customers, sites = synthetic_instance(130, 8, "normal", seed=4)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        mo = MaxOverlap().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(mo.score, ref.score)

    def test_regions_contain_maxfirst_locations(self,
                                                small_uniform_problem):
        mo = MaxOverlap().solve(small_uniform_problem)
        mf = MaxFirst().solve(small_uniform_problem)
        # Each solver's best location must lie in one of the other's
        # regions (score ties permitting, region sets coincide).
        p = mf.optimal_location()
        assert any(r.contains_point(p.x, p.y, tol=1e-9)
                   for r in mo.regions)


class TestCircleGrid:
    def make(self, circles, scores=None, target=4.0):
        nlcs = CircleSet.from_circles(circles, scores=scores)
        return nlcs, _CircleGrid(nlcs, target)

    def test_pairs_match_brute_force(self, rng):
        circles = [Circle(float(rng.random()), float(rng.random()),
                          float(rng.uniform(0.02, 0.3)))
                   for _ in range(80)]
        nlcs, grid = self.make(circles)
        a, b, _ = grid.intersecting_pairs()
        got = sorted((min(i, j), max(i, j))
                     for i, j in zip(a.tolist(), b.tolist()))
        assert len(got) == len(set(got)), "duplicate pair"
        expected = sorted(
            (i, j)
            for i in range(len(circles)) for j in range(i + 1,
                                                        len(circles))
            if circles[i].intersects_circle(circles[j]))
        assert got == expected

    def test_point_candidates_superset_of_coverers(self, rng):
        circles = [Circle(float(rng.random()), float(rng.random()),
                          float(rng.uniform(0.05, 0.3)))
                   for _ in range(60)]
        nlcs, grid = self.make(circles)
        for _ in range(30):
            x, y = rng.random(2)
            bucket = set(grid.point_candidates(float(x), float(y)).tolist())
            coverers = {i for i, c in enumerate(circles)
                        if c.contains_point(float(x), float(y))}
            assert coverers <= bucket

    def test_coverage_scores_match_brute(self, rng):
        circles = [Circle(float(rng.random()), float(rng.random()),
                          float(rng.uniform(0.05, 0.4)))
                   for _ in range(50)]
        scores = rng.uniform(0.1, 2.0, 50).tolist()
        nlcs, grid = self.make(circles, scores=scores)
        points = rng.random((40, 2))
        got, tests = grid.coverage_scores(points, tol=0.0)
        assert tests > 0
        for i, (x, y) in enumerate(points):
            expected = sum(s for c, s in zip(circles, scores)
                           if c.contains_point(float(x), float(y)))
            assert got[i] == pytest.approx(expected)

    def test_concentric_pairs_counted_but_pointless(self):
        # Concentric disks intersect as disks but have no circumference
        # crossings.
        nlcs, grid = self.make([Circle(0, 0, 1), Circle(0, 0, 2)])
        a, b, _ = grid.intersecting_pairs()
        assert len(a) == 1
        from repro.baselines.maxoverlap import _intersection_points
        points, isolated = _intersection_points(nlcs, a, b)
        assert points.shape[0] == 0
        assert not isolated.any()
