"""Tests for repro.baselines.gridsearch."""

import pytest

from repro.baselines.gridsearch import GridSearchResult, grid_search
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance


class TestGridSearch:
    def test_invalid_samples(self):
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0)])
        with pytest.raises(ValueError):
            grid_search(problem, samples_per_axis=1)

    def test_result_fields(self):
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0)])
        result = grid_search(problem, samples_per_axis=32)
        assert isinstance(result, GridSearchResult)
        assert result.samples == 32 * 32
        assert result.resolution > 0

    def test_single_disk_found(self):
        problem = MaxBRkNNProblem([(0, 0)], [(2, 0)])
        result = grid_search(problem, samples_per_axis=64)
        assert result.score == pytest.approx(1.0)
        x, y = result.location
        assert x * x + y * y <= 4.0 + 1e-9

    def test_never_exceeds_exact_optimum(self):
        customers, sites = synthetic_instance(80, 8, "uniform", seed=21)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        exact = MaxFirst().solve(problem)
        approx = grid_search(problem, samples_per_axis=96)
        assert approx.score <= exact.score + 1e-9

    def test_converges_with_resolution(self):
        customers, sites = synthetic_instance(60, 6, "uniform", seed=8)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        exact = MaxFirst().solve(problem).score
        coarse = grid_search(problem, samples_per_axis=16).score
        fine = grid_search(problem, samples_per_axis=160).score
        assert fine >= coarse - 1e-9
        # A fine lattice should land close to the optimum.
        assert fine >= 0.8 * exact
