"""Run the doctest examples embedded in public docstrings.

Docstring examples are part of the documented contract; this keeps them
honest without wiring --doctest-modules into the default pytest options
(benchmarks and private modules should not be doctest-scanned).
"""

import doctest

import pytest

import repro.core.api
import repro.core.influence
import repro.core.probability
import repro.core.problem
import repro.geometry.point
import repro.viz.svg

MODULES = [
    repro.core.api,
    repro.core.influence,
    repro.core.probability,
    repro.core.problem,
    repro.geometry.point,
    repro.viz.svg,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: doctest failures"
    # Modules in this list are expected to actually carry examples.
    assert results.attempted > 0, f"{module.__name__}: no doctests found"
