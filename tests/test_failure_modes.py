"""Failure injection: hostile inputs must fail loudly and cleanly.

Production surfaces are judged by how they break: every entry point must
reject malformed input with a clear ``ValueError`` (never a deep numpy
traceback or a silent wrong answer).
"""

import numpy as np
import pytest

import repro
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.loader import load_points_csv
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.l1.squares import SquareSet


class TestHostileProblemInputs:
    def test_nan_coordinates(self):
        with pytest.raises(ValueError, match="non-finite"):
            MaxBRkNNProblem([(0.0, float("nan"))], [(1.0, 1.0)])

    def test_inf_coordinates(self):
        with pytest.raises(ValueError, match="non-finite"):
            MaxBRkNNProblem([(0.0, 0.0)], [(float("inf"), 1.0)])

    def test_3d_points(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            MaxBRkNNProblem(np.zeros((3, 3)), [(0.0, 0.0)])

    def test_string_points(self):
        with pytest.raises((ValueError, TypeError)):
            MaxBRkNNProblem([("a", "b")], [(0.0, 0.0)])

    def test_k_bigger_than_sites_message_names_both(self):
        with pytest.raises(ValueError, match="k=5.*2"):
            MaxBRkNNProblem([(0, 0)], [(1, 1), (2, 2)], k=5)

    def test_probability_not_summing(self):
        with pytest.raises(ValueError, match="sum to 1"):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], probability=[0.9])

    def test_increasing_probability_explains_why(self):
        with pytest.raises(ValueError, match="non-increasing"):
            MaxBRkNNProblem([(0, 0)], [(1, 1), (2, 2)], k=2,
                            probability=[0.2, 0.8])


class TestHostileGeometryInputs:
    def test_rect_validates_orientation(self):
        with pytest.raises(ValueError, match="malformed"):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_circleset_rejects_nan_radius_consequences(self):
        # NaN radii poison comparisons; the min() check rejects them
        # indirectly (NaN < 0 is False, but classify must not crash).
        cs = CircleSet(np.array([0.0]), np.array([0.0]),
                       np.array([np.nan]), np.array([1.0]))
        inter, _, max_hat, _ = cs.classify_rect(Rect(0, 0, 1, 1))
        assert len(inter) == 0  # NaN compares false: disk never matches
        assert max_hat == 0.0

    def test_squareset_negative_half(self):
        with pytest.raises(ValueError, match="negative"):
            SquareSet(np.zeros(1), np.zeros(1), np.array([-0.5]),
                      np.zeros(1))


class TestHostileFiles:
    def test_binaryish_csv(self, tmp_path):
        path = tmp_path / "binary.csv"
        path.write_bytes(b"\x00\x01,\x02\x03\nnot,numbers\n")
        with pytest.raises(ValueError):
            load_points_csv(path)

    def test_truncated_result_json(self, tmp_path):
        from repro.io import load_result
        path = tmp_path / "broken.json"
        path.write_text('{"format_version": 1, "score": 1.0')
        with pytest.raises(Exception):  # json decode error surfaces
            load_result(path)

    def test_result_json_missing_keys(self, tmp_path):
        from repro.io import load_result
        path = tmp_path / "partial.json"
        path.write_text('{"format_version": 1, "score": 1.0}')
        with pytest.raises(KeyError):
            load_result(path)


class TestSolverGuardRails:
    def test_max_iterations_error_is_actionable(self,
                                                small_uniform_problem):
        with pytest.raises(RuntimeError, match="resolution_fraction"):
            repro.MaxFirst(max_iterations=2).solve(small_uniform_problem)

    def test_l1_grid_guard_is_actionable(self, monkeypatch):
        import repro.l1.solver as solver_mod
        monkeypatch.setattr(solver_mod, "MAX_GRID_CELLS", 1)
        with pytest.raises(ValueError, match="quadratic"):
            solver_mod.solve_l1(MaxBRkNNProblem(
                [(0, 0), (1, 0)], [(5, 5)], k=1))

    def test_weights_all_zero_still_solves(self):
        # Degenerate but legal: everything scores 0, every solver copes.
        problem = MaxBRkNNProblem([(0, 0), (1, 0)], [(5, 5)],
                                  weights=[0.0, 0.0])
        result = repro.MaxFirst().solve(problem)
        assert result.score == 0.0
        assert result.regions == ()
        assert repro.MaxOverlap().solve(problem).score == 0.0
        from repro.l1 import solve_l1
        assert solve_l1(problem).score == 0.0

    def test_explicit_empty_nlcs_still_raise(self):
        # solve_nlcs on an explicitly empty set is caller error.
        empty = CircleSet(np.zeros(0), np.zeros(0), np.zeros(0),
                          np.zeros(0))
        with pytest.raises(ValueError, match="empty"):
            repro.MaxFirst().solve_nlcs(empty)
