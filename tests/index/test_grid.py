"""Tests for repro.index.grid."""

import itertools

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.index.grid import UniformGrid


def random_boxes(rng, n, extent=0.1):
    boxes = []
    for i in range(n):
        x, y = rng.random(2)
        w, h = rng.random(2) * extent
        boxes.append((Rect(float(x), float(y), float(x + w), float(y + h)),
                      i))
    return boxes


class TestConstruction:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            UniformGrid(Rect(0, 0, 1, 1), 0.0)

    def test_for_boxes_empty_raises(self):
        with pytest.raises(ValueError):
            UniformGrid.for_boxes([])

    def test_for_boxes_reasonable_shape(self, rng):
        boxes = [rect for rect, _ in random_boxes(rng, 200)]
        grid = UniformGrid.for_boxes(boxes)
        nx, ny = grid.shape
        assert 1 <= nx <= 200
        assert 1 <= ny <= 200

    def test_zero_extent_boxes(self):
        # All-point boxes at one location must still build a valid grid.
        boxes = [Rect(0.5, 0.5, 0.5, 0.5)] * 10
        grid = UniformGrid.for_boxes(boxes)
        assert grid.shape >= (1, 1)


class TestQueries:
    def test_query_rect_matches_brute(self, rng):
        boxes = random_boxes(rng, 150)
        grid = UniformGrid.for_boxes([r for r, _ in boxes])
        for rect, item in boxes:
            grid.insert(rect, item)
        for query in (Rect(0.2, 0.2, 0.5, 0.5), Rect(0, 0, 1.2, 1.2),
                      Rect(0.9, 0.9, 0.91, 0.91)):
            got = sorted(grid.query_rect(query))
            expected = sorted(i for r, i in boxes if r.intersects(query))
            assert got == expected

    def test_query_point_matches_brute(self, rng):
        boxes = random_boxes(rng, 150)
        grid = UniformGrid.for_boxes([r for r, _ in boxes])
        for rect, item in boxes:
            grid.insert(rect, item)
        for _ in range(50):
            x, y = rng.random(2)
            got = sorted(grid.query_point(float(x), float(y)))
            expected = sorted(i for r, i in boxes
                              if r.contains_point(float(x), float(y)))
            assert got == expected

    def test_out_of_bounds_items_still_found(self):
        grid = UniformGrid(Rect(0, 0, 1, 1), 0.25)
        grid.insert(Rect(5, 5, 6, 6), "far")
        assert grid.query_rect(Rect(4, 4, 7, 7)) == ["far"]

    def test_len_counts_items_not_cells(self, rng):
        grid = UniformGrid(Rect(0, 0, 1, 1), 0.1)
        grid.insert(Rect(0, 0, 1, 1), "big")  # covers many cells
        assert len(grid) == 1


class TestCandidatePairs:
    def test_pairs_unique_and_complete(self, rng):
        boxes = random_boxes(rng, 120, extent=0.2)
        grid = UniformGrid.for_boxes([r for r, _ in boxes])
        for rect, item in boxes:
            grid.insert(rect, item)
        got = sorted(tuple(sorted(p)) for p in grid.candidate_pairs())
        assert len(got) == len(set(got)), "pair emitted twice"
        expected = sorted(
            tuple(sorted((i, j)))
            for (ra, i), (rb, j) in itertools.combinations(boxes, 2)
            if ra.intersects(rb))
        assert got == expected

    def test_no_pairs_when_disjoint(self):
        grid = UniformGrid(Rect(0, 0, 10, 10), 1.0)
        grid.insert(Rect(0, 0, 0.5, 0.5), "a")
        grid.insert(Rect(5, 5, 5.5, 5.5), "b")
        assert list(grid.candidate_pairs()) == []
