"""Tests for the compiled-kernel build shim's cache hygiene.

The shared library is loaded from a predictable path, so the cache
directory must be private to the current user — a world- or
group-writable cache on a shared machine would let another local user
plant a malicious library under the precomputed name.
"""

import os
import stat

import pytest

from repro.index import _ckernel


@pytest.fixture
def cache_home(tmp_path, monkeypatch):
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
    return tmp_path


class TestCacheDir:
    def test_created_private(self, cache_home):
        path = _ckernel._cache_dir()
        assert path is not None
        assert path.startswith(str(cache_home))
        st = os.stat(path)
        assert stat.S_ISDIR(st.st_mode)
        assert st.st_mode & 0o077 == 0
        if hasattr(os, "getuid"):
            assert st.st_uid == os.getuid()

    def test_refuses_group_writable_dir(self, cache_home):
        path = os.path.join(str(cache_home), "repro", "ckernel")
        os.makedirs(path, mode=0o770)
        # Some filesystems mask the group bit via umask; set explicitly.
        os.chmod(path, 0o770)
        assert _ckernel._cache_dir() is None

    def test_refuses_symlinked_dir(self, cache_home, tmp_path_factory):
        real = tmp_path_factory.mktemp("elsewhere")
        os.makedirs(os.path.join(str(cache_home), "repro"), mode=0o700)
        os.symlink(str(real),
                   os.path.join(str(cache_home), "repro", "ckernel"))
        assert _ckernel._cache_dir() is None


class TestOwnedPrivate:
    def test_missing_path(self, tmp_path):
        assert not _ckernel._owned_private(str(tmp_path / "nope"),
                                           want_dir=False)

    def test_accepts_private_file(self, tmp_path):
        p = tmp_path / "lib.so"
        p.write_bytes(b"")
        os.chmod(p, 0o700)
        assert _ckernel._owned_private(str(p), want_dir=False)

    def test_refuses_world_writable_file(self, tmp_path):
        p = tmp_path / "lib.so"
        p.write_bytes(b"")
        os.chmod(p, 0o777)
        assert not _ckernel._owned_private(str(p), want_dir=False)

    def test_refuses_symlink(self, tmp_path):
        target = tmp_path / "real.so"
        target.write_bytes(b"")
        os.chmod(target, 0o700)
        link = tmp_path / "lib.so"
        os.symlink(str(target), str(link))
        assert not _ckernel._owned_private(str(link), want_dir=False)

    def test_wants_dir_rejects_file(self, tmp_path):
        p = tmp_path / "f"
        p.write_bytes(b"")
        os.chmod(p, 0o700)
        assert not _ckernel._owned_private(str(p), want_dir=True)


class TestBuildRoundTrip:
    def test_build_lands_in_private_cache(self, cache_home):
        """End-to-end: a (re)build under the fresh cache home produces a
        loadable, privately-owned library — or degrades to None when no
        compiler exists (the documented fallback)."""
        lib_path = _ckernel._build(_ckernel._SOURCE)
        if lib_path is None:
            pytest.skip("no C compiler available")
        assert lib_path.startswith(str(cache_home))
        assert _ckernel._owned_private(lib_path, want_dir=False)
        # Second call must hit the cache (same path, no rebuild error).
        assert _ckernel._build(_ckernel._SOURCE) == lib_path
