"""Tests for repro.index.kdtree."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.kdtree import KDTree

from tests.conftest import brute_knn_distances


@pytest.fixture
def points(rng):
    return rng.random((400, 2))


class TestConstruction:
    def test_empty(self):
        tree = KDTree([])
        assert len(tree) == 0
        assert tree.query(0.0, 0.0, k=1) == []

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree([(0, 0)], leaf_size=0)

    def test_point_accessor(self):
        tree = KDTree([(1.0, 2.0), (3.0, 4.0)])
        assert tree.point(1) == (3.0, 4.0)


class TestQuery:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KDTree([(0, 0)]).query(0.0, 0.0, k=0)

    def test_single_point(self):
        tree = KDTree([(1.0, 1.0)])
        [(d, i)] = tree.query(0.0, 0.0, k=1)
        assert i == 0
        assert d == pytest.approx(math.sqrt(2))

    def test_matches_brute_force(self, points):
        tree = KDTree(points)
        queries = np.array([(0.5, 0.5), (0.0, 1.0), (-0.5, 2.0)])
        for k in (1, 3, 10, 50):
            expected = brute_knn_distances(queries, points, k)
            for qi, (x, y) in enumerate(queries):
                got = [d for d, _ in tree.query(float(x), float(y), k=k)]
                assert got == pytest.approx(expected[qi].tolist())

    def test_k_exceeds_size(self, rng):
        pts = rng.random((4, 2))
        tree = KDTree(pts)
        assert len(tree.query(0.5, 0.5, k=10)) == 4

    def test_distances_ascending(self, points):
        tree = KDTree(points)
        dists = [d for d, _ in tree.query(0.2, 0.8, k=30)]
        assert dists == sorted(dists)

    def test_duplicate_points_deterministic(self):
        # Ties broken by insertion index.
        tree = KDTree([(1.0, 1.0)] * 5 + [(2.0, 2.0)])
        got = tree.query(1.0, 1.0, k=5)
        assert [i for _, i in got] == [0, 1, 2, 3, 4]

    def test_query_on_stored_point(self, points):
        tree = KDTree(points)
        x, y = points[42]
        d, i = tree.query(float(x), float(y), k=1)[0]
        assert d == 0.0
        assert i == 42


class TestQueryRadius:
    def test_negative_radius(self):
        with pytest.raises(ValueError):
            KDTree([(0, 0)]).query_radius(0.0, 0.0, -1.0)

    def test_matches_brute_force(self, points):
        tree = KDTree(points)
        for radius in (0.05, 0.2, 0.7):
            got = tree.query_radius(0.5, 0.5, radius)
            expected = sorted(
                i for i, (x, y) in enumerate(points)
                if math.hypot(x - 0.5, y - 0.5) <= radius)
            assert got == expected

    def test_zero_radius_hits_exact_point(self, points):
        tree = KDTree(points)
        x, y = points[7]
        assert 7 in tree.query_radius(float(x), float(y), 0.0)


class TestKDTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False)),
        min_size=1, max_size=150),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_knn_equivalence(self, pts, k, qx, qy):
        arr = np.array(pts)
        k = min(k, len(pts))
        tree = KDTree(arr, leaf_size=4)
        got = [d for d, _ in tree.query(qx, qy, k=k)]
        expected = brute_knn_distances(np.array([[qx, qy]]), arr, k)[0]
        assert got == pytest.approx(expected.tolist(), rel=1e-9, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False)),
        min_size=1, max_size=100),
        st.floats(min_value=0, max_value=5, allow_nan=False))
    def test_radius_equivalence(self, pts, radius):
        tree = KDTree(pts, leaf_size=4)
        got = tree.query_radius(0.0, 0.0, radius)
        # Match the implementation's closed-ball contract in the squared
        # metric (hypot rounds differently at exact-boundary points).
        expected = sorted(i for i, (x, y) in enumerate(pts)
                          if x * x + y * y <= radius * radius)
        assert got == expected
