"""Bit-identity tests for the batched rectangle classification kernels.

The batched kernels (``CircleSet.classify_rects`` and the compiled
quad-split fast path) are pure performance rewrites of the scalar
``classify_rect``: every index array, containing mask and score sum they
return must be *exactly* equal to the scalar kernel's — not merely
close.  MaxFirst's split order, prune decisions and stats counters all
hang off these values, so an ulp of drift here silently changes the
search.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


def make_set(seed: int, n: int = 50) -> CircleSet:
    rng = np.random.default_rng(seed)
    return CircleSet(rng.random(n), rng.random(n),
                     rng.uniform(0.02, 0.5, n),
                     rng.uniform(0.1, 2.0, n))


def assert_batch_matches_scalar(circles, rects, candidates, graze_tol):
    """classify_rects must be element-wise identical to looped
    classify_rect."""
    batched = circles.classify_rects(rects, candidates,
                                     graze_tol=graze_tol)
    assert len(batched) == len(rects)
    for rect, (b_idx, b_mask, b_max, b_min) in zip(rects, batched):
        s_idx, s_mask, s_max, s_min = circles.classify_rect(
            rect, candidates, graze_tol=graze_tol)
        np.testing.assert_array_equal(b_idx, s_idx)
        np.testing.assert_array_equal(b_mask, s_mask)
        assert b_mask.dtype == np.bool_
        # Bit-identical, not approximately equal.
        assert b_max == s_max
        assert b_min == s_min


rect_strategy = st.tuples(
    st.floats(-0.2, 1.2), st.floats(-0.2, 1.2),
    st.floats(0.0, 1.0), st.floats(0.0, 1.0),
).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))


class TestClassifyRectsProperty:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**20),
           rects=st.lists(rect_strategy, min_size=0, max_size=6),
           graze_tol=st.sampled_from([0.0, 1e-12, 1e-9, 1e-3]),
           subset_seed=st.integers(0, 2**20))
    def test_matches_scalar_loop(self, seed, rects, graze_tol,
                                 subset_seed):
        circles = make_set(seed)
        rng = np.random.default_rng(subset_seed)
        n = len(circles)
        size = int(rng.integers(0, n + 1))
        candidates = np.sort(rng.choice(n, size=size,
                                        replace=False)).astype(np.int64)
        assert_batch_matches_scalar(circles, rects, candidates, graze_tol)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**20),
           rects=st.lists(rect_strategy, min_size=1, max_size=4))
    def test_all_candidates_default(self, seed, rects):
        circles = make_set(seed)
        batched = circles.classify_rects(rects)
        for rect, (b_idx, b_mask, b_max, b_min) in zip(rects, batched):
            s_idx, s_mask, s_max, s_min = circles.classify_rect(rect)
            np.testing.assert_array_equal(b_idx, s_idx)
            np.testing.assert_array_equal(b_mask, s_mask)
            assert (b_max, b_min) == (s_max, s_min)


class TestClassifyRectsEdges:
    def test_empty_candidates(self):
        circles = make_set(3)
        empty = np.zeros(0, dtype=np.int64)
        rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(0.2, 0.2, 0.4, 0.9)]
        assert_batch_matches_scalar(circles, rects, empty, 0.0)
        for idx, mask, max_hat, min_hat in circles.classify_rects(
                rects, empty):
            assert idx.shape == (0,) and mask.shape == (0,)
            assert max_hat == 0.0 and min_hat == 0.0

    def test_empty_rect_batch(self):
        circles = make_set(4)
        assert circles.classify_rects([]) == []

    def test_graze_boundary_disk(self):
        # A disk exactly tangent to the rect edge: graze_tol flips its
        # membership, and batched must flip identically.
        circles = CircleSet(np.array([2.0]), np.array([0.5]),
                            np.array([1.0]), np.array([1.0]))
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        cands = np.array([0], dtype=np.int64)
        for tol in (0.0, 1e-9, 0.5):
            assert_batch_matches_scalar(circles, [rect], cands, tol)

    def test_containing_boundary_disk(self):
        # A disk whose boundary passes exactly through the far corner:
        # containment is a <= test, exercised on both sides by tol.
        circles = CircleSet(np.array([0.0]), np.array([0.0]),
                            np.array([np.hypot(1.0, 1.0)]),
                            np.array([1.0]))
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        cands = np.array([0], dtype=np.int64)
        for tol in (0.0, 1e-9, 1e-3):
            assert_batch_matches_scalar(circles, [rect], cands, tol)

    def test_degenerate_rects(self):
        circles = make_set(9)
        cands = np.arange(len(circles), dtype=np.int64)
        rects = [Rect(0.3, 0.3, 0.3, 0.3),      # point
                 Rect(0.1, 0.4, 0.9, 0.4),      # horizontal sliver
                 Rect(0.5, 0.0, 0.5, 1.0)]      # vertical sliver
        assert_batch_matches_scalar(circles, rects, cands, 0.0)

    def test_large_batch_chunks(self):
        # Enough rects to force the broadcast chunking path.
        circles = make_set(11, n=40)
        rng = np.random.default_rng(0)
        rects = [Rect(x, y, x + w, y + h)
                 for x, y, w, h in zip(rng.random(300), rng.random(300),
                                       rng.random(300), rng.random(300))]
        cands = np.arange(len(circles), dtype=np.int64)
        assert_batch_matches_scalar(circles, rects, cands, 0.0)


class TestQuadSplitKernel:
    """The compiled single-pass split kernel against the numpy paths."""

    def _quad_case(self, seed, graze_tol=0.0):
        circles = make_set(seed)
        rng = np.random.default_rng(seed + 1)
        n = len(circles)
        candidates = np.sort(rng.choice(
            n, size=int(rng.integers(1, n + 1)),
            replace=False)).astype(np.int64)
        rect = Rect(0.1, 0.05, 0.95, 0.9)
        px = float(rng.uniform(rect.xmin, rect.xmax))
        py = float(rng.uniform(rect.ymin, rect.ymax))
        return circles, rect, px, py, candidates

    @pytest.mark.parametrize("seed", range(8))
    def test_quad_split_matches_scalar(self, seed):
        circles, rect, px, py, candidates = self._quad_case(seed)
        classifier = circles.rect_classifier(0.0)
        results = classifier.quad_split(rect.xmin, rect.ymin, rect.xmax,
                                        rect.ymax, px, py, candidates)
        if results is None:
            pytest.skip("compiled quad kernel unavailable")
        children = rect.split_at(px, py)
        assert len(children) == 4
        for child, (b_idx, b_mask, b_max, b_min) in zip(children, results):
            s_idx, s_mask, s_max, s_min = circles.classify_rect(
                child, candidates)
            np.testing.assert_array_equal(b_idx, s_idx)
            np.testing.assert_array_equal(b_mask, s_mask)
            assert b_mask.dtype == np.bool_
            assert b_max == s_max
            assert b_min == s_min

    def test_quad_split_degenerate_split_point(self):
        # px on the rect edge: two degenerate children; the kernel's
        # lanes must still mirror the scalar predicates exactly.
        circles = make_set(21)
        candidates = np.arange(len(circles), dtype=np.int64)
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        classifier = circles.rect_classifier(0.0)
        results = classifier.quad_split(0.0, 0.0, 1.0, 1.0, 0.0, 0.4,
                                        candidates)
        if results is None:
            pytest.skip("compiled quad kernel unavailable")
        children = (Rect(0.0, 0.0, 0.0, 0.4), Rect(0.0, 0.0, 1.0, 0.4),
                    Rect(0.0, 0.4, 0.0, 1.0), Rect(0.0, 0.4, 1.0, 1.0))
        for child, (b_idx, b_mask, b_max, b_min) in zip(children, results):
            s_idx, s_mask, s_max, s_min = circles.classify_rect(
                child, candidates)
            np.testing.assert_array_equal(b_idx, s_idx)
            np.testing.assert_array_equal(b_mask, s_mask)
            assert (b_max, b_min) == (s_max, s_min)

    def test_quad_split_empty_candidates(self):
        circles = make_set(22)
        classifier = circles.rect_classifier(0.0)
        results = classifier.quad_split(
            0.0, 0.0, 1.0, 1.0, 0.5, 0.5, np.zeros(0, dtype=np.int64))
        if results is None:
            pytest.skip("compiled quad kernel unavailable")
        assert len(results) == 4
        for idx, mask, max_hat, min_hat in results:
            assert idx.shape == (0,) and mask.shape == (0,)
            assert max_hat == 0.0 and min_hat == 0.0

    def test_quad_split_scratch_reuse_isolated(self):
        # Results must survive later calls that reuse the scratch rows.
        circles = make_set(23)
        candidates = np.arange(len(circles), dtype=np.int64)
        classifier = circles.rect_classifier(0.0)
        first = classifier.quad_split(0.0, 0.0, 1.0, 1.0, 0.5, 0.5,
                                      candidates)
        if first is None:
            pytest.skip("compiled quad kernel unavailable")
        snapshot = [(idx.copy(), mask.copy()) for idx, mask, _, _ in first]
        classifier.quad_split(0.2, 0.2, 0.8, 0.8, 0.4, 0.6, candidates)
        for (idx, mask, _, _), (idx0, mask0) in zip(first, snapshot):
            np.testing.assert_array_equal(idx, idx0)
            np.testing.assert_array_equal(mask, mask0)
