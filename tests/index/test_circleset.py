"""Tests for repro.index.circleset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import (Circle, circle_contains_rect,
                                   circle_intersects_rect)
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


def make_set(rng, n=60) -> CircleSet:
    cx = rng.random(n)
    cy = rng.random(n)
    r = rng.uniform(0.02, 0.4, n)
    scores = rng.uniform(0.1, 2.0, n)
    return CircleSet(cx, cy, r, scores)


class TestConstruction:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            CircleSet(np.zeros(2), np.zeros(2), np.zeros(3), np.zeros(2))

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            CircleSet(np.zeros(1), np.zeros(1), np.array([-1.0]),
                      np.zeros(1))

    def test_from_circles_default_scores(self):
        cs = CircleSet.from_circles([Circle(0, 0, 1), Circle(1, 1, 2)])
        assert len(cs) == 2
        assert cs.scores.tolist() == [1.0, 1.0]

    def test_circle_roundtrip(self):
        cs = CircleSet.from_circles([Circle(0.5, -0.25, 1.5)])
        assert cs.circle(0) == Circle(0.5, -0.25, 1.5)

    def test_bounding_box(self):
        cs = CircleSet.from_circles([Circle(0, 0, 1), Circle(3, 0, 2)])
        assert cs.bounding_box() == Rect(-1.0, -2.0, 5.0, 2.0)

    def test_bounding_box_empty_raises(self):
        cs = CircleSet(np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            cs.bounding_box()


class TestRectClassification:
    def test_masks_match_scalar_predicates(self, rng):
        cs = make_set(rng)
        rect = Rect(0.3, 0.3, 0.6, 0.7)
        inter = cs.intersects_rect_mask(rect)
        contain = cs.contains_rect_mask(rect)
        for i in range(len(cs)):
            c = cs.circle(i)
            assert inter[i] == circle_intersects_rect(c, rect)
            assert contain[i] == circle_contains_rect(c, rect)

    def test_classify_rect_consistency(self, rng):
        cs = make_set(rng)
        rect = Rect(0.2, 0.1, 0.5, 0.45)
        intersecting, containing_mask, max_hat, min_hat = cs.classify_rect(
            rect)
        assert min_hat <= max_hat + 1e-12
        assert max_hat == pytest.approx(cs.scores[intersecting].sum())
        assert min_hat == pytest.approx(
            cs.scores[intersecting[containing_mask]].sum())
        # Containing circles must be a subset of intersecting ones when
        # the rect has interior.
        for idx, contained in zip(intersecting, containing_mask):
            if contained:
                assert circle_contains_rect(cs.circle(int(idx)), rect)

    def test_classify_with_candidate_subset(self, rng):
        cs = make_set(rng)
        rect = Rect(0.4, 0.4, 0.55, 0.5)
        full_inter, _, full_max, full_min = cs.classify_rect(rect)
        # Using a superset candidate list must give identical results.
        candidates = np.arange(len(cs), dtype=np.int64)
        sub_inter, _, sub_max, sub_min = cs.classify_rect(rect, candidates)
        assert np.array_equal(full_inter, sub_inter)
        assert full_max == sub_max
        assert full_min == sub_min

    def test_hierarchy_invariant(self, rng):
        """A child quadrant's I-set is a subset of its parent's."""
        cs = make_set(rng)
        parent = Rect(0.1, 0.1, 0.9, 0.9)
        p_inter, _, _, _ = cs.classify_rect(parent)
        for child in parent.split_center():
            c_inter, _, c_max, _ = cs.classify_rect(child, p_inter)
            assert set(c_inter).issubset(set(p_inter))
            # Bound monotonicity: child max cannot exceed parent's.
            assert c_max <= cs.scores[p_inter].sum() + 1e-12

    def test_graze_tolerance_drops_hairline_overlap(self):
        cs = CircleSet.from_circles([Circle(0.0, 0.0, 1.0)])
        sliver = Rect(0.999999999, -1, 2, 1)  # overlap depth ~1e-9
        inter, _, max_hat, _ = cs.classify_rect(sliver, graze_tol=1e-6)
        assert len(inter) == 0
        assert max_hat == 0.0
        inter2, _, _, _ = cs.classify_rect(sliver, graze_tol=0.0)
        assert len(inter2) == 1

    def test_graze_tolerance_accepts_near_containment(self):
        cs = CircleSet.from_circles([Circle(0.0, 0.0, 1.0)])
        s = 0.7071067811865476  # corners a hair outside the circle
        rect = Rect(-s, -s, s, s)
        _, contain_strict, _, min_strict = cs.classify_rect(rect)
        _, contain_tol, _, min_tol = cs.classify_rect(rect, graze_tol=1e-6)
        assert min_tol == pytest.approx(1.0)
        assert contain_tol.all()

    def test_empty_intersection(self, rng):
        cs = make_set(rng)
        far = Rect(50, 50, 51, 51)
        inter, contain, max_hat, min_hat = cs.classify_rect(far)
        assert len(inter) == 0
        assert max_hat == 0.0
        assert min_hat == 0.0


class TestPointCoverage:
    def test_cover_score_matches_brute(self, rng):
        cs = make_set(rng)
        for _ in range(40):
            x, y = rng.random(2)
            expected = sum(
                float(s) for i, s in enumerate(cs.scores)
                if cs.circle(i).contains_point(float(x), float(y)))
            assert cs.cover_score_at(float(x), float(y)) == pytest.approx(
                expected)

    def test_cover_scores_batch_matches_single(self, rng):
        cs = make_set(rng)
        pts = rng.random((25, 2))
        candidates = np.arange(len(cs), dtype=np.int64)
        batch = cs.cover_scores_at_points(pts, candidates)
        for i, (x, y) in enumerate(pts):
            assert batch[i] == pytest.approx(
                cs.cover_score_at(float(x), float(y)))

    def test_tolerance_includes_boundary(self):
        cs = CircleSet.from_circles([Circle(0, 0, 1)], scores=[2.0])
        x = 1.0 + 1e-10
        assert cs.cover_score_at(x, 0.0, tol=0.0) == 0.0
        assert cs.cover_score_at(x, 0.0, tol=1e-9) == 2.0

    def test_candidate_subset_restricts(self, rng):
        cs = make_set(rng)
        subset = np.array([0, 1, 2], dtype=np.int64)
        mask = cs.contains_point_mask(0.5, 0.5, candidates=subset)
        assert mask.shape == (3,)


class TestCircleSetProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_theorem1_bounds_hold_on_random_rects(self, seed):
        """m̂in <= score(x) <= m̂ax for interior points x (Theorem 1,
        region semantics)."""
        rng = np.random.default_rng(seed)
        cs = make_set(rng, n=25)
        x1, y1 = rng.random(2)
        w, h = rng.uniform(0.01, 0.3, 2)
        rect = Rect(float(x1), float(y1), float(x1 + w), float(y1 + h))
        inter, contain, max_hat, min_hat = cs.classify_rect(rect)
        for _ in range(30):
            # Strictly interior sample points.
            px = rect.xmin + (0.05 + 0.9 * rng.random()) * rect.width
            py = rect.ymin + (0.05 + 0.9 * rng.random()) * rect.height
            # Open-disk score (region semantics: strict containment).
            d2 = (cs.cx - px) ** 2 + (cs.cy - py) ** 2
            open_score = float(cs.scores[d2 < cs.r * cs.r].sum())
            assert min_hat <= open_score + 1e-9
            assert open_score <= max_hat + 1e-9
