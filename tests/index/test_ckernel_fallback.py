"""Tests for the compiled-kernel shim's failure → fallback behaviour.

The build/load handlers are the codebase's first ``RPR003`` true
positives: they used to swallow every exception silently, so a broken
compiler or a hijacked library degraded to a quiet 2–3x slowdown with no
trace.  Expected failures must now (1) catch only the specific
load/compile error types, (2) warn, naming the numpy fallback, and
(3) leave unexpected exception types to propagate.
"""

import ctypes
import subprocess

import pytest

from repro.index import _ckernel


@pytest.fixture
def cache_home(tmp_path, monkeypatch):
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
    return tmp_path


@pytest.fixture
def fresh_kernel_cache(monkeypatch):
    """Reset the process-level memo so load_quad_kernel really runs."""
    monkeypatch.setattr(_ckernel, "_cached", None)
    monkeypatch.delenv("REPRO_NO_CKERNEL", raising=False)


class TestBuildFailureWarns:
    def test_compile_error_warns_and_degrades(self, cache_home,
                                              monkeypatch):
        def boom(*args, **kwargs):
            raise subprocess.CalledProcessError(1, args[0])

        monkeypatch.setattr(_ckernel.subprocess, "run", boom)
        with pytest.warns(RuntimeWarning, match="numpy"):
            assert _ckernel._build(_ckernel._SOURCE) is None

    def test_missing_compiler_warns_and_degrades(self, cache_home,
                                                 monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler-xyz")
        with pytest.warns(RuntimeWarning, match="build failed"):
            assert _ckernel._build(_ckernel._SOURCE) is None

    def test_unexpected_error_propagates(self, cache_home, monkeypatch):
        """A non-build error type is a bug, not a fallback case."""
        def boom(*args, **kwargs):
            raise ZeroDivisionError("not a build failure")

        monkeypatch.setattr(_ckernel.subprocess, "run", boom)
        with pytest.raises(ZeroDivisionError):
            _ckernel._build(_ckernel._SOURCE)


class TestLoadFailureWarns:
    def test_unloadable_library_warns_and_degrades(
            self, cache_home, monkeypatch, fresh_kernel_cache, tmp_path):
        fake = tmp_path / "fake.so"
        fake.write_bytes(b"\x7fELF not really")
        fake.chmod(0o700)
        monkeypatch.setattr(_ckernel, "_build",
                            lambda source: str(fake))
        with pytest.warns(RuntimeWarning, match="load failed"):
            assert _ckernel.load_quad_kernel() is None
        # The failed load is memoised: no second warning, same result.
        assert _ckernel.load_quad_kernel() is None

    def test_missing_symbol_warns_and_degrades(
            self, cache_home, monkeypatch, fresh_kernel_cache):
        class NoSymbols:
            def __getattr__(self, name):
                raise AttributeError(name)

        monkeypatch.setattr(_ckernel, "_build",
                            lambda source: "whatever.so")
        monkeypatch.setattr(_ckernel.ctypes, "CDLL",
                            lambda path: NoSymbols())
        with pytest.warns(RuntimeWarning, match="numpy"):
            assert _ckernel.load_quad_kernel() is None

    def test_gate_env_skips_build_entirely(self, monkeypatch,
                                           fresh_kernel_cache):
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")

        def fail(*a, **k):  # any build attempt is a gate violation
            raise AssertionError("gate bypassed")

        monkeypatch.setattr(_ckernel, "_build", fail)
        assert _ckernel.load_quad_kernel() is None
