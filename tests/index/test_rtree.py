"""Tests for repro.index.rtree."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.index.rtree import RTree


def point_items(points):
    return [(Rect(float(x), float(y), float(x), float(y)), i)
            for i, (x, y) in enumerate(points)]


def brute_range(points, query: Rect):
    return sorted(i for i, (x, y) in enumerate(points)
                  if query.contains_point(float(x), float(y)))


def brute_knn(points, x, y, k):
    d = sorted((math.hypot(px - x, py - y), i)
               for i, (px, py) in enumerate(points))
    return d[:k]


@pytest.fixture
def points(rng):
    return rng.random((300, 2))


class TestConstruction:
    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 1, 1)) == []
        assert tree.nearest(0.0, 0.0) == []

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_sizes(self, points):
        tree = RTree.bulk_load(point_items(points))
        assert len(tree) == points.shape[0]
        assert sorted(i for _, i in tree.items()) == list(
            range(points.shape[0]))

    def test_height_grows_logarithmically(self, rng):
        small = RTree.bulk_load(point_items(rng.random((10, 2))),
                                max_entries=4)
        big = RTree.bulk_load(point_items(rng.random((1000, 2))),
                              max_entries=4)
        assert small.height <= big.height <= 8


class TestRangeSearch:
    def test_matches_brute_force_bulk(self, points):
        tree = RTree.bulk_load(point_items(points))
        for query in (Rect(0.1, 0.1, 0.4, 0.5), Rect(0, 0, 1, 1),
                      Rect(0.9, 0.9, 0.95, 0.95), Rect(2, 2, 3, 3)):
            assert sorted(tree.search(query)) == brute_range(points, query)

    def test_matches_brute_force_inserted(self, points):
        tree = RTree(max_entries=8)
        for rect, i in point_items(points):
            tree.insert(rect, i)
        for query in (Rect(0.2, 0.0, 0.6, 0.3), Rect(0, 0, 1, 1)):
            assert sorted(tree.search(query)) == brute_range(points, query)

    def test_search_point(self, points):
        tree = RTree.bulk_load(point_items(points))
        x, y = points[17]
        assert 17 in tree.search_point(float(x), float(y))

    def test_search_with_box_items(self, rng):
        boxes = []
        for i in range(100):
            x, y = rng.random(2)
            boxes.append((Rect(float(x), float(y),
                               float(x) + 0.05, float(y) + 0.05), i))
        tree = RTree.bulk_load(boxes)
        query = Rect(0.3, 0.3, 0.5, 0.5)
        expected = sorted(i for rect, i in boxes if rect.intersects(query))
        assert sorted(tree.search(query)) == expected


class TestNearest:
    def test_matches_brute_force(self, points):
        tree = RTree.bulk_load(point_items(points))
        for probe in ((0.5, 0.5), (0.0, 0.0), (1.2, -0.3)):
            for k in (1, 5, 20):
                got = tree.nearest(probe[0], probe[1], k=k)
                expected = brute_knn(points, probe[0], probe[1], k)
                assert [i for _, i in got] == [i for _, i in expected]
                for (gd, _), (ed, _) in zip(got, expected):
                    assert gd == pytest.approx(ed)

    def test_distances_sorted(self, points):
        tree = RTree.bulk_load(point_items(points))
        dists = [d for d, _ in tree.nearest(0.3, 0.7, k=50)]
        assert dists == sorted(dists)

    def test_k_larger_than_size(self, rng):
        pts = rng.random((5, 2))
        tree = RTree.bulk_load(point_items(pts))
        assert len(tree.nearest(0.5, 0.5, k=10)) == 5

    def test_max_distance_cutoff(self, points):
        tree = RTree.bulk_load(point_items(points))
        got = tree.nearest(0.5, 0.5, k=1000, max_distance=0.1)
        assert all(d <= 0.1 for d, _ in got)
        expected = [i for d, i in brute_knn(points, 0.5, 0.5, 1000)
                    if d <= 0.1]
        assert sorted(i for _, i in got) == sorted(expected)

    def test_invalid_k(self, points):
        tree = RTree.bulk_load(point_items(points))
        with pytest.raises(ValueError):
            tree.nearest(0.0, 0.0, k=0)


class TestDelete:
    def test_delete_and_search(self, points):
        tree = RTree.bulk_load(point_items(points), max_entries=8)
        removed = set()
        for i in (0, 5, 50, 100, 299):
            rect = Rect(float(points[i, 0]), float(points[i, 1]),
                        float(points[i, 0]), float(points[i, 1]))
            assert tree.delete(rect, i)
            removed.add(i)
        assert len(tree) == points.shape[0] - len(removed)
        found = set(tree.search(Rect(0, 0, 1, 1)))
        assert found.isdisjoint(removed)
        assert found == set(range(points.shape[0])) - removed

    def test_delete_missing_returns_false(self, points):
        tree = RTree.bulk_load(point_items(points))
        assert not tree.delete(Rect(5, 5, 5, 5), 9999)

    def test_delete_everything(self, rng):
        pts = rng.random((60, 2))
        tree = RTree.bulk_load(point_items(pts), max_entries=4)
        for rect, i in point_items(pts):
            assert tree.delete(rect, i)
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 1, 1)) == []


class TestRTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False)),
        min_size=1, max_size=120),
        st.integers(min_value=4, max_value=12))
    def test_range_query_equivalence(self, pts, max_entries):
        tree = RTree.bulk_load(point_items(np.array(pts)),
                               max_entries=max_entries)
        query = Rect(-3.0, -3.0, 3.0, 3.0)
        assert sorted(tree.search(query)) == brute_range(
            np.array(pts), query)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False)),
        min_size=2, max_size=80))
    def test_nearest_equivalence(self, pts):
        arr = np.array(pts)
        tree = RTree.bulk_load(point_items(arr))
        got = tree.nearest(0.0, 0.0, k=3)
        expected = brute_knn(arr, 0.0, 0.0, 3)
        got_d = [d for d, _ in got]
        exp_d = [d for d, _ in expected]
        assert got_d == pytest.approx(exp_d)
