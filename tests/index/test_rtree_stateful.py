"""Stateful fuzzing of the R-tree against a naive model.

Hypothesis drives interleaved insert/delete/search sequences; after every
step the tree must agree with a plain-list model on range queries,
nearest-neighbour queries and size.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.geometry.rect import Rect
from repro.index.rtree import RTree

coord = st.floats(min_value=-50.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False)


class RTreeModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = RTree(max_entries=4)  # small fan-out: many splits
        self.model: list[tuple[Rect, int]] = []
        self.next_id = 0

    @rule(x=coord, y=coord)
    def insert_point(self, x, y):
        rect = Rect(x, y, x, y)
        self.tree.insert(rect, self.next_id)
        self.model.append((rect, self.next_id))
        self.next_id += 1

    @rule(x=coord, y=coord,
          w=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
          h=st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    def insert_box(self, x, y, w, h):
        rect = Rect(x, y, x + w, y + h)
        self.tree.insert(rect, self.next_id)
        self.model.append((rect, self.next_id))
        self.next_id += 1

    @rule(data=st.data())
    def delete_existing(self, data):
        if not self.model:
            return
        index = data.draw(st.integers(min_value=0,
                                      max_value=len(self.model) - 1))
        rect, item = self.model.pop(index)
        assert self.tree.delete(rect, item)

    @rule()
    def delete_missing(self):
        assert not self.tree.delete(Rect(999, 999, 999, 999), -1)

    @rule(x1=coord, y1=coord, x2=coord, y2=coord)
    def check_range_query(self, x1, y1, x2, y2):
        query = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        got = sorted(self.tree.search(query))
        expected = sorted(item for rect, item in self.model
                          if rect.intersects(query))
        assert got == expected

    @rule(x=coord, y=coord, k=st.integers(min_value=1, max_value=5))
    def check_nearest(self, x, y, k):
        got = self.tree.nearest(x, y, k=k)
        expected = sorted(
            (rect.min_distance_to_point(x, y), item)
            for rect, item in self.model)[:k]
        assert len(got) == min(k, len(self.model))
        for (gd, _), (ed, _) in zip(got, expected):
            assert math.isclose(gd, ed, rel_tol=1e-9, abs_tol=1e-9)

    @invariant()
    def size_matches(self):
        assert len(self.tree) == len(self.model)


TestRTreeStateful = RTreeModel.TestCase
TestRTreeStateful.settings = settings(max_examples=25,
                                      stateful_step_count=40,
                                      deadline=None)
