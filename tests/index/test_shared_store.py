"""Shared-memory NLC store: zero-copy roundtrip, lifecycle, leak-freedom."""

import glob
import pickle

import numpy as np
import pytest

from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.index.circleset import CircleSet, detach_shared


def _leaked_segments():
    return glob.glob("/dev/shm/repro-nlc-*")


@pytest.fixture
def nlcs():
    customers, sites = synthetic_instance(120, 8, "uniform", seed=3)
    return build_nlcs(MaxBRkNNProblem(customers, sites, k=2))


class TestRoundtrip:
    def test_arrays_bit_identical(self, nlcs):
        store = nlcs.to_shared()
        try:
            other = CircleSet.from_shared(store.handle)
            assert np.array_equal(other.cx, nlcs.cx)
            assert np.array_equal(other.cy, nlcs.cy)
            assert np.array_equal(other.r, nlcs.r)
            assert np.array_equal(other.scores, nlcs.scores)
            assert np.array_equal(other.owners, nlcs.owners)
            assert np.array_equal(other.levels, nlcs.levels)
        finally:
            detach_shared()
            store.close()

    def test_views_are_read_only(self, nlcs):
        store = nlcs.to_shared()
        try:
            other = CircleSet.from_shared(store.handle)
            with pytest.raises((ValueError, RuntimeError)):
                other.cx[0] = 99.0
        finally:
            detach_shared()
            store.close()

    def test_empty_set_roundtrips(self):
        empty = CircleSet(np.empty(0), np.empty(0), np.empty(0),
                          np.empty(0))
        store = empty.to_shared()
        try:
            other = CircleSet.from_shared(store.handle)
            assert len(other) == 0
        finally:
            detach_shared()
            store.close()

    def test_attachment_is_cached(self, nlcs):
        store = nlcs.to_shared()
        try:
            first = CircleSet.from_shared(store.handle)
            second = CircleSet.from_shared(store.handle)
            assert first is second
        finally:
            detach_shared()
            store.close()


class TestTransportCost:
    def test_handle_pickles_tiny(self, nlcs):
        """The whole point of the store: what crosses the process
        boundary is a name + length, not the SoA payload."""
        store = nlcs.to_shared()
        try:
            assert len(pickle.dumps(store.handle)) < 128
            assert store.nbytes >= 6 * 8 * len(nlcs)
        finally:
            store.close()


class TestLifecycle:
    def test_close_unlinks_segment(self, nlcs):
        store = nlcs.to_shared()
        name = store.name
        assert any(name in path for path in _leaked_segments())
        store.close()
        assert not any(name in path for path in _leaked_segments())

    def test_close_is_idempotent(self, nlcs):
        store = nlcs.to_shared()
        store.close()
        store.close()

    def test_held_view_defers_close_without_error(self, nlcs):
        """A live numpy view pins the mapping; detach must park the
        attachment instead of raising BufferError, and a later detach
        (after the view dies) must finish the close."""
        store = nlcs.to_shared()
        attached = CircleSet.from_shared(store.handle)
        view = attached.cx  # exported buffer pointer
        del attached
        detach_shared()  # view still alive: deferred, no exception
        del view
        detach_shared()  # graveyard retry completes the close
        store.close()
        assert not _leaked_segments()

    def test_no_leak_after_full_cycle(self, nlcs):
        before = set(_leaked_segments())
        store = nlcs.to_shared()
        CircleSet.from_shared(store.handle)
        detach_shared()
        store.close()
        assert set(_leaked_segments()) == before
