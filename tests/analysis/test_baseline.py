"""Baseline arithmetic + the checked-in baseline vs a fresh run on src/."""

from collections import Counter

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_against_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.linter import lint_paths

from tests.analysis.conftest import REPO_ROOT


def _finding(code="RPR002", path="src/x.py", line=3, message="m"):
    return Finding(path=path, line=line, col=1, code=code,
                   message=message)


class TestSplitArithmetic:
    def test_all_new_when_baseline_empty(self):
        findings = [_finding(line=1), _finding(line=9)]
        new, grandfathered, stale = split_against_baseline(
            findings, Counter())
        assert new == findings
        assert grandfathered == [] and stale == []

    def test_grandfathered_matching_ignores_lines(self):
        finding = _finding(line=120)
        baseline = Counter([_finding(line=3).baseline_key()])
        new, grandfathered, stale = split_against_baseline(
            [finding], baseline)
        assert new == [] and stale == []
        assert grandfathered == [finding]

    def test_multiset_counting(self):
        """Two identical keys in the run, one in the baseline: one is
        grandfathered, the duplicate is new."""
        findings = [_finding(line=1), _finding(line=2)]
        baseline = Counter([findings[0].baseline_key()])
        new, grandfathered, stale = split_against_baseline(
            findings, baseline)
        assert len(new) == 1 and len(grandfathered) == 1
        assert stale == []

    def test_stale_entries_surface_for_shrinking(self):
        baseline = Counter([_finding().baseline_key(),
                            _finding(code="RPR004").baseline_key()])
        new, grandfathered, stale = split_against_baseline([], baseline)
        assert new == [] and grandfathered == []
        assert len(stale) == 2


class TestBaselineFile:
    def test_roundtrip(self, tmp_path):
        findings = [_finding(), _finding(code="RPR007", path="src/y.py")]
        path = tmp_path / "baseline.txt"
        write_baseline(path, findings)
        loaded = load_baseline(path)
        assert loaded == Counter(f.baseline_key() for f in findings)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.txt") == Counter()
        assert load_baseline(None) == Counter()

    def test_header_comments_ignored(self, tmp_path):
        path = tmp_path / "baseline.txt"
        write_baseline(path, [])
        assert path.read_text().startswith("#")
        assert load_baseline(path) == Counter()


class TestCheckedInBaseline:
    def test_fresh_run_on_src_matches_checked_in_baseline(
            self, monkeypatch):
        """The acceptance gate itself: linting the real tree from the
        repo root produces exactly the grandfathered set (currently
        empty) — no new findings, no stale entries."""
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(["src", "tests"])
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
        new, _, stale = split_against_baseline(findings, baseline)
        assert new == [], [f.render() for f in new]
        assert stale == []

    def test_checked_in_baseline_is_empty(self):
        """Documented-and-justified target state: all historical
        findings were fixed in this PR, so the file holds only its
        policy header.  If you legitimately need to grandfather a
        finding, update docs/development.md with the justification."""
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
        assert baseline == Counter()
