"""RPR005 (store extension): backends ↔ docs/api.md ↔ CLI ↔ tests/store/."""

from repro.analysis.project_rules import STORE_REL, check_store_drift
from repro.store import STORE_NAMES

from tests.analysis.conftest import REPO_ROOT


class TestCurrentRepoIsInSync:
    def test_no_drift_findings(self):
        assert list(check_store_drift(REPO_ROOT)) == []

    def test_all_backends_registered(self):
        assert set(STORE_NAMES) >= {"ram", "shm", "memmap"}


class TestSyntheticDrift:
    def test_undocumented_backend_flagged(self, tmp_path):
        """Strip one backend from a copy of docs/api.md: RPR005 names it."""
        doc = (REPO_ROOT / "docs" / "api.md").read_text()
        gutted = tmp_path / "api.md"
        gutted.write_text(doc.replace("memmap", "redacted"))
        findings = list(check_store_drift(REPO_ROOT, api_doc=gutted))
        assert any("memmap" in f.message and "docs/api.md" in f.message
                   for f in findings)

    def test_missing_doc_flags_every_backend(self, tmp_path):
        findings = list(check_store_drift(
            REPO_ROOT, api_doc=tmp_path / "missing.md"))
        flagged = {name for name in STORE_NAMES
                   if any(f"'{name}'" in f.message for f in findings)}
        assert flagged == set(STORE_NAMES)

    def test_unexercised_backend_flagged(self, tmp_path):
        empty = tmp_path / "store_tests"
        empty.mkdir()
        findings = list(check_store_drift(REPO_ROOT, tests_dir=empty))
        assert any("never named in tests/store/" in f.message
                   for f in findings)

    def test_findings_anchor_to_store_package(self, tmp_path):
        findings = list(check_store_drift(
            REPO_ROOT, api_doc=tmp_path / "missing.md"))
        assert findings
        assert all(f.path == STORE_REL and f.code == "RPR005"
                   for f in findings)
