"""Shared helpers for the exactness-linter tests."""

from pathlib import Path

#: The deliberate-violation fixture files driven by test_rules.py.
FIXTURES = Path(__file__).parent / "fixtures"

#: The repository root (pyproject.toml lives here) — the baseline tests
#: lint the real tree from here.
REPO_ROOT = Path(__file__).resolve().parents[2]
