"""RPR005: the registry ↔ docs ↔ CLI ↔ tests cross-check."""

from pathlib import Path

from repro.analysis.project_rules import (
    _cli_solver_choices,
    check_registry_drift,
    find_repo_root,
)
from repro.engine import solver_names

from tests.analysis.conftest import REPO_ROOT


class TestCurrentRepoIsInSync:
    def test_no_drift_findings(self):
        assert list(check_registry_drift(REPO_ROOT)) == []

    def test_cli_introspection_sees_every_solver(self):
        choices = _cli_solver_choices()
        assert choices is not None
        assert set(solver_names()) <= set(choices)

    def test_find_repo_root(self):
        assert find_repo_root(Path(__file__).parent) == REPO_ROOT
        assert find_repo_root(REPO_ROOT) == REPO_ROOT


class TestSyntheticDrift:
    def test_undocumented_solver_flagged(self, tmp_path):
        """Strip one solver from a copy of docs/api.md: RPR005 names it."""
        doc = (REPO_ROOT / "docs" / "api.md").read_text()
        gutted = tmp_path / "api.md"
        gutted.write_text(doc.replace("maxfirst-sharded", "redacted"))
        findings = list(check_registry_drift(REPO_ROOT, api_doc=gutted))
        assert any("maxfirst-sharded" in f.message
                   and "docs/api.md" in f.message for f in findings)

    def test_missing_docs_file_flags_every_solver(self, tmp_path):
        findings = list(check_registry_drift(
            REPO_ROOT, api_doc=tmp_path / "missing.md"))
        flagged = {name for name in solver_names()
                   if any(f"'{name}'" in f.message for f in findings)}
        assert flagged == set(solver_names())

    def test_unexercised_solver_flagged(self, tmp_path):
        """An empty tests/ directory: every solver reports as never
        named, and the capability checks are not double-reported."""
        empty = tmp_path / "tests"
        empty.mkdir()
        findings = list(check_registry_drift(REPO_ROOT, tests_dir=empty))
        messages = [f.message for f in findings]
        assert all("never named in tests/" in m or "cannot verify" in m
                   for m in messages)
        assert len([m for m in messages if "never named" in m]) == len(
            solver_names())

    def test_findings_anchor_to_registry(self):
        findings = list(check_registry_drift(
            REPO_ROOT, api_doc=Path("/nonexistent/api.md")))
        assert findings
        assert all(f.path == "src/repro/engine/registry.py"
                   and f.code == "RPR005" for f in findings)
