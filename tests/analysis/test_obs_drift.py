"""RPR005 (obs extension): counters ↔ docs/observability.md ↔ CLI ↔ gate."""

from repro.analysis.project_rules import check_obs_drift
from repro.obs.metrics import COUNTER_KEYS, GAUGE_KEYS

from tests.analysis.conftest import REPO_ROOT


class TestCurrentRepoIsInSync:
    def test_no_drift_findings(self):
        assert list(check_obs_drift(REPO_ROOT)) == []


class TestSyntheticDrift:
    def test_undocumented_counter_flagged(self, tmp_path):
        """Strip one counter from a copy of the glossary: RPR005 names it."""
        doc = (REPO_ROOT / "docs" / "observability.md").read_text()
        gutted = tmp_path / "observability.md"
        gutted.write_text(doc.replace("refine_pair_tests", "redacted"))
        findings = list(check_obs_drift(REPO_ROOT, obs_doc=gutted))
        assert any("refine_pair_tests" in f.message for f in findings)

    def test_missing_doc_flags_file_only(self, tmp_path):
        """No glossary file: one finding for the file, not one per key
        (the per-key findings would be pure noise on top)."""
        findings = list(check_obs_drift(
            REPO_ROOT, obs_doc=tmp_path / "missing.md"))
        messages = [f.message for f in findings]
        assert any("docs/observability.md is missing" in m
                   for m in messages)
        assert not any(key in m for key in COUNTER_KEYS for m in messages)

    def test_unexercised_obs_flagged(self, tmp_path):
        empty = tmp_path / "tests"
        empty.mkdir()
        findings = list(check_obs_drift(REPO_ROOT, tests_dir=empty))
        assert any("never imported in tests/" in f.message
                   for f in findings)

    def test_findings_anchor_to_metrics_module(self, tmp_path):
        findings = list(check_obs_drift(
            REPO_ROOT, obs_doc=tmp_path / "missing.md"))
        assert findings
        assert all(f.path == "src/repro/obs/metrics.py"
                   and f.code == "RPR005" for f in findings)

    def test_gauges_are_covered_too(self, tmp_path):
        doc = (REPO_ROOT / "docs" / "observability.md").read_text()
        gutted = tmp_path / "observability.md"
        gutted.write_text(doc.replace("peak_rss_bytes", "redacted"))
        findings = list(check_obs_drift(REPO_ROOT, obs_doc=gutted))
        assert any("peak_rss_bytes" in f.message for f in findings)
        assert "peak_rss_bytes" in GAUGE_KEYS
