"""RPR005 (serve extension): request kinds ↔ docs/api.md ↔ CLI ↔
tests/serve/ ↔ the scripted workload."""

from repro.analysis.project_rules import (SERVE_PROTOCOL_REL,
                                          check_serve_drift)
from repro.serve.protocol import REQUEST_KINDS

from tests.analysis.conftest import REPO_ROOT


class TestCurrentRepoIsInSync:
    def test_no_drift_findings(self):
        assert list(check_serve_drift(REPO_ROOT)) == []

    def test_all_kinds_registered(self):
        assert set(REQUEST_KINDS) >= {"brknn", "site_influence",
                                      "impact", "solve",
                                      "solve_anytime", "heatmap"}


class TestSyntheticDrift:
    def test_undocumented_kind_flagged(self, tmp_path):
        """Strip one kind from a copy of docs/api.md: RPR005 names it."""
        doc = (REPO_ROOT / "docs" / "api.md").read_text()
        gutted = tmp_path / "api.md"
        gutted.write_text(doc.replace("solve_anytime", "redacted"))
        findings = list(check_serve_drift(REPO_ROOT, api_doc=gutted))
        assert any("solve_anytime" in f.message
                   and "docs/api.md" in f.message for f in findings)

    def test_missing_doc_flags_every_kind(self, tmp_path):
        findings = list(check_serve_drift(
            REPO_ROOT, api_doc=tmp_path / "missing.md"))
        flagged = {kind for kind in REQUEST_KINDS
                   if any(f"'{kind}'" in f.message for f in findings)}
        assert flagged == set(REQUEST_KINDS)

    def test_unexercised_kind_flagged(self, tmp_path):
        empty = tmp_path / "serve_tests"
        empty.mkdir()
        findings = list(check_serve_drift(REPO_ROOT, tests_dir=empty))
        assert any("never named in tests/serve/" in f.message
                   for f in findings)

    def test_unreplayed_kind_flagged(self, tmp_path):
        """Gut the scripted workload: every kind's request class is
        reported as never replayed."""
        findings = list(check_serve_drift(
            REPO_ROOT, workload_path=tmp_path / "workload.py"))
        flagged = {kind for kind in REQUEST_KINDS
                   if any(f"'{kind}'" in f.message
                          and "scripted workload" in f.message
                          for f in findings)}
        assert flagged == set(REQUEST_KINDS)

    def test_findings_anchor_to_serve_protocol(self, tmp_path):
        findings = list(check_serve_drift(
            REPO_ROOT, api_doc=tmp_path / "missing.md"))
        assert findings
        assert all(f.path == SERVE_PROTOCOL_REL and f.code == "RPR005"
                   for f in findings)
