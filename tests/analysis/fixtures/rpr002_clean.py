"""RPR002 clean twin: audited tolerance helpers, int equality, pragmas."""

from repro.geometry.tolerance import float_eq, near_zero


def is_origin(x):
    return near_zero(x)


def same_score(a, b):
    return float_eq(a, b)


def count_is_zero(n):
    return n == 0  # int literal: not a float comparison


def ordering(x):
    return x <= 0.0  # inequalities are fine — only ==/!= are flagged


def sentinel(x):
    # repro: float-eq(sentinel assigned literally upstream, never computed)
    return x == -1.0
