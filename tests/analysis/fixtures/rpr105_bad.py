"""RPR105 fixture: unpicklable callables submitted to a pool."""


class Runner:
    def __init__(self, pool):
        self.pool = pool

    def dispatch(self, jobs):
        return [self.pool.submit(lambda j: j, job) for job in jobs]


def run(pool, jobs):
    def helper(job):
        return job

    return [pool.submit(helper, job) for job in jobs]


def run_method(pool, runner, jobs):
    return [pool.submit_call(runner.step, job) for job in jobs]
