"""RPR102 clean twin: explicitly seeded generators, plumbed through."""

import numpy as np
from random import Random


def jitter(points, seed):
    rng = np.random.default_rng(seed)
    noise = rng.normal(size=len(points))
    local = Random(seed)
    pick = local.choice(points)
    return noise, pick
