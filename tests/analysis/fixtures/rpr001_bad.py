"""RPR001 fixture: hypot and sqrt(dx*dx + dy*dy) mixed in one module."""

import math


def dist_hypot(dx, dy):
    return math.hypot(dx, dy)


def dist_sqrt(dx, dy):
    return math.sqrt(dx * dx + dy * dy)  # flagged: other form above


def dist_pow(dx, dy):
    return math.sqrt(dx ** 2 + dy ** 2)  # flagged: pow-squares count too
