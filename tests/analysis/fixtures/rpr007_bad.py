"""RPR007 fixture: dtype-less numpy construction (linted as repro.index)."""

import numpy as np


def make(n):
    idx = np.arange(n)  # flagged: infers int64
    buf = np.zeros(n)  # flagged
    grid = np.linspace(0.0, 1.0, n)  # flagged
    return idx, buf, grid
