"""RPR004 fixture: mutable default arguments."""


def append_to(item, items=[]):  # flagged
    items.append(item)
    return items


def cached(key, cache={}):  # flagged
    return cache.setdefault(key, key)


def keyword_only(*, seen=set()):  # flagged (kw-only defaults too)
    return seen


def built(n, buf=list()):  # flagged (constructor call form)
    return buf
