"""RPR003 clean twin: specific types, re-raise, warn, or audited pragma."""

import warnings


def specific(risky):
    try:
        return risky()
    except (OSError, ValueError):  # specific types are always fine
        return None


def reraises(risky):
    try:
        return risky()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def warns(risky):
    try:
        return risky()
    except Exception as exc:
        warnings.warn(f"degrading ({exc!r})", RuntimeWarning,
                      stacklevel=2)
        return None


def audited(risky):
    try:
        return risky()
    # repro: fallback(best-effort cache warm-up; cold start is correct, only slower)
    except Exception:
        return None
