"""RPR103 fixture: set iteration feeding order-dependent accumulation."""


def total_score(scores):
    total = 0.0
    for s in {round(x, 6) for x in scores}:  # hash order into a float sum
        total += s
    return total


def collect(items):
    pending = set(items)
    out = []
    for item in pending:  # hash order into a result list
        out.append(item)
    return out


def fast_sum(values):
    return sum(frozenset(values))  # hash order inside sum()
