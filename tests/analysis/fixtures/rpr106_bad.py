"""RPR106 fixture: environment reads outside the audited seams."""

import os
from os import environ


def pick_backend():
    return os.environ.get("REPRO_STORE_FALLBACK", "ram")


def poll_interval():
    return int(os.getenv("REPRO_POLL", "0"))


def flag():
    return environ["REPRO_FLAG"]
