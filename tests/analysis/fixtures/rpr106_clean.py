"""RPR106 clean twin: reads confined to seams, or explicitly audited."""

import os


def resolve_store_name(name=None):
    # the audited seam: precedence pinned by docs and tests
    return name or os.environ.get("REPRO_STORE") or "ram"


def get_profile():
    return os.environ.get("REPRO_SCALE", "small")


def audited():
    # repro: env-read(example of the audited escape hatch)
    return os.environ.get("REPRO_EXAMPLE")


def solve(options):
    return options.get("store", "ram")
