"""RPR102 fixture: global-singleton RNG use in solver code."""

import random

import numpy as np
from random import shuffle


def jitter(points):
    noise = np.random.rand(len(points))  # legacy singleton
    np.random.seed(0)  # reseeds the singleton for everyone
    pick = random.choice(points)  # stdlib singleton
    shuffle(points)  # imported from the singleton module
    return noise, pick
