"""RPR000 fixture: malformed audit pragmas."""


def unknown_tag(x):
    # repro: no-such-tag(whatever)
    return x


def empty_reason(x):
    # repro: float-eq()
    return x == 0.0
