"""RPR104 fixture: store acquires with no release on some exit path."""

from repro import store


def leak_owner(nlcs, solve):
    owner = store.publish(nlcs, "shm")  # no close on any path
    handle = owner.handle
    solve(handle)
    return None


def leak_views(handle):
    views = store.attach(handle)  # never detached, never handed out
    best = float(views.scores[0])
    return best


def leak_writer(chunks, capacity, solve):
    writer = store.writer(capacity, "shm")  # append may raise → leak
    for chunk in chunks:
        writer.append(chunk)
    sealed = writer.finalize()
    sealed.close()
    return None
