"""RPR101 clean twin: worker state flows through jobs and returns."""

WORKER_ENTRY_POINTS = ("solve_tile",)

_PARENT_CACHE = {}


def solve_tile(job):
    best = job[0]
    local = {job[1]: best}
    return _helper(job, local)


def _helper(job, acc):
    acc[job[1]] = job[0]  # parameter, not module state
    return job, acc


def merge_in_parent(result):
    # not worker-reachable: the parent-side merge may keep state
    _PARENT_CACHE[result[0]] = result[1]
    return _PARENT_CACHE
