"""RPR007 clean twin: explicit dtypes, non-constructor calls, audit pragma."""

import numpy as np


def make(n):
    idx = np.arange(n, dtype=np.int64)
    buf = np.zeros(n, dtype=np.float64)
    return idx, buf


def derived(mask, values):
    # Derived-array helpers carry their input dtype; not constructors.
    return np.flatnonzero(mask), np.column_stack((values, values))


def audited(n):
    # repro: dtype(probe counter only; never crosses a shard boundary)
    return np.ones(n)
