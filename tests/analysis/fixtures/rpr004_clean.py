"""RPR004 clean twin: None-plus-assign, immutable defaults."""


def append_to(item, items=None):
    if items is None:
        items = []
    items.append(item)
    return items


def immutable(point=(0.0, 0.0), name="origin", k=1):
    return point, name, k


def audited(registry={}):  # repro: mutable-default(process-wide registry by design; see register_solver)
    return registry
