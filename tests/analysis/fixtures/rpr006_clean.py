"""RPR006 clean twin: the module consults the gate (or audits the site)."""

import ctypes
import os
import subprocess


def load(path):
    # repro: env-read(this fixture models the audited kernel gate itself)
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    return ctypes.CDLL(path)


def build(cmd):
    # The module-level gate above covers every load site in this file.
    subprocess.run(cmd, check=True)


def warm():
    # Loader entry points are fine here too: the gate is consulted above.
    from repro.index._ckernel import load_knn_kernel, load_quad_kernel

    load_quad_kernel()
    return load_knn_kernel()
