"""RPR006 fixture: native loads with no kernel-gate check in sight."""

import ctypes
import subprocess


def load(path):
    return ctypes.CDLL(path)  # flagged


def build(cmd):
    subprocess.run(cmd, check=True)  # flagged


def warm():
    from repro.index._ckernel import load_knn_kernel, load_quad_kernel

    load_quad_kernel()  # flagged
    return load_knn_kernel()  # flagged
