"""RPR001 clean twin: mixing is fine when audited; lone forms always are."""

import math


def dist_hypot(dx, dy):
    return math.hypot(dx, dy)


def chord_height(h2):
    return math.sqrt(h2)  # sqrt of a plain value is not a distance idiom


def scaled(area, n):
    return math.sqrt(area * 4.0 / n)  # product, not a sum of squares


def dist_sqrt_audited(dx, dy):
    # repro: distance-form(kept in the compiled kernel's rounding order; see DESIGN.md)
    return math.sqrt(dx * dx + dy * dy)
