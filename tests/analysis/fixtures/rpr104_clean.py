"""RPR104 clean twin: every acquire released, escaped, or protected."""

from repro import store


def publish_owned(nlcs, solve):
    owner = store.publish(nlcs, "shm")
    try:
        solve(owner.handle)
    finally:
        owner.close()
    return None


def publish_escaping(nlcs):
    return store.publish(nlcs, "shm")  # caller owns the lifecycle


def windowed(handle, lo, hi):
    views = store.attach_slice(handle, lo, hi)
    best = float(views.scores[0])
    store.detach()
    return best


def stream(chunks, capacity):
    writer = store.writer(capacity, "shm")
    try:
        for chunk in chunks:
            writer.append(chunk)
    except Exception:
        writer.abort()
        raise
    sealed = writer.finalize()
    return sealed
