"""RPR003 fixture: broad handlers that swallow silently."""


def swallow_exception(risky):
    try:
        return risky()
    except Exception:  # flagged: silent
        return None


def swallow_bare(risky):
    try:
        return risky()
    except:  # flagged: bare and silent  # noqa: E722
        return None


def swallow_tuple(risky):
    try:
        return risky()
    except (ValueError, Exception):  # flagged: tuple hides the broad type
        return None
