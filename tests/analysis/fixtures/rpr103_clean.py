"""RPR103 clean twin: sorted sets, and dict iteration (insertion-ordered)."""


def total_score(scores):
    total = 0.0
    for s in sorted({round(x, 6) for x in scores}):
        total += s
    return total


def collect(items):
    out = []
    for item in sorted(set(items)):
        out.append(item)
    return out


def fast_sum(values):
    return sum(sorted(frozenset(values)))


def merge(counts):
    total = 0
    for key in counts:  # dicts iterate in insertion order — exempt
        total += counts[key]
    return total
