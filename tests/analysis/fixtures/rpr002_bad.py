"""RPR002 fixture: raw float equality on computed values."""


def is_origin(x):
    return x == 0.0  # flagged


def differs(score):
    return 1.5 != score  # flagged


def chained(a, b):
    return a == b == 0.5  # flagged (one finding per Compare node)
