"""RPR105 clean twin: module-level entries, picklable by name."""

from repro.engine import pool as pool_mod


def solve_tile(job):
    return job


def run(pool, jobs):
    return [pool.submit(solve_tile, job) for job in jobs]


def run_pkg(pool, jobs):
    return [pool.submit_call(pool_mod.grow_regions, job) for job in jobs]
