"""RPR101 fixture: worker-reachable code mutating module state."""

WORKER_ENTRY_POINTS = ("solve_tile",)

_CACHE = {}
_BEST = 0.0
_STATE = [0]


def solve_tile(job):
    global _BEST
    _BEST = job[0]  # rebind of a global inside a worker
    _CACHE[job[1]] = job[0]  # in-place mutation of module state
    return _helper(job)


def _helper(job):
    # reachable only through solve_tile — the call graph must find it
    _STATE[0] = job[1]
    return job
