"""Call-graph builder: reachability, entry points, release propagation."""

import pytest

from repro.analysis.callgraph import CallGraph, module_name_for
from repro.analysis.loader import load_module


def _module(tmp_path, relpath, source):
    path = tmp_path / relpath.replace("/", "__")
    path.write_text(source, encoding="utf-8")
    return load_module(path, relpath=relpath, is_test=False)


class TestModuleNames:
    @pytest.mark.parametrize("relpath,expected", [
        ("src/repro/engine/pool.py", "repro.engine.pool"),
        ("src/repro/store/__init__.py", "repro.store"),
        ("benchmarks/run_bench.py", "benchmarks.run_bench"),
    ])
    def test_module_name_for(self, relpath, expected):
        assert module_name_for(relpath) == expected


class TestReachability:
    def test_cross_module_worker_reachability(self, tmp_path):
        pool = _module(tmp_path, "src/repro/engine/pool.py", (
            "from repro.core import maxfirst\n"
            "\n"
            "WORKER_ENTRY_POINTS = (\"solve_tile\",)\n"
            "\n"
            "def solve_tile(job):\n"
            "    return maxfirst.solve(job)\n"
            "\n"
            "def merge(results):\n"
            "    return sorted(results)\n"
        ))
        core = _module(tmp_path, "src/repro/core/maxfirst.py", (
            "def solve(job):\n"
            "    return _score(job)\n"
            "\n"
            "def _score(job):\n"
            "    return job\n"
            "\n"
            "def parent_only(job):\n"
            "    return job\n"
        ))
        graph = CallGraph.build([pool, core])
        assert graph.is_worker_reachable("repro.engine.pool.solve_tile")
        assert graph.is_worker_reachable("repro.core.maxfirst.solve")
        assert graph.is_worker_reachable("repro.core.maxfirst._score")
        assert not graph.is_worker_reachable("repro.engine.pool.merge")
        assert not graph.is_worker_reachable(
            "repro.core.maxfirst.parent_only")

    def test_submit_first_arg_becomes_entry_point(self, tmp_path):
        mod = _module(tmp_path, "src/repro/engine/driver.py", (
            "def work(job):\n"
            "    return _inner(job)\n"
            "\n"
            "def _inner(job):\n"
            "    return job\n"
            "\n"
            "def dispatch(pool, jobs):\n"
            "    return [pool.submit(work, j) for j in jobs]\n"
        ))
        graph = CallGraph.build([mod])
        assert "repro.engine.driver.work" in graph.entry_points
        assert graph.is_worker_reachable("repro.engine.driver.work")
        assert graph.is_worker_reachable("repro.engine.driver._inner")
        assert not graph.is_worker_reachable(
            "repro.engine.driver.dispatch")

    def test_from_import_alias_edges(self, tmp_path):
        a = _module(tmp_path, "src/repro/engine/a.py", (
            "from repro.engine.b import helper as h\n"
            "\n"
            "WORKER_ENTRY_POINTS = (\"entry\",)\n"
            "\n"
            "def entry(x):\n"
            "    return h(x)\n"
        ))
        b = _module(tmp_path, "src/repro/engine/b.py", (
            "def helper(x):\n"
            "    return x\n"
        ))
        graph = CallGraph.build([a, b])
        assert graph.is_worker_reachable("repro.engine.b.helper")

    def test_self_method_and_local_ctor_resolution(self, tmp_path):
        mod = _module(tmp_path, "src/repro/engine/obj.py", (
            "WORKER_ENTRY_POINTS = (\"entry\",)\n"
            "\n"
            "class Solver:\n"
            "    def run(self):\n"
            "        return self._step()\n"
            "\n"
            "    def _step(self):\n"
            "        return 1\n"
            "\n"
            "def entry():\n"
            "    s = Solver()\n"
            "    return s.run()\n"
        ))
        graph = CallGraph.build([mod])
        assert graph.is_worker_reachable("repro.engine.obj.Solver.run")
        assert graph.is_worker_reachable("repro.engine.obj.Solver._step")


class TestReleasePropagation:
    def test_releases_propagate_to_callers(self, tmp_path):
        mod = _module(tmp_path, "src/repro/engine/rel.py", (
            "def outer(handle):\n"
            "    return middle(handle)\n"
            "\n"
            "def middle(handle):\n"
            "    return closer(handle)\n"
            "\n"
            "def closer(handle):\n"
            "    handle.close()\n"
            "\n"
            "def bystander(handle):\n"
            "    return handle\n"
        ))
        graph = CallGraph.build([mod])
        for name in ("outer", "middle", "closer"):
            assert graph.releases_transitively(f"repro.engine.rel.{name}")
        assert not graph.releases_transitively(
            "repro.engine.rel.bystander")

    def test_unresolvable_calls_add_no_edges(self, tmp_path):
        mod = _module(tmp_path, "src/repro/engine/duck.py", (
            "WORKER_ENTRY_POINTS = (\"entry\",)\n"
            "\n"
            "def entry(obj):\n"
            "    return obj.mystery()\n"
            "\n"
            "def elsewhere():\n"
            "    return 0\n"
        ))
        graph = CallGraph.build([mod])
        assert graph.callees("repro.engine.duck.entry") == set()
        assert not graph.is_worker_reachable(
            "repro.engine.duck.elsewhere")
