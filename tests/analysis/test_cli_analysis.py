"""The ``python -m repro.analysis`` command line: exit codes, formats."""

import json
import subprocess
import sys

import pytest

from repro.analysis.cli import main

from tests.analysis.conftest import FIXTURES, REPO_ROOT


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_bad_fixture_fails(self, capsys):
        code, out, err = run_cli(
            [str(FIXTURES / "rpr004_bad.py"), "--no-baseline"], capsys)
        assert code == 1
        assert "RPR004" in out
        assert "4 new finding(s)" in err

    def test_clean_fixture_passes(self, capsys):
        code, out, err = run_cli(
            [str(FIXTURES / "rpr004_clean.py"), "--no-baseline"], capsys)
        assert code == 0
        assert out == ""

    def test_unknown_rule_code_is_usage_error(self, capsys):
        code, _, err = run_cli(["--select", "RPR999"], capsys)
        assert code == 2
        assert "unknown rule code" in err

    def test_missing_path_is_usage_error(self, capsys):
        code, _, err = run_cli(["definitely/not/here"], capsys)
        assert code == 2
        assert "no such file" in err

    def test_syntax_error_is_exit_2_and_keeps_linting(
            self, tmp_path, capsys):
        """One unparsable file must not abort the run: the other files
        still get linted (their findings are reported), and the tool
        exits 2 — distinct from the plain findings exit 1."""
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n", encoding="utf-8")
        code, out, err = run_cli(
            [str(broken), str(bad), "--no-baseline"], capsys)
        assert code == 2
        assert "does not parse" in out  # the broken file is reported
        assert "RPR004" in out  # ...and the healthy file was still linted
        assert "1 tool error(s)" in err

    def test_findings_without_errors_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n", encoding="utf-8")
        code, _, _ = run_cli([str(bad), "--no-baseline"], capsys)
        assert code == 1


class TestSelectIgnore:
    def test_select_restricts_rules(self, capsys):
        code, out, _ = run_cli(
            [str(FIXTURES / "rpr004_bad.py"), "--no-baseline",
             "--select", "RPR002"], capsys)
        assert code == 0 and out == ""

    def test_ignore_silences_rule(self, capsys):
        code, out, _ = run_cli(
            [str(FIXTURES / "rpr004_bad.py"), "--no-baseline",
             "--ignore", "RPR004"], capsys)
        assert code == 0 and out == ""


class TestBaselineFlow:
    def test_write_then_pass_then_shrink(self, tmp_path, capsys):
        """Grandfather a finding, pass, fix it, then the stale entry
        fails the run until the baseline shrinks."""
        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        baseline = tmp_path / "baseline.txt"

        code, _, _ = run_cli([str(bad), "--baseline", str(baseline),
                              "--write-baseline"], capsys)
        assert code == 0 and baseline.is_file()

        code, out, err = run_cli(
            [str(bad), "--baseline", str(baseline)], capsys)
        assert code == 0
        assert "1 grandfathered" in err

        bad.write_text("def f(xs=None):\n    return xs\n")
        code, out, err = run_cli(
            [str(bad), "--baseline", str(baseline)], capsys)
        assert code == 1
        assert "stale baseline entry" in out

        code, _, _ = run_cli([str(bad), "--baseline", str(baseline),
                              "--write-baseline"], capsys)
        assert code == 0
        code, _, _ = run_cli([str(bad), "--baseline", str(baseline)],
                             capsys)
        assert code == 0

    def test_new_finding_fails_despite_baseline(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        baseline = tmp_path / "baseline.txt"
        run_cli([str(bad), "--baseline", str(baseline),
                 "--write-baseline"], capsys)
        bad.write_text(
            "def f(xs=[]):\n    return xs\n\n"
            "def g(ys={}):\n    return ys\n")
        code, out, _ = run_cli([str(bad), "--baseline", str(baseline)],
                               capsys)
        assert code == 1
        assert "RPR004" in out and "'g'" in out

    def test_write_baseline_refuses_tool_errors(self, tmp_path, capsys):
        """An unparsable file cannot be grandfathered: --write-baseline
        exits 2 and leaves no baseline behind."""
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        baseline = tmp_path / "baseline.txt"
        code, _, err = run_cli(
            [str(broken), "--baseline", str(baseline),
             "--write-baseline"], capsys)
        assert code == 2
        assert not baseline.is_file()


class TestOutputFormats:
    def test_json_format(self, capsys):
        code, out, _ = run_cli(
            [str(FIXTURES / "rpr002_bad.py"), "--no-baseline",
             "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert len(payload["new"]) == 3
        assert payload["new"][0]["code"] == "RPR002"
        assert payload["stale_baseline"] == []

    def test_json_errors_field(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        code, out, _ = run_cli(
            [str(broken), "--no-baseline", "--format", "json"], capsys)
        assert code == 2
        payload = json.loads(out)
        assert len(payload["errors"]) == 1
        assert payload["errors"][0]["code"] == "RPR000"
        assert payload["new"] == []

    def test_json_report_written_alongside_text(self, tmp_path, capsys):
        """--json-report captures the machine payload even when the
        console format stays human-readable (the CI artifact path)."""
        report = tmp_path / "lint-report.json"
        code, out, _ = run_cli(
            [str(FIXTURES / "rpr002_bad.py"), "--no-baseline",
             "--json-report", str(report)], capsys)
        assert code == 1
        assert "RPR002" in out  # console output is still text
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert len(payload["new"]) == 3
        assert payload["errors"] == []

    def test_list_rules(self, capsys):
        code, out, _ = run_cli(["--list-rules"], capsys)
        assert code == 0
        for rule_code in ("RPR001", "RPR002", "RPR003", "RPR004",
                          "RPR005", "RPR006", "RPR007", "RPR101",
                          "RPR102", "RPR103", "RPR104", "RPR105",
                          "RPR106"):
            assert rule_code in out


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self):
        """`python -m repro.analysis` is the documented interface; run
        it for real, against the whole repo, from the repo root."""
        env_src = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "tests"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin",
                 "HOME": "/tmp"},
            timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.fixture(autouse=True)
def _run_from_repo_root(monkeypatch):
    """Baseline default resolution walks up from cwd; pin it."""
    monkeypatch.chdir(REPO_ROOT)
