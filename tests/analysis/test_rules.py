"""Per-rule fixture tests: known true positives, clean twins, pragmas.

Each rule is exercised against a fixture file with deliberate violations
(every finding must carry that rule's code, with the expected count) and
a clean twin that must produce zero findings.  Running the bad fixture
with the rule ignored must also be clean — proof that the rule, not an
accident of the driver, produces the findings.
"""

import pytest

from repro.analysis.linter import lint_file
from repro.analysis.loader import load_module
from repro.analysis.rules import all_rules

from tests.analysis.conftest import FIXTURES

# (code, bad fixture, expected finding count, clean twin, pinned relpath)
CASES = [
    ("RPR001", "rpr001_bad.py", 2, "rpr001_clean.py", None),
    ("RPR002", "rpr002_bad.py", 3, "rpr002_clean.py", None),
    ("RPR003", "rpr003_bad.py", 3, "rpr003_clean.py", None),
    ("RPR004", "rpr004_bad.py", 4, "rpr004_clean.py", None),
    ("RPR006", "rpr006_bad.py", 4, "rpr006_clean.py", None),
    ("RPR007", "rpr007_bad.py", 3, "rpr007_clean.py",
     "src/repro/index/{name}"),
    ("RPR101", "rpr101_bad.py", 3, "rpr101_clean.py",
     "src/repro/engine/{name}"),
    ("RPR102", "rpr102_bad.py", 4, "rpr102_clean.py", None),
    ("RPR103", "rpr103_bad.py", 3, "rpr103_clean.py",
     "src/repro/core/{name}"),
    ("RPR104", "rpr104_bad.py", 3, "rpr104_clean.py",
     "src/repro/engine/{name}"),
    ("RPR105", "rpr105_bad.py", 3, "rpr105_clean.py", None),
    ("RPR106", "rpr106_bad.py", 3, "rpr106_clean.py", None),
]


def _lint_fixture(name, relpath_template=None, **kwargs):
    relpath = (relpath_template.format(name=name)
               if relpath_template else f"fixtures/{name}")
    return lint_file(FIXTURES / name, relpath=relpath, is_test=False,
                     **kwargs)


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "code,bad,count,clean,relpath", CASES,
        ids=[case[0] for case in CASES])
    def test_bad_fixture_fires(self, code, bad, count, clean, relpath):
        findings = _lint_fixture(bad, relpath)
        assert [f.code for f in findings] == [code] * count

    @pytest.mark.parametrize(
        "code,bad,count,clean,relpath", CASES,
        ids=[case[0] for case in CASES])
    def test_clean_twin_is_clean(self, code, bad, count, clean, relpath):
        assert _lint_fixture(clean, relpath) == []

    @pytest.mark.parametrize(
        "code,bad,count,clean,relpath", CASES,
        ids=[case[0] for case in CASES])
    def test_ignoring_the_rule_silences_the_fixture(
            self, code, bad, count, clean, relpath):
        """The findings come from THIS rule: ignore it and the bad
        fixture lints clean (the fixture test would fail without the
        rule, and passes with it)."""
        assert _lint_fixture(bad, relpath, ignore=[code]) == []

    def test_every_rule_has_a_fixture_case(self):
        assert ({case[0] for case in CASES}
                == {r.code for r in all_rules()})


class TestPragmaHygiene:
    def test_malformed_pragmas_reported_and_do_not_suppress(self):
        findings = _lint_fixture("rpr000_bad.py")
        codes = sorted(f.code for f in findings)
        # unknown tag + empty reason → two RPR000; the empty-reason
        # pragma must NOT suppress the float equality beneath it.
        assert codes == ["RPR000", "RPR000", "RPR002"]

    def test_near_miss_pragma_is_rpr000_malformed(self, tmp_path):
        """A comment that looks like a pragma but fails the grammar
        (missing parens) is reported, not silently ignored."""
        bad = tmp_path / "near_miss.py"
        # built by concatenation so the pragma scanner (which reads raw
        # source lines, string literals included) ignores THIS file
        near_miss = "# repro" + ": float-eq missing the reason parens"
        bad.write_text(
            f"def f(x):\n    {near_miss}\n    return x == 0.0\n",
            encoding="utf-8")
        findings = lint_file(bad, relpath="src/near_miss.py")
        codes = sorted(f.code for f in findings)
        assert codes == ["RPR000", "RPR002"]
        rpr000 = next(f for f in findings if f.code == "RPR000")
        assert "malformed pragma" in rpr000.message
        assert "float-eq" in rpr000.message

    def test_stacked_pragmas_on_one_line(self, tmp_path):
        """Two pragmas on the same trailing comment each suppress their
        own rule on that line."""
        src = tmp_path / "stacked.py"
        src.write_text(
            "def f(x, cache={}):  "
            "# repro: mutable-default(shared on purpose) "
            "# repro: float-eq(exact sentinel)\n"
            "    return x == 0.0\n",
            encoding="utf-8")
        assert lint_file(src, relpath="src/stacked.py") == []

    def test_pragma_on_decorator_line_covers_the_def(self, tmp_path):
        """A pragma trailing a decorator suppresses a finding anchored
        on the decorated def's own line (the line below)."""
        src = tmp_path / "decorated.py"
        src.write_text(
            "def deco(fn):\n"
            "    return fn\n"
            "\n"
            "\n"
            "@deco  # repro: mutable-default(memo table shared on purpose)\n"
            "def f(x, cache={}):\n"
            "    return cache.setdefault(x, x)\n",
            encoding="utf-8")
        assert lint_file(src, relpath="src/decorated.py") == []

    def test_rule_messages_name_their_pragma(self):
        """Every finding message teaches its escape hatch (or the rule
        is scope-only like RPR005, tested elsewhere)."""
        for name in ("rpr001_bad.py", "rpr002_bad.py", "rpr003_bad.py",
                     "rpr006_bad.py"):
            relpath = None
            for finding in _lint_fixture(name, relpath):
                assert "repro:" in finding.message


class TestScoping:
    def test_rpr002_exempts_test_modules(self):
        module = load_module(FIXTURES / "rpr002_bad.py",
                             relpath="tests/test_bitident.py",
                             is_test=True)
        findings = lint_file(FIXTURES / "rpr002_bad.py",
                             relpath="tests/test_bitident.py",
                             is_test=True)
        assert module.is_test
        assert findings == []

    def test_rpr006_exempts_test_modules(self):
        assert lint_file(FIXTURES / "rpr006_bad.py",
                         relpath="tests/test_cli.py", is_test=True) == []

    def test_rpr007_scoped_to_index_engine_and_store(self):
        outside = lint_file(FIXTURES / "rpr007_bad.py",
                            relpath="src/repro/bench/runner.py",
                            is_test=False)
        assert outside == []
        for relpath in ("src/repro/engine/sharded.py",
                        "src/repro/store/ram.py"):
            inside = lint_file(FIXTURES / "rpr007_bad.py",
                               relpath=relpath, is_test=False)
            assert {f.code for f in inside} == {"RPR007"}, relpath
            clean = lint_file(FIXTURES / "rpr007_clean.py",
                              relpath=relpath, is_test=False)
            assert clean == [], relpath

    def test_syntax_error_becomes_rpr000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n", encoding="utf-8")
        findings = lint_file(broken, relpath="src/broken.py")
        assert [f.code for f in findings] == ["RPR000"]
        assert "does not parse" in findings[0].message
