"""Tests for the L1 (Manhattan) metric subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.l1.solver import solve_l1, solve_l1_nlcs
from repro.l1.squares import (SquareSet, build_l1_nlcs, from_chebyshev,
                              l1_knn_distances, to_chebyshev)


class TestTransforms:
    def test_round_trip(self, rng):
        pts = rng.uniform(-10, 10, (50, 2))
        back = from_chebyshev(to_chebyshev(pts))
        np.testing.assert_allclose(back, pts)

    def test_l1_becomes_chebyshev(self, rng):
        pts = rng.uniform(-5, 5, (20, 2))
        uv = to_chebyshev(pts)
        for i in range(10):
            for j in range(10, 20):
                l1 = abs(pts[i, 0] - pts[j, 0]) + abs(pts[i, 1] - pts[j, 1])
                cheb = max(abs(uv[i, 0] - uv[j, 0]),
                           abs(uv[i, 1] - uv[j, 1]))
                assert l1 == pytest.approx(cheb)


class TestL1Knn:
    def test_matches_brute(self, rng):
        queries = rng.uniform(0, 1, (30, 2))
        points = rng.uniform(0, 1, (12, 2))
        got = l1_knn_distances(queries, points, 3)
        d = (np.abs(queries[:, 0:1] - points[None, :, 0])
             + np.abs(queries[:, 1:2] - points[None, :, 1]))
        d.sort(axis=1)
        np.testing.assert_allclose(got, d[:, :3])

    def test_invalid_k(self, rng):
        pts = rng.random((4, 2))
        with pytest.raises(ValueError):
            l1_knn_distances(pts, pts, 5)


class TestSquareSet:
    def test_validation(self):
        with pytest.raises(ValueError):
            SquareSet(np.zeros(2), np.zeros(1), np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            SquareSet(np.zeros(1), np.zeros(1), np.array([-1.0]),
                      np.zeros(1))

    def test_build_counts(self):
        problem = MaxBRkNNProblem([(0, 0), (3, 0)], [(1, 0), (5, 5)], k=1)
        squares = build_l1_nlcs(problem)
        assert len(squares) == 2
        # Radii are the L1 nearest-site distances.
        assert sorted(squares.half.tolist()) == pytest.approx([1.0, 2.0])

    def test_cover_scores_strict_vs_closed(self):
        squares = SquareSet(np.array([0.0]), np.array([0.0]),
                            np.array([1.0]), np.array([2.0]))
        on_edge = np.array([[1.0, 0.0]])
        assert squares.cover_scores_at_points(on_edge, strict=True)[0] == 0
        assert squares.cover_scores_at_points(on_edge,
                                              strict=False)[0] == 2.0


class TestSolveL1:
    def test_single_customer(self):
        # Site 2 L1-units away: the optimal region is the open L1 ball,
        # a diamond of area 2 r^2 = 8.
        result = solve_l1(MaxBRkNNProblem([(0, 0)], [(2, 0)]))
        assert result.score == pytest.approx(1.0)
        region = result.best_region
        assert region.area == pytest.approx(8.0)
        assert region.contains_point(0.0, 0.0)
        assert region.contains_point(0.0, 1.9)   # inside the diamond
        assert not region.contains_point(1.5, 1.5)

    def test_two_overlapping_customers(self):
        result = solve_l1(MaxBRkNNProblem([(0, 0), (1, 0)],
                                          [(4, 0), (-4, 0)]))
        assert result.score == pytest.approx(2.0)
        assert result.best_region.contains_point(0.5, 0.0)

    def test_tangency_is_generic_in_l1(self):
        """Any site on a taxicab geodesic between two customers makes
        their L1 NLCs exactly tangent — no open overlap, so region
        semantics correctly scores them separately."""
        customers = [(0.0, 0.0), (2.0, 2.0)]
        sites = [(1.4, 1.4), (-30.0, 0.0)]  # site between the customers
        result = solve_l1(MaxBRkNNProblem(customers, sites, k=1))
        assert result.score == pytest.approx(1.0)

    def test_off_geodesic_site_overlaps(self):
        """Moving the shared nearest site off the taxicab rectangle makes
        the radii sum exceed the distance: the NLCs properly overlap."""
        customers = [(0.0, 0.0), (2.0, 2.0)]
        sites = [(3.0, 0.2), (-30.0, 0.0)]
        result = solve_l1(MaxBRkNNProblem(customers, sites, k=1))
        # r0 = 3.2, r1 = 2.8, L1 distance 4 < 6: overlap of weight 2.
        assert result.score == pytest.approx(2.0)

    def test_weighted_and_probability(self):
        problem = MaxBRkNNProblem(
            [(0, 0), (10, 0)], [(1, 0), (11, 0), (-50, 0)], k=2,
            weights=[1.0, 3.0], probability=[0.8, 0.2])
        result = solve_l1(problem)
        # Same structure as the L2 variant of this instance: the heavy
        # customer's first NLC overlaps the light one's second NLC.
        assert result.score == pytest.approx(3.0 * 0.8 + 1.0 * 0.2)

    def test_empty_square_set(self):
        squares = SquareSet(np.zeros(0), np.zeros(0), np.zeros(0),
                            np.zeros(0))
        with pytest.raises(ValueError):
            solve_l1_nlcs(squares)

    def test_zero_radius_only(self):
        # Customer exactly on its nearest site: no full-dim region.
        problem = MaxBRkNNProblem([(1.0, 1.0)], [(1.0, 1.0), (9, 9)], k=1)
        result = solve_l1(problem)
        assert result.score == 0.0
        assert result.regions == ()

    def test_grid_guard(self, monkeypatch):
        import repro.l1.solver as solver_mod
        monkeypatch.setattr(solver_mod, "MAX_GRID_CELLS", 4)
        problem = MaxBRkNNProblem([(0, 0), (1, 0), (0, 1)],
                                  [(5, 5), (6, 6)], k=1)
        with pytest.raises(ValueError):
            solve_l1(problem)


class TestAgainstSampling:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_sampling(self, seed):
        """The sweep optimum matches a brute-force lattice evaluation."""
        customers, sites = synthetic_instance(60, 6, "uniform", seed=seed)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        result = solve_l1(problem)
        nlcs = result.nlcs
        us, vs = nlcs.edges()
        # Evaluate all compressed-cell centres directly (independent
        # implementation of the same semantics).
        uc = (us[:-1] + us[1:]) / 2.0
        vc = (vs[:-1] + vs[1:]) / 2.0
        best = 0.0
        for v in vc:
            row = np.column_stack((uc, np.full_like(uc, v)))
            best = max(best, float(
                nlcs.cover_scores_at_points(row, strict=True).max()))
        assert result.score == pytest.approx(best)

    @pytest.mark.parametrize("seed", range(3))
    def test_region_membership_consistent(self, seed):
        customers, sites = synthetic_instance(50, 5, "uniform",
                                              seed=seed + 50)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = solve_l1(problem)
        region = result.best_region
        x, y = region.representative_point()
        uv = to_chebyshev(np.array([[x, y]]))
        value = result.nlcs.cover_scores_at_points(uv, strict=True)[0]
        assert value == pytest.approx(result.score)


class TestL1Properties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_l1_score_matches_reference_cells(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 30))
        m = int(rng.integers(2, 6))
        customers = rng.uniform(0, 4, (n, 2))
        sites = rng.uniform(0, 4, (m, 2))
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = solve_l1(problem)
        # Score bounded by total weight and at least the best single NLC.
        assert 1.0 - 1e-9 <= result.score <= n + 1e-9
        # Every returned region's representative achieves the score.
        for region in result.regions:
            x, y = region.representative_point()
            uv = to_chebyshev(np.array([[x, y]]))
            value = result.nlcs.cover_scores_at_points(uv,
                                                       strict=True)[0]
            assert value == pytest.approx(result.score)
