"""Tests for repro.geometry.arcs (Arc, AngularIntervals, ArcRegion)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.arcs import (TWO_PI, AngularIntervals, Arc, ArcRegion,
                                 normalize_angle)
from repro.geometry.circle import Circle
from repro.geometry.intersection import intersect_disks

angle = st.floats(min_value=-20.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False)


class TestNormalizeAngle:
    def test_basic(self):
        assert normalize_angle(0.0) == 0.0
        assert normalize_angle(TWO_PI) == pytest.approx(0.0)
        assert normalize_angle(-math.pi / 2) == pytest.approx(
            3 * math.pi / 2)

    @given(angle)
    def test_range_and_equivalence(self, theta):
        out = normalize_angle(theta)
        assert 0.0 <= out < TWO_PI
        assert math.cos(out) == pytest.approx(math.cos(theta), abs=1e-9)
        assert math.sin(out) == pytest.approx(math.sin(theta), abs=1e-9)


class TestArc:
    def test_invalid_sweep(self):
        c = Circle(0, 0, 1)
        with pytest.raises(ValueError):
            Arc(c, 0.0, 0.0)
        with pytest.raises(ValueError):
            Arc(c, 0.0, 7.0)

    def test_full_circle(self):
        arc = Arc(Circle(0, 0, 2), 0.0, TWO_PI)
        assert arc.is_full_circle
        assert arc.length == pytest.approx(2 * TWO_PI)
        assert arc.contains_angle(1.2345)

    def test_endpoints_and_midpoint(self):
        arc = Arc(Circle(0, 0, 1), 0.0, math.pi)
        assert arc.start_point.as_tuple() == pytest.approx((1.0, 0.0))
        assert arc.end_point.x == pytest.approx(-1.0)
        assert arc.midpoint.y == pytest.approx(1.0)

    def test_contains_angle_wrapping(self):
        arc = Arc(Circle(0, 0, 1), 3 * math.pi / 2, math.pi)  # 270°..90°
        assert arc.contains_angle(0.0)
        assert arc.contains_angle(7 * math.pi / 4)
        assert not arc.contains_angle(math.pi)

    def test_segment_area_semicircle(self):
        arc = Arc(Circle(0, 0, 2), 0.0, math.pi)
        assert arc.segment_area() == pytest.approx(math.pi * 2.0)

    def test_farthest_distance_full_circle(self):
        arc = Arc(Circle(0, 0, 1), 0.0, TWO_PI)
        assert arc.farthest_distance_from(3.0, 0.0) == pytest.approx(4.0)
        assert arc.farthest_distance_from(0.0, 0.0) == pytest.approx(1.0)

    def test_farthest_distance_diametric_point_on_arc(self):
        # Quarter arc on the right side; from a probe on the left the
        # diametrically-away point (1, 0) lies on the arc.
        arc = Arc(Circle(0, 0, 1), 2 * math.pi - math.pi / 4, math.pi / 2)
        assert arc.farthest_distance_from(-2.0, 0.0) == pytest.approx(3.0)

    def test_farthest_distance_respects_arc_extent(self):
        # Same arc, probe on the right: the diametric point (-1, 0) is NOT
        # on the arc, so the maximum moves to an endpoint.
        arc = Arc(Circle(0, 0, 1), 2 * math.pi - math.pi / 4, math.pi / 2)
        d = arc.farthest_distance_from(2.0, 0.0)
        s = math.sqrt(0.5)
        expected = math.hypot(2.0 - s, s)
        assert d == pytest.approx(expected)

    def test_farthest_distance_exhaustive_check(self):
        arc = Arc(Circle(0.5, -0.2, 1.3), 0.7, 2.1)
        probe = (1.4, 2.2)
        brute = max(math.hypot(p.x - probe[0], p.y - probe[1])
                    for p in arc.sample(2000))
        assert arc.farthest_distance_from(*probe) == pytest.approx(
            brute, rel=1e-5)

    def test_sample_endpoints(self):
        arc = Arc(Circle(0, 0, 1), 0.0, math.pi / 2)
        pts = arc.sample(5)
        assert len(pts) == 5
        assert pts[0].is_close(arc.start_point)
        assert pts[-1].is_close(arc.end_point)


class TestAngularIntervals:
    def test_starts_full(self):
        iv = AngularIntervals()
        assert iv.is_full
        assert iv.total_measure() == pytest.approx(TWO_PI)

    def test_single_constraint(self):
        iv = AngularIntervals()
        iv.intersect_with(0.0, math.pi / 4)
        assert not iv.is_full
        assert iv.total_measure() == pytest.approx(math.pi / 2)

    def test_disjoint_constraints_empty(self):
        iv = AngularIntervals()
        iv.intersect_with(0.0, 0.3)
        iv.intersect_with(math.pi, 0.3)
        assert iv.is_empty

    def test_wrapping_constraint(self):
        iv = AngularIntervals()
        iv.intersect_with(0.0, 0.5)          # (-0.5, 0.5) wraps
        iv.intersect_with(0.2, 0.5)          # (-0.3, 0.7)
        assert iv.total_measure() == pytest.approx(0.8, abs=1e-9)

    def test_zero_width_empties(self):
        iv = AngularIntervals()
        iv.intersect_with(1.0, 0.0)
        assert iv.is_empty

    def test_full_width_noop(self):
        iv = AngularIntervals()
        iv.intersect_with(1.0, math.pi)
        assert iv.is_full

    @given(st.lists(st.tuples(angle,
                              st.floats(min_value=0.05, max_value=3.0)),
                    min_size=1, max_size=6))
    def test_measure_never_increases(self, constraints):
        iv = AngularIntervals()
        prev = iv.total_measure()
        for center, width in constraints:
            iv.intersect_with(center, width)
            cur = iv.total_measure()
            assert cur <= prev + 1e-9
            prev = cur

    @given(st.lists(st.tuples(angle,
                              st.floats(min_value=0.05, max_value=3.0)),
                    min_size=1, max_size=5))
    def test_membership_matches_pointwise(self, constraints):
        """Interval intersection == conjunction of angular membership."""
        iv = AngularIntervals()
        for center, width in constraints:
            iv.intersect_with(center, width)

        def member(theta: float) -> bool:
            return any(
                (normalize_angle(theta) - s) % TWO_PI <= (e - s)
                for s, e in iv.intervals()) and not iv.is_empty

        def expected(theta: float) -> bool:
            return all(
                math.cos(theta - center) > math.cos(width)
                for center, width in constraints)

        for k in range(48):
            theta = k * TWO_PI / 48 + 0.013
            exp = expected(theta)
            got = member(theta)
            # Allow disagreement only within tolerance of a boundary.
            near_boundary = any(
                abs(math.cos(theta - c) - math.cos(w)) < 1e-6
                for c, w in constraints)
            if not near_boundary:
                assert got == exp


class TestArcRegion:
    def test_full_disk_region(self):
        region = intersect_disks([Circle(1.0, 2.0, 3.0)])
        assert region.area == pytest.approx(math.pi * 9.0)
        assert region.contains_point(1.0, 2.0)
        assert region.representative_point().is_close(region.circles[0].center)
        assert region.vertices() == []

    def test_lens_area_formula(self):
        # Two unit circles at distance 1: lens area has a closed form.
        a = Circle(0.0, 0.0, 1.0)
        b = Circle(1.0, 0.0, 1.0)
        region = intersect_disks([a, b])
        d = 1.0
        expected = (2 * math.acos(d / 2) - (d / 2) * math.sqrt(4 - d * d))
        assert region.area == pytest.approx(expected, rel=1e-9)

    def test_lens_contains_and_rejects(self):
        region = intersect_disks([Circle(0, 0, 1), Circle(1, 0, 1)])
        assert region.contains_point(0.5, 0.0)
        assert not region.contains_point(-0.5, 0.0)
        assert not region.contains_point(1.5, 0.0)

    def test_representative_point_inside(self):
        region = intersect_disks([Circle(0, 0, 1), Circle(1, 0, 1),
                                  Circle(0.5, 0.8, 1.0)])
        p = region.representative_point()
        assert region.contains_point(p.x, p.y)

    def test_bounding_box_covers_boundary(self):
        region = intersect_disks([Circle(0, 0, 1), Circle(0.8, 0, 1)])
        box = region.bounding_box()
        for p in region.sample_boundary(64):
            assert box.expanded(1e-9).contains_point(p.x, p.y)

    def test_max_distance_from(self):
        region = intersect_disks([Circle(0, 0, 1), Circle(0.5, 0, 1)])
        probe = (0.25, 0.0)
        brute = max(math.hypot(p.x - probe[0], p.y - probe[1])
                    for p in region.sample_boundary(512))
        assert region.max_distance_from(*probe) == pytest.approx(
            brute, rel=1e-4)

    def test_degenerate_region(self):
        region = ArcRegion(circles=(Circle(0, 0, 1),), arcs=(),
                           degenerate_point=Circle(0, 0, 1).point_at(0.0))
        assert region.is_degenerate
        assert region.area == 0.0
        assert region.contains_point(1.0, 0.0)
        assert not region.contains_point(0.5, 0.0)
        assert region.max_distance_from(0.0, 0.0) == pytest.approx(1.0)
