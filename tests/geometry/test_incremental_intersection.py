"""Bit-identity of IncrementalDiskIntersection against intersect_disks.

Phase II's incremental clipper must return, after every prefix of
additions, float-for-float the ArcRegion the from-scratch construction
returns on the same prefix — arcs (circle, start, sweep), circle list,
degenerate point, and error behaviour.  This is the contract the new
``compute_optimal_region`` rests on; the property tests here exercise
overlapping families (with duplicates), tangent/disjoint configurations,
and the single-circle quirk, and CI runs them on both kernel arms
(``REPRO_NO_CKERNEL`` set and unset) even though the clipper itself is
pure Python — the seeding distances upstream come from the kernels.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.intersection import (DisjointDisksError,
                                         IncrementalDiskIntersection,
                                         intersect_disks)


@st.composite
def overlapping_families(draw, max_circles=6):
    """Circle lists sharing a common interior point, duplicates allowed."""
    n = draw(st.integers(min_value=1, max_value=max_circles))
    px = draw(st.floats(min_value=-5, max_value=5))
    py = draw(st.floats(min_value=-5, max_value=5))
    out = []
    for _ in range(n):
        if out and draw(st.booleans()) and draw(st.booleans()):
            # Exact duplicate: must be deduplicated identically.
            out.append(out[draw(st.integers(0, len(out) - 1))])
            continue
        cx = px + draw(st.floats(min_value=-0.8, max_value=0.8))
        cy = py + draw(st.floats(min_value=-0.8, max_value=0.8))
        d = math.hypot(cx - px, cy - py)
        r = d + draw(st.floats(min_value=0.05, max_value=2.0))
        out.append(Circle(cx, cy, r))
    return out


@st.composite
def arbitrary_families(draw, max_circles=5):
    """Unconstrained circles: prefixes may go degenerate or disjoint."""
    n = draw(st.integers(min_value=1, max_value=max_circles))
    return [Circle(draw(st.floats(min_value=-3, max_value=3)),
                   draw(st.floats(min_value=-3, max_value=3)),
                   draw(st.floats(min_value=0.05, max_value=3)))
            for _ in range(n)]


def _scratch_outcome(circles, tol):
    try:
        return ("region", intersect_disks(circles, tol=tol))
    except DisjointDisksError:
        return ("disjoint", None)


def _incremental_outcome(clipper):
    try:
        return ("region", clipper.region())
    except DisjointDisksError:
        return ("disjoint", None)


def _assert_regions_identical(a, b):
    assert a.circles == b.circles
    assert a.arcs == b.arcs
    assert a.degenerate_point == b.degenerate_point


class TestPrefixIdentity:
    @settings(max_examples=120, deadline=None)
    @given(overlapping_families())
    def test_overlapping_prefixes_bit_identical(self, circles):
        clipper = IncrementalDiskIntersection(tol=1e-9)
        for i, c in enumerate(circles, start=1):
            clipper.add(c)
            scratch = intersect_disks(circles[:i], tol=1e-9)
            _assert_regions_identical(clipper.region(), scratch)

    @settings(max_examples=120, deadline=None)
    @given(arbitrary_families())
    def test_arbitrary_prefixes_share_outcome(self, circles):
        """Degenerate-point and disjoint prefixes match too."""
        clipper = IncrementalDiskIntersection(tol=1e-9)
        for i, c in enumerate(circles, start=1):
            clipper.add(c)
            kind_s, region_s = _scratch_outcome(circles[:i], tol=1e-9)
            kind_i, region_i = _incremental_outcome(clipper)
            assert kind_i == kind_s
            if kind_s == "region":
                _assert_regions_identical(region_i, region_s)

    @settings(max_examples=60, deadline=None)
    @given(overlapping_families(), st.floats(min_value=1e-12,
                                             max_value=1e-6))
    def test_tolerance_threaded_identically(self, circles, tol):
        clipper = IncrementalDiskIntersection(tol=tol)
        for c in circles:
            clipper.add(c)
        kind_s, region_s = _scratch_outcome(circles, tol=tol)
        kind_i, region_i = _incremental_outcome(clipper)
        assert kind_i == kind_s
        if kind_s == "region":
            _assert_regions_identical(region_i, region_s)


class TestClipperApi:
    def test_empty_raises_like_scratch(self):
        with pytest.raises(ValueError, match="no circles given"):
            IncrementalDiskIntersection().region()

    def test_duplicate_add_is_refused(self):
        clipper = IncrementalDiskIntersection()
        assert clipper.add(Circle(0, 0, 1)) is True
        assert clipper.add(Circle(0, 0, 1)) is False
        assert len(clipper) == 1
        assert clipper.circles == (Circle(0, 0, 1),)

    def test_near_duplicate_within_tol_refused(self):
        clipper = IncrementalDiskIntersection(tol=1e-6)
        clipper.add(Circle(0, 0, 1))
        assert clipper.add(Circle(5e-7, 0, 1 + 5e-7)) is False

    def test_single_circle_matches_scratch_quirk(self):
        # The one-circle ArcRegion carries the default _tol in both
        # constructions (a preserved intersect_disks quirk).
        only = Circle(1, 2, 3)
        clipper = IncrementalDiskIntersection(tol=1e-7)
        clipper.add(only)
        _assert_regions_identical(clipper.region(),
                                  intersect_disks([only], tol=1e-7))

    def test_disjoint_raises_disjointdiskserror(self):
        clipper = IncrementalDiskIntersection()
        clipper.add(Circle(0, 0, 1))
        clipper.add(Circle(5, 0, 1))
        with pytest.raises(DisjointDisksError):
            clipper.region()

    def test_dead_circle_stays_dead(self):
        # A nested sequence kills the big circle's boundary; adding more
        # disks afterwards must not resurrect it.
        clipper = IncrementalDiskIntersection()
        clipper.add(Circle(0, 0, 5))
        clipper.add(Circle(0.5, 0, 1))   # big circle contributes no arcs
        clipper.add(Circle(0.4, 0, 1.2))
        circles = list(clipper.circles)
        _assert_regions_identical(clipper.region(),
                                  intersect_disks(circles, tol=1e-9))
