"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point, distance, distance_squared, midpoint

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestPointBasics:
    def test_fields(self):
        p = Point(1.5, -2.0)
        assert p.x == 1.5
        assert p.y == -2.0

    def test_immutable(self):
        p = Point(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 1.0

    def test_hashable_and_equal(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1

    def test_iteration_and_tuple(self):
        p = Point(3.0, 4.0)
        assert tuple(p) == (3.0, 4.0)
        assert p.as_tuple() == (3.0, 4.0)

    def test_arithmetic(self):
        a = Point(1.0, 2.0)
        b = Point(0.5, -1.0)
        assert a + b == Point(1.5, 1.0)
        assert a - b == Point(0.5, 3.0)
        assert a * 2.0 == Point(2.0, 4.0)
        assert 2.0 * a == Point(2.0, 4.0)

    def test_dot_and_norm(self):
        assert Point(3.0, 4.0).dot(Point(1.0, 0.0)) == 3.0
        assert Point(3.0, 4.0).norm() == 5.0

    def test_distance_to(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_angle_to(self):
        assert Point(0.0, 0.0).angle_to(Point(1.0, 0.0)) == 0.0
        assert Point(0.0, 0.0).angle_to(Point(0.0, 2.0)) == pytest.approx(
            math.pi / 2)

    def test_is_close(self):
        assert Point(0.0, 0.0).is_close(Point(1e-12, -1e-12))
        assert not Point(0.0, 0.0).is_close(Point(1e-3, 0.0))


class TestRawDistance:
    def test_distance_matches_point_method(self):
        assert distance(0, 0, 3, 4) == Point(0, 0).distance_to(Point(3, 4))

    def test_distance_squared(self):
        assert distance_squared(0, 0, 3, 4) == 25.0

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1.0, 2.0)


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetric(self, ax, ay, bx, by):
        assert distance(ax, ay, bx, by) == distance(bx, by, ax, ay)

    @given(finite, finite, finite, finite)
    def test_distance_nonnegative_and_identity(self, ax, ay, bx, by):
        d = distance(ax, ay, bx, by)
        assert d >= 0.0
        assert distance(ax, ay, ax, ay) == 0.0

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        ab = distance(ax, ay, bx, by)
        bc = distance(bx, by, cx, cy)
        ac = distance(ax, ay, cx, cy)
        assert ac <= ab + bc + 1e-7 * max(1.0, ab + bc)

    @given(finite, finite, finite, finite)
    def test_squared_consistent(self, ax, ay, bx, by):
        d = distance(ax, ay, bx, by)
        d2 = distance_squared(ax, ay, bx, by)
        assert d2 == pytest.approx(d * d, rel=1e-9, abs=1e-12)

    @given(finite, finite, finite, finite)
    def test_midpoint_equidistant(self, ax, ay, bx, by):
        m = midpoint(Point(ax, ay), Point(bx, by))
        da = m.distance_to(Point(ax, ay))
        db = m.distance_to(Point(bx, by))
        assert da == pytest.approx(db, rel=1e-6, abs=1e-9)
