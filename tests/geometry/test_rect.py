"""Tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import Rect

coord = st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1 = draw(coord)
    x2 = draw(coord)
    y1 = draw(coord)
    y2 = draw(coord)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestConstruction:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_degenerate_allowed(self):
        r = Rect(1.0, 2.0, 1.0, 2.0)
        assert r.area == 0.0
        assert r.contains_point(1.0, 2.0)

    def test_from_points(self):
        r = Rect.from_points([(0, 1), (2, -1), (1, 3)])
        assert r == Rect(0.0, -1.0, 2.0, 3.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_center(self):
        assert Rect.from_center(0.0, 0.0, 1.0) == Rect(-1, -1, 1, 1)
        assert Rect.from_center(0.0, 0.0, 1.0, 2.0) == Rect(-1, -2, 1, 2)


class TestAccessors:
    def test_dimensions(self):
        r = Rect(0.0, 0.0, 3.0, 4.0)
        assert r.width == 3.0
        assert r.height == 4.0
        assert r.area == 12.0
        assert r.diagonal == 5.0
        assert r.center.as_tuple() == (1.5, 2.0)

    def test_corners_ccw(self):
        corners = Rect(0, 0, 1, 2).corners()
        assert [c.as_tuple() for c in corners] == [
            (0, 0), (1, 0), (1, 2), (0, 2)]


class TestPredicates:
    def test_contains_point_closed(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.0, 0.0)  # corner included
        assert r.contains_point(1.0, 0.5)  # edge included
        assert not r.contains_point(1.0001, 0.5)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(-1, 1, 9, 9))

    def test_intersects_touching_edges(self):
        a = Rect(0, 0, 1, 1)
        assert a.intersects(Rect(1, 0, 2, 1))  # shared edge
        assert a.intersects(Rect(1, 1, 2, 2))  # shared corner
        assert not a.intersects(Rect(1.001, 0, 2, 1))

    def test_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.intersection(b) == Rect(1, 1, 2, 2)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_union_and_enlargement(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 3, 3)
        assert a.union(b) == Rect(0, 0, 3, 3)
        assert a.enlargement(b) == 9.0 - 1.0

    def test_expanded(self):
        assert Rect(0, 0, 1, 1).expanded(0.5) == Rect(-0.5, -0.5, 1.5, 1.5)


class TestSplit:
    def test_split_center_four_quadrants(self):
        quads = Rect(0, 0, 2, 2).split_center()
        assert len(quads) == 4
        assert sum(q.area for q in quads) == pytest.approx(4.0)
        assert Rect(0, 0, 1, 1) in quads
        assert Rect(1, 1, 2, 2) in quads

    def test_split_at_interior_point(self):
        quads = Rect(0, 0, 4, 4).split_at(1.0, 3.0)
        assert len(quads) == 4
        assert sum(q.area for q in quads) == pytest.approx(16.0)
        assert Rect(0, 0, 1, 3) in quads

    def test_split_at_edge_point(self):
        quads = Rect(0, 0, 2, 2).split_at(1.0, 0.0)
        # Two full-height halves plus two degenerate bottom slivers.
        assert len(quads) == 4
        areas = sorted(q.area for q in quads)
        assert areas[:2] == [0.0, 0.0]
        assert sum(areas) == pytest.approx(4.0)

    def test_split_at_corner_echoes_self(self):
        rect = Rect(0, 0, 2, 2)
        quads = rect.split_at(0.0, 0.0)
        assert rect in quads

    def test_split_outside_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).split_at(2.0, 0.5)


class TestDistances:
    def test_min_distance_inside_zero(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(1.0, 1.0) == 0.0

    def test_min_distance_outside(self):
        r = Rect(0, 0, 1, 1)
        assert r.min_distance_to_point(4.0, 5.0) == pytest.approx(5.0)
        assert r.min_distance_to_point(-2.0, 0.5) == pytest.approx(2.0)

    def test_max_distance(self):
        r = Rect(0, 0, 1, 1)
        assert r.max_distance_to_point(0.0, 0.0) == pytest.approx(
            math.sqrt(2))
        assert r.max_distance_to_point(0.5, 0.5) == pytest.approx(
            math.sqrt(0.5))


class TestRectProperties:
    @given(rects(), rects())
    def test_union_commutative_and_covering(self, a, b):
        u = a.union(b)
        assert u == b.union(a)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        ia = a.intersection(b)
        ib = b.intersection(a)
        assert ia == ib

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects())
    def test_split_center_partitions_area(self, r):
        quads = r.split_center()
        assert sum(q.area for q in quads) == pytest.approx(
            r.area, rel=1e-9, abs=1e-9)
        for q in quads:
            assert r.contains_rect(q)

    @given(rects(), coord, coord)
    def test_min_le_max_distance(self, r, x, y):
        assert (r.min_distance_to_point(x, y)
                <= r.max_distance_to_point(x, y) + 1e-12)
