"""Tests for repro.geometry.circle."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry.circle import (Circle, circle_circle_intersection,
                                   circle_contains_rect,
                                   circle_intersects_rect)
from repro.geometry.rect import Rect

coord = st.floats(min_value=-50.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
radius = st.floats(min_value=0.01, max_value=20.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def circles(draw):
    return Circle(draw(coord), draw(coord), draw(radius))


@st.composite
def rects(draw):
    x1, x2 = draw(coord), draw(coord)
    y1, y2 = draw(coord), draw(coord)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


class TestCircleBasics:
    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Circle(0.0, 0.0, -1.0)

    def test_zero_radius_allowed(self):
        c = Circle(1.0, 2.0, 0.0)
        assert c.contains_point(1.0, 2.0)
        assert not c.contains_point(1.0, 2.0001)

    def test_area_and_bbox(self):
        c = Circle(1.0, 1.0, 2.0)
        assert c.area == pytest.approx(math.pi * 4.0)
        assert c.bounding_box() == Rect(-1.0, -1.0, 3.0, 3.0)

    def test_contains_point_closed(self):
        c = Circle(0.0, 0.0, 1.0)
        assert c.contains_point(1.0, 0.0)  # boundary included
        assert c.contains_point(0.5, 0.5)
        assert not c.contains_point(1.0, 0.1)

    def test_contains_point_tolerance(self):
        c = Circle(0.0, 0.0, 1.0)
        assert not c.contains_point(1.0 + 1e-6, 0.0)
        assert c.contains_point(1.0 + 1e-6, 0.0, tol=1e-5)

    def test_signed_boundary_distance(self):
        c = Circle(0.0, 0.0, 2.0)
        assert c.signed_boundary_distance(0.0, 0.0) == 2.0
        assert c.signed_boundary_distance(1.0, 0.0) == 1.0
        assert c.signed_boundary_distance(3.0, 0.0) == -1.0

    def test_point_at(self):
        c = Circle(1.0, 1.0, 2.0)
        p = c.point_at(math.pi / 2)
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(3.0)

    def test_contains_circle(self):
        big = Circle(0.0, 0.0, 5.0)
        assert big.contains_circle(Circle(1.0, 0.0, 2.0))
        assert big.contains_circle(Circle(0.0, 0.0, 5.0))
        assert not big.contains_circle(Circle(4.0, 0.0, 2.0))

    def test_intersects_circle(self):
        a = Circle(0.0, 0.0, 1.0)
        assert a.intersects_circle(Circle(1.5, 0.0, 1.0))
        assert a.intersects_circle(Circle(2.0, 0.0, 1.0))  # tangent
        assert not a.intersects_circle(Circle(3.0, 0.0, 1.0))


class TestCircleCircleIntersection:
    def test_two_points(self):
        pts = circle_circle_intersection(Circle(0, 0, 1), Circle(1, 0, 1))
        assert len(pts) == 2
        for p in pts:
            assert p.x == pytest.approx(0.5)
            assert abs(p.y) == pytest.approx(math.sqrt(3) / 2)

    def test_points_on_both_circumferences(self):
        a = Circle(0.3, -0.2, 1.7)
        b = Circle(1.1, 0.9, 1.2)
        for p in circle_circle_intersection(a, b):
            assert math.hypot(p.x - a.cx, p.y - a.cy) == pytest.approx(a.r)
            assert math.hypot(p.x - b.cx, p.y - b.cy) == pytest.approx(b.r)

    def test_tangent_external(self):
        pts = circle_circle_intersection(Circle(0, 0, 1), Circle(2, 0, 1))
        assert len(pts) == 1
        assert pts[0].x == pytest.approx(1.0)
        assert pts[0].y == pytest.approx(0.0)

    def test_tangent_internal(self):
        pts = circle_circle_intersection(Circle(0, 0, 2), Circle(1, 0, 1))
        assert len(pts) == 1
        assert pts[0].x == pytest.approx(2.0)

    def test_disjoint_none(self):
        assert circle_circle_intersection(
            Circle(0, 0, 1), Circle(5, 0, 1)) == ()

    def test_contained_none(self):
        assert circle_circle_intersection(
            Circle(0, 0, 3), Circle(0.5, 0, 1)) == ()

    def test_concentric_none(self):
        assert circle_circle_intersection(
            Circle(0, 0, 1), Circle(0, 0, 2)) == ()
        assert circle_circle_intersection(
            Circle(0, 0, 1), Circle(0, 0, 1)) == ()

    @given(circles(), circles())
    def test_symmetric(self, a, b):
        pts_ab = circle_circle_intersection(a, b)
        pts_ba = circle_circle_intersection(b, a)
        assert len(pts_ab) == len(pts_ba)
        set_ab = {(round(p.x, 6), round(p.y, 6)) for p in pts_ab}
        set_ba = {(round(p.x, 6), round(p.y, 6)) for p in pts_ba}
        assert set_ab == set_ba

    @given(circles(), circles())
    def test_points_lie_on_circles(self, a, b):
        for p in circle_circle_intersection(a, b):
            da = math.hypot(p.x - a.cx, p.y - a.cy)
            db = math.hypot(p.x - b.cx, p.y - b.cy)
            scale = max(a.r, b.r, 1.0)
            assert abs(da - a.r) < 1e-6 * scale
            assert abs(db - b.r) < 1e-6 * scale


class TestCircleRectPredicates:
    def test_intersects_open_semantics(self):
        c = Circle(0.0, 0.0, 1.0)
        # Disk interior properly overlaps the rect.
        assert circle_intersects_rect(c, Rect(0.5, -1, 3, 1))
        # Rect touches the circle at exactly one boundary point: excluded
        # (region semantics — open disk).
        assert not circle_intersects_rect(c, Rect(1.0, -1, 3, 1))
        # Rect fully outside.
        assert not circle_intersects_rect(c, Rect(2, 2, 3, 3))
        # Rect inside the disk.
        assert circle_intersects_rect(c, Rect(-0.1, -0.1, 0.1, 0.1))

    def test_contains_rect_closed_semantics(self):
        c = Circle(0.0, 0.0, 1.0)
        assert circle_contains_rect(c, Rect(-0.5, -0.5, 0.5, 0.5))
        # Inscribed square: corners on the circle (nudged inward by one
        # float step — exact incidence is ulp-sensitive by construction).
        s = math.sqrt(0.5) * (1.0 - 1e-15)
        assert circle_contains_rect(c, Rect(-s, -s, s, s))
        assert not circle_contains_rect(c, Rect(-0.9, -0.9, 0.9, 0.9))

    def test_degenerate_point_rect(self):
        c = Circle(0.0, 0.0, 1.0)
        inside = Rect(0.5, 0.0, 0.5, 0.0)
        assert circle_intersects_rect(c, inside)
        assert circle_contains_rect(c, inside)
        on_boundary = Rect(1.0, 0.0, 1.0, 0.0)
        assert not circle_intersects_rect(c, on_boundary)  # open disk
        assert circle_contains_rect(c, on_boundary)        # closed disk

    @given(circles(), rects())
    def test_contains_implies_intersects_when_interior_overlaps(self, c, r):
        # contains (closed) plus a genuinely interior rect point implies
        # open-disk intersection.  Only exact-real true: a rect tangent
        # to the circle with sub-ulp extent (width ~1e-160) has no
        # float-representable point strictly inside the open disk, so
        # require the extent to dwarf the rounding at the tangency.
        assume(r.width >= 1e-9 and r.height >= 1e-9)
        if circle_contains_rect(c, r) and r.area > 0:
            assert circle_intersects_rect(c, r)

    @given(circles(), rects())
    def test_intersects_matches_sampling(self, c, r):
        """Open-disk/rect intersection agrees with a point witness."""
        if circle_intersects_rect(c, r):
            # The clamped nearest point must be strictly inside the disk.
            nx = min(max(c.cx, r.xmin), r.xmax)
            ny = min(max(c.cy, r.ymin), r.ymax)
            assert math.hypot(nx - c.cx, ny - c.cy) < c.r
