"""Tests for repro.geometry.intersection (disk intersection kernel)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import Circle
from repro.geometry.intersection import (DisjointDisksError,
                                         disks_common_point,
                                         intersect_disks)

from tests.conftest import polygon_area_by_sampling


@st.composite
def overlapping_circles(draw, max_circles=5):
    """Circles guaranteed to share the neighbourhood of a common point."""
    n = draw(st.integers(min_value=1, max_value=max_circles))
    px = draw(st.floats(min_value=-5, max_value=5))
    py = draw(st.floats(min_value=-5, max_value=5))
    out = []
    for _ in range(n):
        cx = px + draw(st.floats(min_value=-0.8, max_value=0.8))
        cy = py + draw(st.floats(min_value=-0.8, max_value=0.8))
        d = math.hypot(cx - px, cy - py)
        # Radius strictly beyond the anchor point: interior contains it.
        r = d + draw(st.floats(min_value=0.1, max_value=2.0))
        out.append(Circle(cx, cy, r))
    return out, (px, py)


class TestBasicShapes:
    def test_no_circles_raises(self):
        with pytest.raises(ValueError):
            intersect_disks([])

    def test_single_disk(self):
        region = intersect_disks([Circle(0, 0, 2)])
        assert region.area == pytest.approx(math.pi * 4)
        assert len(region.arcs) == 1
        assert region.arcs[0].is_full_circle

    def test_duplicate_disks_deduped(self):
        region = intersect_disks([Circle(0, 0, 2), Circle(0, 0, 2)])
        assert region.area == pytest.approx(math.pi * 4)

    def test_nested_disks(self):
        region = intersect_disks([Circle(0, 0, 5), Circle(0.5, 0, 1)])
        # Intersection is the smaller disk.
        assert region.area == pytest.approx(math.pi, rel=1e-9)
        assert region.contains_point(0.5, 0.0)
        assert not region.contains_point(2.0, 0.0)

    def test_disjoint_raises(self):
        with pytest.raises(DisjointDisksError):
            intersect_disks([Circle(0, 0, 1), Circle(5, 0, 1)])

    def test_externally_tangent_degenerate(self):
        region = intersect_disks([Circle(0, 0, 1), Circle(2, 0, 1)],
                                 tol=1e-9)
        assert region.is_degenerate
        assert region.degenerate_point.x == pytest.approx(1.0)
        assert region.degenerate_point.y == pytest.approx(0.0, abs=1e-6)

    def test_three_circles_through_one_point_degenerate(self):
        # Circles centred on the unit circle, all through the origin,
        # spread so the only common point is the origin.
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2.1, 4.2)]
        region = intersect_disks(circles)
        assert region.is_degenerate
        assert abs(region.degenerate_point.x) < 1e-9
        assert abs(region.degenerate_point.y) < 1e-9

    def test_classic_reuleaux(self):
        # Three unit circles at pairwise distance 1: the Reuleaux-triangle
        # area has a closed form (pi - sqrt(3)) / 2.
        circles = [Circle(0, 0, 1), Circle(1, 0, 1),
                   Circle(0.5, math.sqrt(3) / 2, 1)]
        region = intersect_disks(circles)
        expected = (math.pi - math.sqrt(3)) / 2
        assert region.area == pytest.approx(expected, rel=1e-9)
        assert len(region.arcs) == 3


class TestAgainstSampling:
    @pytest.mark.parametrize("seed", range(6))
    def test_area_matches_monte_carlo(self, seed):
        rng = np.random.default_rng(seed)
        circles = []
        for _ in range(rng.integers(2, 6)):
            circles.append(Circle(float(rng.uniform(-0.4, 0.4)),
                                  float(rng.uniform(-0.4, 0.4)),
                                  float(rng.uniform(0.8, 1.6))))
        region = intersect_disks(circles)
        approx = polygon_area_by_sampling(region, samples=1200, seed=seed)
        assert region.area == pytest.approx(approx, rel=0.08)

    @pytest.mark.parametrize("seed", range(6))
    def test_membership_matches_definition(self, seed):
        rng = np.random.default_rng(100 + seed)
        circles = [Circle(float(rng.uniform(-0.3, 0.3)),
                          float(rng.uniform(-0.3, 0.3)),
                          float(rng.uniform(0.7, 1.4)))
                   for _ in range(3)]
        region = intersect_disks(circles)
        for _ in range(200):
            x = float(rng.uniform(-1.5, 1.5))
            y = float(rng.uniform(-1.5, 1.5))
            expected = all(c.contains_point(x, y, tol=1e-9)
                           for c in circles)
            assert region.contains_point(x, y) == expected


class TestIntersectionProperties:
    @settings(max_examples=60, deadline=None)
    @given(overlapping_circles())
    def test_anchor_inside_and_boundary_on_all(self, data):
        circles, (px, py) = data
        region = intersect_disks(circles)
        assert not region.is_degenerate
        assert region.contains_point(px, py)
        # Every boundary sample lies inside every disk (with tolerance)
        # and on at least one circumference.
        for p in region.sample_boundary(12):
            for c in circles:
                assert c.contains_point(p.x, p.y, tol=1e-6 * max(1, c.r))
            on_any = any(
                abs(c.distance_to_center(p.x, p.y) - c.r) < 1e-6 * max(1, c.r)
                for c in circles)
            assert on_any

    @settings(max_examples=60, deadline=None)
    @given(overlapping_circles())
    def test_area_monotone_under_more_disks(self, data):
        circles, _ = data
        prev_area = math.inf
        for i in range(1, len(circles) + 1):
            area = intersect_disks(circles[:i]).area
            assert area <= prev_area + 1e-9
            prev_area = area

    @settings(max_examples=40, deadline=None)
    @given(overlapping_circles(max_circles=4))
    def test_representative_point_in_all_disks(self, data):
        circles, _ = data
        region = intersect_disks(circles)
        p = region.representative_point()
        for c in circles:
            assert c.contains_point(p.x, p.y, tol=1e-9)


class TestDisksCommonPoint:
    def test_finds_shared_point(self):
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.3, 1.9, 3.8, 5.1)]
        p = disks_common_point(circles, tol=1e-9)
        assert p is not None
        assert math.hypot(p.x, p.y) < 1e-9

    def test_none_when_no_common_point(self):
        circles = [Circle(0, 0, 1), Circle(1, 0, 1), Circle(0.5, 1.5, 1)]
        assert disks_common_point(circles, tol=1e-9) is None

    def test_none_for_single_circle(self):
        assert disks_common_point([Circle(0, 0, 1)]) is None

    def test_tolerance_respected(self):
        # Third circle misses the pairwise point by more than tol.
        circles = [Circle(1, 0, 1), Circle(-1, 0, 1),
                   Circle(0, 1, 1.001)]
        assert disks_common_point(circles, tol=1e-6) is None
        assert disks_common_point(circles, tol=1e-2) is not None
