"""Tests for repro.viz.svg."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.geometry.circle import Circle
from repro.geometry.intersection import intersect_disks
from repro.geometry.rect import Rect
from repro.viz.svg import SvgCanvas, render_instance, render_result


def parse(svg_text: str) -> ET.Element:
    """Well-formedness check via the XML parser."""
    return ET.fromstring(svg_text)


class TestCanvasBasics:
    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SvgCanvas(Rect(0, 0, 1, 1), width=4)

    def test_degenerate_world_padded(self):
        canvas = SvgCanvas(Rect(1, 1, 1, 1), width=100)
        assert canvas.pixel_size[0] == 100
        assert canvas.pixel_size[1] >= 1

    def test_to_pixel_orientation(self):
        canvas = SvgCanvas(Rect(0, 0, 10, 10), width=100, margin=0.0)
        x0, y0 = canvas.to_pixel(0, 0)
        x1, y1 = canvas.to_pixel(10, 10)
        assert x1 > x0
        assert y1 < y0  # y flipped: larger world y is higher on screen

    def test_render_well_formed(self):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        canvas.add_point(0.5, 0.5)
        canvas.add_circle(Circle(0.5, 0.5, 0.2))
        canvas.add_rect(Rect(0.1, 0.1, 0.3, 0.3))
        canvas.add_text(0.5, 0.9, "label & <tag>")
        root = parse(canvas.render())
        assert root.tag.endswith("svg")

    def test_save(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 1, 1))
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")


class TestRegionRendering:
    def test_full_disk_region(self):
        region = intersect_disks([Circle(0, 0, 1)])
        canvas = SvgCanvas(Rect(-1, -1, 1, 1))
        canvas.add_region(region)
        assert "<circle" in canvas.render()

    def test_lens_region_path(self):
        region = intersect_disks([Circle(0, 0, 1), Circle(1, 0, 1)])
        canvas = SvgCanvas(Rect(-1, -1, 2, 1))
        canvas.add_region(region)
        text = canvas.render()
        assert "<path" in text
        # Two arcs -> two A commands, closed with Z.
        path = re.search(r'd="([^"]+)"', text).group(1)
        assert path.count("A ") == 2
        assert path.strip().endswith("Z")
        parse(text)

    def test_degenerate_region_renders_point(self):
        import math
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2.1, 4.2)]
        region = intersect_disks(circles)
        canvas = SvgCanvas(Rect(-2, -2, 2, 2))
        canvas.add_region(region)
        assert "<circle" in canvas.render()


class TestHighLevel:
    def test_render_instance(self, small_uniform_problem):
        nlcs = build_nlcs(small_uniform_problem)
        canvas = render_instance(small_uniform_problem, nlcs=nlcs)
        text = canvas.render()
        parse(text)
        # One circle per NLC plus one dot per customer and site.
        assert text.count("<circle") >= (
            len(nlcs) + small_uniform_problem.n_customers
            + small_uniform_problem.n_sites)

    def test_render_result(self, small_uniform_problem, tmp_path):
        result = MaxFirst().solve(small_uniform_problem)
        canvas = render_result(small_uniform_problem, result)
        path = tmp_path / "result.svg"
        canvas.save(path)
        parse(path.read_text())

    def test_zero_score_result_rect(self):
        # A result whose region has no shape falls back to the quadrant.
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0)])
        result = MaxFirst().solve(problem)
        canvas = render_result(problem, result)
        parse(canvas.render())
