"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.engine import STAGES
from repro.datasets.loader import load_points_csv, save_points_csv
from repro.datasets.synthetic import synthetic_instance


@pytest.fixture
def instance_files(tmp_path):
    customers, sites = synthetic_instance(60, 6, "uniform", seed=23)
    c_path = tmp_path / "customers.csv"
    s_path = tmp_path / "sites.csv"
    save_points_csv(c_path, customers)
    save_points_csv(s_path, sites)
    return str(c_path), str(s_path)


class TestSolve:
    def test_maxfirst(self, instance_files, capsys):
        customers, sites = instance_files
        code = main(["solve", "--customers", customers, "--sites", sites])
        assert code == 0
        out = capsys.readouterr().out
        assert "MaxBRkNN optimum" in out
        assert "quadrants" in out

    def test_maxoverlap(self, instance_files, capsys):
        customers, sites = instance_files
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--solver", "maxoverlap"])
        assert code == 0
        assert "MaxBRkNN optimum" in capsys.readouterr().out

    def test_k_and_probability(self, instance_files, capsys):
        customers, sites = instance_files
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "-k", "2", "--probability", "0.8,0.2"])
        assert code == 0

    def test_l1_metric(self, instance_files, capsys):
        customers, sites = instance_files
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--metric", "l1"])
        assert code == 0
        assert "L1 optimum" in capsys.readouterr().out

    def test_solvers_agree(self, instance_files, capsys):
        customers, sites = instance_files
        main(["solve", "--customers", customers, "--sites", sites])
        first = capsys.readouterr().out.splitlines()[0]
        main(["solve", "--customers", customers, "--sites", sites,
              "--solver", "maxoverlap"])
        second = capsys.readouterr().out.splitlines()[0]
        assert first.split("score")[1].split()[0] == \
            second.split("score")[1].split()[0]


class TestSolveEngine:
    """Registry-backed solver choices and the staged-report surface."""

    @pytest.mark.parametrize("solver", ["gridsearch", "reference"])
    def test_registry_solvers(self, instance_files, capsys, solver):
        customers, sites = instance_files
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--solver", solver])
        assert code == 0
        assert "MaxBRkNN optimum" in capsys.readouterr().out

    def test_sharded_matches_maxfirst(self, instance_files, capsys):
        customers, sites = instance_files
        main(["solve", "--customers", customers, "--sites", sites])
        first = capsys.readouterr().out.splitlines()[0]
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--solver", "maxfirst-sharded", "--shards", "3",
                     "--shard-mode", "serial"])
        assert code == 0
        second = capsys.readouterr().out.splitlines()[0]
        assert first.split("score")[1].split()[0] == \
            second.split("score")[1].split()[0]

    def test_report_to_stdout(self, instance_files, capsys):
        customers, sites = instance_files
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--report"])
        assert code == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["solver"] == "maxfirst"
        assert set(report["stages"]) <= set(STAGES)
        assert "search" in report["stages"]
        assert report["counters"]["generated"] > 0

    def test_report_to_file(self, instance_files, tmp_path, capsys):
        customers, sites = instance_files
        report_path = tmp_path / "report.json"
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--solver", "maxoverlap", "--report",
                     str(report_path)])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["solver"] == "maxoverlap"
        assert report["counters"]["intersecting_pairs"] > 0

    def test_unknown_solver_rejected(self, instance_files):
        customers, sites = instance_files
        with pytest.raises(SystemExit):
            main(["solve", "--customers", customers, "--sites", sites,
                  "--solver", "annealing"])

    def test_bad_shard_mode_rejected(self, instance_files):
        customers, sites = instance_files
        with pytest.raises(SystemExit):
            main(["solve", "--customers", customers, "--sites", sites,
                  "--solver", "maxfirst-sharded", "--shard-mode",
                  "threads"])


class TestGenerate:
    @pytest.mark.parametrize("kind", ["uniform", "normal", "clustered"])
    def test_generate_kinds(self, tmp_path, capsys, kind):
        out_path = tmp_path / f"{kind}.csv"
        code = main(["generate", "--kind", kind, "-n", "120",
                     "-o", str(out_path), "--seed", "3"])
        assert code == 0
        assert load_points_csv(out_path).shape == (120, 2)

    def test_generate_realworld(self, tmp_path):
        out_path = tmp_path / "ux.csv"
        assert main(["generate", "--kind", "ux", "-n", "200",
                     "-o", str(out_path)]) == 0
        pts = load_points_csv(out_path)
        assert pts.shape == (200, 2)
        assert (pts[:, 0] < 0).all()  # western-hemisphere longitudes


class TestBench:
    def test_bench_fig13(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        code = main(["bench", "--figure", "fig13a", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig13_pruning_uniform" in out
        assert "pruned1" in out

    def test_bench_fig8_tiny(self, capsys):
        code = main(["bench", "--figure", "fig8", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig08_effect_of_m" in out
        assert "maxfirst_s" in out


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "--figure", "fig99"])
