"""Protocol conformance of the three NLC storage backends.

Every backend must round-trip a published ``CircleSet`` bit-for-bit,
serve row-slice views, stream a writer build, and release its backing
resource on ``close`` — including when a consumer process dies with the
store mapped (the shm regression at the bottom).
"""

import glob
import os
import pickle

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro import store as nlc_store
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.index.circleset import CircleSet
from repro.obs import metrics as obs_metrics
from repro.store.base import BYTES_PER_ROW, soa_arrays

BACKENDS = ("ram", "shm", "memmap")


def _nlcs(n=60, sites=6, k=2, seed=3):
    customers, site_pts = synthetic_instance(n, sites, "uniform",
                                             seed=seed)
    return build_nlcs(MaxBRkNNProblem(customers, site_pts, k=k))


def _empty_nlcs():
    empty_f = np.empty(0, dtype=np.float64)
    empty_i = np.empty(0, dtype=np.int64)
    return CircleSet(empty_f, empty_f, empty_f, empty_f,
                     owners=empty_i, levels=empty_i)


def _assert_rows(attached, nlcs, lo=0, hi=None):
    hi = len(nlcs) if hi is None else hi
    for got, want in zip(soa_arrays(attached), soa_arrays(nlcs)):
        np.testing.assert_array_equal(got, want[lo:hi])


def _leaked_segments():
    return glob.glob("/dev/shm/repro-nlc-*")


@pytest.fixture(autouse=True)
def _drop_attachments():
    yield
    nlc_store.detach()


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundtrip:
    def test_publish_attach_roundtrip(self, backend):
        nlcs = _nlcs()
        with nlc_store.publish(nlcs, backend) as owner:
            assert owner.backend == backend
            assert owner.length == len(nlcs)
            attached = nlc_store.attach(owner.handle)
            assert len(attached) == len(nlcs)
            _assert_rows(attached, nlcs)

    def test_attach_slice_rows(self, backend):
        nlcs = _nlcs()
        n = len(nlcs)
        with nlc_store.publish(nlcs, backend) as owner:
            for lo, hi in ((0, n), (0, 1), (3, n - 2), (n, n)):
                window = nlc_store.attach_slice(owner.handle, lo, hi)
                assert len(window) == hi - lo
                _assert_rows(window, nlcs, lo, hi)

    def test_slice_out_of_range_raises(self, backend):
        with nlc_store.publish(_nlcs(), backend) as owner:
            n = owner.length
            for lo, hi in ((-1, 2), (0, n + 1), (4, 2)):
                with pytest.raises(ValueError, match="slice"):
                    nlc_store.attach_slice(owner.handle, lo, hi)

    def test_empty_store(self, backend):
        with nlc_store.publish(_empty_nlcs(), backend) as owner:
            assert owner.length == 0
            assert len(nlc_store.attach(owner.handle)) == 0
            assert len(nlc_store.attach_slice(owner.handle, 0, 0)) == 0

    def test_close_is_idempotent(self, backend):
        owner = nlc_store.publish(_nlcs(), backend)
        owner.close()
        owner.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestWriter:
    def test_streaming_build_matches_publish(self, backend):
        nlcs = _nlcs()
        arrays = soa_arrays(nlcs)
        n = len(nlcs)
        writer = nlc_store.writer(n + 5, backend)  # capacity > length
        for lo in range(0, n, 7):
            writer.append([arr[lo:lo + 7] for arr in arrays])
        writer.append([arr[:0] for arr in arrays])  # empty chunk is a no-op
        with writer.finalize() as owner:
            assert owner.length == n
            assert owner.capacity == n + 5
            _assert_rows(nlc_store.attach(owner.handle), nlcs)

    def test_overflow_and_reuse_rejected(self, backend):
        arrays = soa_arrays(_nlcs())
        writer = nlc_store.writer(3, backend)
        with pytest.raises(ValueError, match="overflow"):
            writer.append(arrays)
        writer.append([arr[:2] for arr in arrays])
        owner = writer.finalize()
        owner.close()
        with pytest.raises(RuntimeError, match="finalized"):
            writer.append([arr[:1] for arr in arrays])
        with pytest.raises(RuntimeError, match="finalized"):
            writer.finalize()

    def test_malformed_chunk_rejected(self, backend):
        arrays = soa_arrays(_nlcs())
        writer = nlc_store.writer(100, backend)
        try:
            with pytest.raises(ValueError, match="6 field arrays"):
                writer.append(arrays[:4])
            with pytest.raises(ValueError, match="equal length"):
                writer.append(list(arrays[:5]) + [arrays[5][:1]])
        finally:
            writer.abort()

    def test_abort_releases_resource(self, backend):
        before = set(_leaked_segments())
        writer = nlc_store.writer(10, backend)
        writer.append([arr[:4] for arr in soa_arrays(_nlcs())])
        writer.abort()
        writer.abort()  # idempotent
        assert set(_leaked_segments()) == before
        if backend == "memmap":
            assert not os.path.exists(writer.path)


class TestReadOnlyViews:
    @pytest.mark.parametrize("backend", ("shm", "memmap"))
    def test_attached_views_reject_writes(self, backend):
        # A stray write in a worker must fail loudly, not corrupt every
        # sibling's data.  (ram views are the publisher's own arrays.)
        with nlc_store.publish(_nlcs(), backend) as owner:
            attached = nlc_store.attach(owner.handle)
            for arr in soa_arrays(attached):
                assert not arr.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                attached.cx[0] = 99.0


class TestHandles:
    @pytest.mark.parametrize("backend", ("shm", "memmap"))
    def test_handle_is_tiny_and_picklable(self, backend):
        with nlc_store.publish(_nlcs(), backend) as owner:
            payload = pickle.dumps(owner.handle)
            # The whole point of the transport: O(1) bytes per job.
            assert len(payload) < 512

    def test_ram_handle_carries_payload_by_value(self):
        nlcs = _nlcs()
        owner = nlc_store.publish(nlcs, "ram")
        handle = owner.handle  # taken before close: arrays ride along
        owner.close()
        _assert_rows(nlc_store.attach(handle), nlcs)
        with pytest.raises(ValueError, match="payload"):
            nlc_store.attach(owner.handle)  # taken after close: gone

    def test_legacy_shm_pair_still_attaches(self):
        nlcs = _nlcs()
        owner = nlcs.to_shared()
        try:
            _assert_rows(CircleSet.from_shared((owner.name, owner.length)),
                         nlcs)
        finally:
            nlc_store.detach()
            owner.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            nlc_store.get_backend("tape")
        with pytest.raises(ValueError, match="unknown store backend"):
            nlc_store.resolve_store_name("tape")

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert nlc_store.resolve_store_name() == "ram"
        assert nlc_store.resolve_store_name(default="shm") == "shm"
        monkeypatch.setenv("REPRO_STORE", "memmap")
        assert nlc_store.resolve_store_name() == "memmap"
        assert nlc_store.resolve_store_name("shm") == "shm"  # explicit wins


class TestLifecycle:
    def test_detach_keep_preserves_named_store(self):
        nlcs = _nlcs()
        with nlc_store.publish(nlcs, "shm") as first, \
                nlc_store.publish(nlcs, "shm") as second:
            kept = nlc_store.attach(first.handle)
            nlc_store.attach(second.handle)
            nlc_store.detach(keep=(first.key,))
            # The kept attachment is still the cached object; the other
            # segment was unmapped and re-attaching maps it afresh.
            assert nlc_store.attach(first.handle) is kept
            assert len(nlc_store.attach(second.handle)) == len(nlcs)

    def test_shm_close_unlinks_segment(self):
        before = set(_leaked_segments())
        owner = nlc_store.publish(_nlcs(), "shm")
        assert f"/dev/shm/{owner.key}" in _leaked_segments()
        owner.close()
        assert set(_leaked_segments()) == before

    def test_memmap_close_unlinks_file(self):
        owner = nlc_store.publish(_nlcs(), "memmap")
        assert os.path.exists(owner.path)
        owner.close()
        assert not os.path.exists(owner.path)

    def test_shm_graveyard_parks_exported_views(self):
        """detach() with live numpy views must neither raise nor leak:
        the segment parks in the graveyard until the views die."""
        backend = nlc_store.get_backend("shm")
        nlc_store.detach()  # drain any earlier tests' parked segments
        with nlc_store.publish(_nlcs(), "shm") as owner:
            window = nlc_store.attach_slice(owner.handle, 0, 5)
            held = window.cx  # pins the mapping through the detach
            nlc_store.detach()
            assert len(backend._pending) == 1
            assert held[0] == held[0]  # the parked view still reads
            del window, held
            nlc_store.detach()
            assert backend._pending == []

    def test_memmap_slice_attachments_are_uncached(self):
        backend = nlc_store.get_backend("memmap")
        with nlc_store.publish(_nlcs(), "memmap") as owner:
            first = nlc_store.attach_slice(owner.handle, 0, 5)
            second = nlc_store.attach_slice(owner.handle, 0, 5)
            assert first is not second  # mapping dies with the views
            assert backend._attached == {}


class TestObservability:
    def test_slice_counter_and_mapped_gauge(self):
        nlcs = _nlcs()
        with nlc_store.publish(nlcs, "memmap") as owner:
            before = obs_metrics.REGISTRY.snapshot()
            nlc_store.attach(owner.handle)
            nlc_store.attach_slice(owner.handle, 2, 9)
            delta = obs_metrics.REGISTRY.delta_since(before)
            assert delta["store_slice_views"] == 1  # full attach excluded
            gauges = obs_metrics.REGISTRY.gauges_snapshot()
            assert (gauges["nlc_store_bytes_mapped"]
                    >= BYTES_PER_ROW * len(nlcs))


def _attach_and_die(job):
    """Worker entry for the death regression: map the store, then die
    the hard way (no finally blocks, no interpreter shutdown)."""
    handle, = job
    from repro import store

    attached = store.attach(handle)
    assert len(attached) == handle[2]
    os._exit(3)


class TestWorkerDeath:
    def test_worker_death_mid_attach_leaks_no_shm(self):
        """A worker killed between map and use must leak nothing: its
        mapping vanishes with the process and the name is the owner's
        to unlink."""
        from repro.engine.pool import PersistentPool

        before = set(_leaked_segments())
        owner = nlc_store.publish(_nlcs(), "shm")
        pool = PersistentPool(max_workers=1)
        try:
            future = pool.submit_call(_attach_and_die, (owner.handle,))
            with pytest.raises(BrokenProcessPool):
                future.result(timeout=60)
        finally:
            pool.close()
            owner.close()
        assert set(_leaked_segments()) == before
