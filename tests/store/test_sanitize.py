"""The REPRO_SANITIZE lifecycle ledger: leaks are caught, balance passes.

These tests drive :mod:`repro.store.sanitize` directly (enable/reset in
a fixture) so they work whether or not the surrounding run exported
``REPRO_SANITIZE=1``.  The deliberate-leak cases prove the sanitizer
*fails* on a leak — without them a silent no-op ledger would pass CI
forever.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import store as nlc_store
from repro.obs import metrics as obs_metrics
from repro.store import sanitize
from repro.store.base import soa_arrays

from tests.store.test_backends import _nlcs


@pytest.fixture(autouse=True)
def _fresh_ledger():
    """Record into a fresh ledger for each test, then restore whatever
    mode the surrounding session runs in (REPRO_SANITIZE=1 keeps its
    ledger via enable(); plain runs go back to disabled)."""
    was_active = sanitize.active()
    sanitize.enable()
    sanitize.reset()
    yield
    nlc_store.detach()
    if was_active:
        sanitize.reset()
    else:
        sanitize.disable()


class TestBalancedLifecyclesPass:
    @pytest.mark.parametrize("backend", ("ram", "shm", "memmap"))
    def test_publish_close_is_clean(self, backend):
        owner = nlc_store.publish(_nlcs(), backend)
        views = nlc_store.attach(owner.handle)
        assert soa_arrays(views)[0].shape[0] == len(_nlcs())
        nlc_store.detach()
        owner.close()
        sanitize.check()  # does not raise
        assert sanitize.violations() == []

    def test_writer_finalize_is_clean(self):
        nlcs = _nlcs()
        writer = nlc_store.writer(len(nlcs), "shm")
        writer.append(soa_arrays(nlcs))
        sealed = writer.finalize()
        sealed.close()
        sanitize.check()

    def test_writer_abort_is_clean(self):
        writer = nlc_store.writer(16, "shm")
        writer.abort()
        sanitize.check()

    def test_task_brackets_balance(self):
        with sanitize.task("solve_tile"):
            pass
        sanitize.check()


class TestDeliberateLeaksFail:
    def test_unclosed_shm_owner_raises_naming_this_file(self):
        owner = nlc_store.publish(_nlcs(), "shm")
        try:
            with pytest.raises(sanitize.StoreLeakError) as excinfo:
                sanitize.check()
            message = str(excinfo.value)
            assert "never closed" in message
            assert "test_sanitize.py" in message  # the creating site
        finally:
            owner.close()

    def test_unfinalized_writer_raises(self):
        writer = nlc_store.writer(8, "shm")
        try:
            with pytest.raises(sanitize.StoreLeakError) as excinfo:
                sanitize.check()
            assert "never finalized" in str(excinfo.value)
        finally:
            writer.abort()

    def test_task_imbalance_raises(self):
        ctx = sanitize.task("solve_tile")
        ctx.__enter__()
        with pytest.raises(sanitize.StoreLeakError) as excinfo:
            sanitize.check()
        assert "task imbalance" in str(excinfo.value)
        ctx.__exit__(None, None, None)
        sanitize.check()

    def test_violation_count_reaches_the_gauge(self):
        owner = nlc_store.publish(_nlcs(), "shm")
        try:
            with pytest.raises(sanitize.StoreLeakError):
                sanitize.check()
            snapshot = obs_metrics.REGISTRY.gauges_snapshot()
            assert snapshot["store_sanitize_violations"] >= 1.0
        finally:
            owner.close()
        sanitize.check()
        snapshot = obs_metrics.REGISTRY.gauges_snapshot()
        assert snapshot["store_sanitize_violations"] == 0.0


class TestLedgerModes:
    def test_disabled_hooks_are_noops(self):
        sanitize.disable()
        assert not sanitize.active()
        owner = nlc_store.publish(_nlcs(), "shm")
        owner.close()
        assert sanitize.violations() == []
        sanitize.check()  # nothing recorded, nothing raised

    def test_reset_drops_recorded_state(self):
        owner = nlc_store.publish(_nlcs(), "shm")
        assert sanitize.violations(scan_disk=False) != []
        sanitize.reset()
        assert sanitize.violations(scan_disk=False) == []
        owner.close()  # release the real segment either way

    def test_ram_owners_are_never_violations(self):
        nlc_store.publish(_nlcs(), "ram")  # dropped without close
        assert sanitize.violations(scan_disk=False) == []


class TestSessionHookEndToEnd:
    def test_leaking_suite_fails_under_repro_sanitize(self, tmp_path):
        """The CI wiring, for real: a pytest run whose only test leaks
        an shm owner passes test-wise but exits non-zero under
        REPRO_SANITIZE=1 via the sessionfinish audit."""
        repo_root = Path(__file__).resolve().parents[2]
        # Delegate to the REAL hook (not a copy) so this exercises the
        # exact function CI runs.
        (tmp_path / "conftest.py").write_text(
            "from tests.conftest import pytest_sessionfinish  # noqa: F401\n",
            encoding="utf-8")
        (tmp_path / "test_leak.py").write_text(
            "import numpy as np\n"
            "from repro import store\n"
            "from repro.index.circleset import CircleSet\n"
            "\n"
            "def test_leaks_an_owner():\n"
            "    f = np.zeros(4)\n"
            "    i = np.zeros(4, dtype=np.int64)\n"
            "    store.publish(CircleSet(f, f, f + 0.1, f,\n"
            "                            owners=i, levels=i), 'shm')\n",
            encoding="utf-8")
        env = {"PYTHONPATH": f"{repo_root / 'src'}:{repo_root}",
               "PATH": "/usr/bin:/bin", "HOME": "/tmp",
               "REPRO_SANITIZE": "1"}
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "test_leak.py",
             "-p", "no:cacheprovider"],
            cwd=tmp_path, capture_output=True, text=True,
            env=env, timeout=120)
        assert proc.returncode != 0, proc.stdout + proc.stderr
        combined = proc.stdout + proc.stderr
        assert "REPRO_SANITIZE" in combined
        assert "never closed" in combined
        assert "test_leak.py" in combined  # the creating call site
