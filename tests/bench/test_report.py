"""Tests for repro.bench.report."""

from repro.bench.report import ascii_chart, format_table, speedup_summary


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_values(self):
        rows = [{"n": 10, "t": 0.51}, {"n": 2000, "t": 12.0}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].split() == ["n", "t"]
        assert "2000" in lines[3]
        assert "0.51" in lines[2]

    def test_none_rendered_as_dash(self):
        out = format_table([{"a": None}])
        assert "-" in out.splitlines()[-1]

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]


class TestAsciiChart:
    def test_empty_series(self):
        out = ascii_chart([1, 2], {"s": [None, None]}, title="t")
        assert "(no data)" in out

    def test_contains_markers_and_legend(self):
        out = ascii_chart([1, 2, 4], {"fast": [0.1, 0.2, 0.4],
                                      "slow": [1.0, 4.0, 16.0]})
        assert "*" in out
        assert "o" in out
        assert "*=fast" in out
        assert "o=slow" in out

    def test_log_scale_skips_nonpositive(self):
        out = ascii_chart([1, 2], {"s": [0.0, 1.0]}, log_y=True)
        body = "\n".join(out.splitlines()[:-1])  # strip the legend line
        assert body.count("*") == 1

    def test_linear_scale(self):
        out = ascii_chart([1, 2], {"s": [5.0, 10.0]}, log_y=False)
        assert "*" in out

    def test_flat_series_no_crash(self):
        out = ascii_chart([1, 2, 3], {"s": [1.0, 1.0, 1.0]})
        assert "*" in out


class TestSpeedupSummary:
    def test_geo_mean(self):
        rows = [{"fast": 1.0, "slow": 10.0}, {"fast": 1.0, "slow": 1000.0}]
        out = speedup_summary(rows, "fast", "slow")
        assert "100.0x" in out
        assert "max 1000.0x" in out

    def test_skipped_rows_ignored(self):
        rows = [{"fast": 1.0, "slow": None}, {"fast": 2.0, "slow": 20.0}]
        out = speedup_summary(rows, "fast", "slow")
        assert "over 1 points" in out

    def test_no_comparable(self):
        assert "n/a" in speedup_summary([{"fast": 1.0, "slow": None}],
                                        "fast", "slow")
