"""Tests for repro.bench.config."""

import pytest

from repro.bench.config import ScaleProfile, get_profile, profile_names


class TestProfiles:
    def test_known_names(self):
        assert set(profile_names()) == {"tiny", "small", "paper"}

    def test_get_by_name(self):
        assert get_profile("tiny").name == "tiny"
        assert get_profile("paper").n_customers == 50_000

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_profile("huge")

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_profile().name == "tiny"

    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_profile().name == "small"

    def test_paper_profile_matches_table2(self):
        """Table II: defaults k=1, |O|=50K, |P|=500; ranges 1-15,
        10-100K, 100-1K."""
        p = get_profile("paper")
        assert p.k == 1
        assert p.n_customers == 50_000
        assert p.n_sites == 500
        assert min(p.customers_sweep) == 10_000
        assert max(p.customers_sweep) == 100_000
        assert min(p.sites_sweep) == 100
        assert max(p.sites_sweep) == 1_000
        assert max(p.k_sweep) == 15

    def test_paper_profile_matches_table3(self):
        """Table III cardinalities for the real-world substitutes."""
        p = get_profile("paper")
        assert p.ux_points == 19_499
        assert p.ne_points == 123_593

    def test_profiles_ordered_by_scale(self):
        tiny, small, paper = (get_profile(n)
                              for n in ("tiny", "small", "paper"))
        assert tiny.n_customers < small.n_customers < paper.n_customers
        assert (tiny.maxoverlap_pair_budget
                < small.maxoverlap_pair_budget
                < paper.maxoverlap_pair_budget)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            get_profile("tiny").n_customers = 5
