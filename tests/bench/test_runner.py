"""Tests for repro.bench.runner."""

import pytest

from repro.bench.runner import (ExperimentResult, SolverTiming,
                                predict_pair_count, run_solvers,
                                time_maxfirst, time_maxoverlap)
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance


@pytest.fixture
def problem():
    customers, sites = synthetic_instance(100, 10, "uniform", seed=17)
    return MaxBRkNNProblem(customers, sites, k=1)


class TestTiming:
    def test_time_maxfirst(self, problem):
        timing = time_maxfirst(problem)
        assert timing.solver == "maxfirst"
        assert timing.seconds > 0
        assert timing.score > 0
        assert not timing.skipped

    def test_time_maxoverlap(self, problem):
        timing = time_maxoverlap(problem)
        assert timing.solver == "maxoverlap"
        assert not timing.skipped
        assert timing.score == pytest.approx(time_maxfirst(problem).score)

    def test_budget_skip(self, problem):
        timing = time_maxoverlap(problem, pair_budget=1)
        assert timing.skipped
        assert timing.seconds is None
        assert "budget" in timing.skipped_reason

    def test_solver_options_forwarded(self, problem):
        timing = time_maxfirst(problem, m_threshold=2)
        assert timing.score > 0

    def test_run_solvers(self, problem):
        timings = run_solvers(problem, pair_budget=10**9)
        assert set(timings) == {"maxfirst", "maxoverlap"}
        assert timings["maxfirst"].score == pytest.approx(
            timings["maxoverlap"].score)


class TestPredictPairCount:
    def test_positive_and_scales(self):
        small_c, small_s = synthetic_instance(200, 20, "uniform", seed=1)
        big_c, big_s = synthetic_instance(800, 20, "uniform", seed=1)
        small = predict_pair_count(MaxBRkNNProblem(small_c, small_s))
        big = predict_pair_count(MaxBRkNNProblem(big_c, big_s))
        assert small > 0
        # Quadratic-ish growth in |O| (radius shrink is second order
        # here because |P| is fixed).
        assert big > 4 * small


class TestExperimentResult:
    def test_rows_and_columns(self):
        result = ExperimentResult("exp")
        result.add_row(x=1, y=2.0)
        result.add_row(x=3, y=None)
        assert result.column("x") == [1, 3]
        assert result.column("y") == [2.0, None]
        assert result.column("missing") == [None, None]

    def test_solver_timing_skip_flag(self):
        ok = SolverTiming("s", 1.0, 2.0)
        skip = SolverTiming("s", None, None, skipped_reason="why")
        assert not ok.skipped
        assert skip.skipped
