"""Tests for repro.bench.worked_example helpers (scene data itself is
covered exhaustively in tests/core/test_worked_example.py)."""

import pytest

from repro.bench.worked_example import (CUSTOMERS, SITES,
                                        initial_quadrant_bounds,
                                        worked_example_problem)


class TestFixtureShape:
    def test_scene_sizes(self):
        assert CUSTOMERS.shape == (3, 2)
        assert SITES.shape == (4, 2)

    def test_problem_construction(self):
        p = worked_example_problem()
        assert p.k == 2
        assert p.models[0].probs == (0.8, 0.2)

    def test_custom_model(self):
        p = worked_example_problem((0.5, 0.5))
        assert p.has_uniform_probability


class TestBoundTable:
    def test_generations_parameter(self):
        assert len(initial_quadrant_bounds(generations=1)) == 8
        assert len(initial_quadrant_bounds(generations=4)) == 20

    def test_rows_have_expected_keys(self):
        rows = initial_quadrant_bounds(generations=1)
        assert set(rows[0]) == {"quadrant", "generation", "max_hat",
                                "min_hat"}
        assert rows[0]["quadrant"] == "q1"

    def test_best_max_never_increases_across_generations(self):
        rows = initial_quadrant_bounds(generations=5)
        by_gen = {}
        for row in rows:
            by_gen.setdefault(row["generation"], []).append(row["max_hat"])
        best = [max(by_gen[g]) for g in sorted(by_gen)]
        for earlier, later in zip(best, best[1:]):
            assert later <= earlier + 1e-9
