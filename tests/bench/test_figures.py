"""Smoke tests for the figure experiment definitions (micro profile).

Each experiment runs end to end on a sub-tiny profile and must produce
the rows its figure plots, with agreeing solver scores where both run.
"""

import pytest

from repro.bench import figures
from repro.bench.config import ScaleProfile


@pytest.fixture(scope="module")
def micro() -> ScaleProfile:
    return ScaleProfile(
        name="micro",
        n_customers=150, n_sites=12, k=1,
        customers_sweep=(80, 160),
        sites_sweep=(8, 16),
        k_sweep=(1, 2),
        m_sweep=(2, 4),
        prob_k_sweep=(1, 2),
        ux_points=400, ne_points=400,
        ratio_denominators=(10, 20),
        maxoverlap_pair_budget=10**9,
    )


def assert_agreement(rows):
    for row in rows:
        if row.get("maxoverlap_score") is not None:
            assert row["maxoverlap_score"] == pytest.approx(
                row["maxfirst_score"], rel=1e-6)


class TestFigureExperiments:
    def test_fig08(self, micro):
        result = figures.fig08_effect_of_m(micro)
        assert [row["m"] for row in result.rows] == list(micro.m_sweep)
        scores = {row["score"] for row in result.rows}
        assert len(scores) == 1  # m never changes the answer

    @pytest.mark.parametrize("distribution", ["uniform", "normal"])
    def test_fig10(self, micro, distribution):
        result = figures.fig10_effect_of_customers(distribution, micro)
        assert [row["n_customers"] for row in result.rows] == list(
            micro.customers_sweep)
        assert_agreement(result.rows)

    @pytest.mark.parametrize("distribution", ["uniform", "normal"])
    def test_fig11(self, micro, distribution):
        result = figures.fig11_effect_of_sites(distribution, micro)
        assert [row["n_sites"] for row in result.rows] == list(
            micro.sites_sweep)
        assert_agreement(result.rows)

    def test_fig12a(self, micro):
        result = figures.fig12a_effect_of_k(micro)
        assert [row["k"] for row in result.rows] == list(micro.k_sweep)
        assert_agreement(result.rows)

    def test_fig12b(self, micro):
        result = figures.fig12b_probability_models(micro)
        for row in result.rows:
            assert row["m1_s"] > 0
            assert row["m2_s"] > 0
        # k=1: M1 and M2 both reduce to {1.0} — identical optima.
        first = result.rows[0]
        assert first["m1_score"] == pytest.approx(first["m2_score"])

    @pytest.mark.parametrize("distribution", ["uniform", "normal"])
    def test_fig13(self, micro, distribution):
        result = figures.fig13_pruning(distribution, micro)
        row = result.rows[0]
        assert row["total"] >= row["splits"]
        assert row["pruned1"] > 0
        assert row["splits_per_customer"] > 0

    @pytest.mark.parametrize("dataset", ["ux", "ne"])
    def test_fig14(self, micro, dataset):
        result = figures.fig14_real_world(dataset, micro)
        assert len(result.rows) == len(micro.ratio_denominators)
        assert_agreement(result.rows)
        assert result.meta["substitution"]

    def test_fig14_unknown_dataset(self, micro):
        with pytest.raises(ValueError):
            figures.fig14_real_world("tiger", micro)

    def test_ablation_backends(self, micro):
        result = figures.ablation_backends(micro)
        for row in result.rows:
            assert row["vector_score"] == pytest.approx(row["rtree_score"])

    def test_ablation_theorem3(self, micro):
        result = figures.ablation_theorem3(micro)
        modes = [row["mode"] for row in result.rows]
        assert modes == ["subset", "equality"]
        scores = [row["score"] for row in result.rows]
        assert scores[0] == pytest.approx(scores[1])
