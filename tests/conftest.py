"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.geometry.circle import Circle


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_uniform_problem() -> MaxBRkNNProblem:
    """A deterministic 150-customer / 12-site instance, k=1."""
    customers, sites = synthetic_instance(150, 12, "uniform", seed=5)
    return MaxBRkNNProblem(customers, sites, k=1)


@pytest.fixture
def small_k2_problem() -> MaxBRkNNProblem:
    """A deterministic k=2 instance with a skewed probability model."""
    customers, sites = synthetic_instance(150, 12, "uniform", seed=6)
    return MaxBRkNNProblem(customers, sites, k=2, probability=[0.8, 0.2])


def random_circles(rng: np.random.Generator, n: int,
                   r_lo: float = 0.05, r_hi: float = 0.6) -> list[Circle]:
    """``n`` random circles in the unit square (helper for geometry
    tests)."""
    out = []
    for _ in range(n):
        out.append(Circle(float(rng.random()), float(rng.random()),
                          float(rng.uniform(r_lo, r_hi))))
    return out


def sample_disk_intersection(circles, n_per_axis: int = 60):
    """Monte-Carlo points inside the intersection of circles (brute)."""
    xs = np.linspace(
        max(c.cx - c.r for c in circles),
        min(c.cx + c.r for c in circles) if circles else 1.0,
        n_per_axis)
    ys = np.linspace(
        max(c.cy - c.r for c in circles),
        min(c.cy + c.r for c in circles) if circles else 1.0,
        n_per_axis)
    points = []
    for x in xs:
        for y in ys:
            if all((x - c.cx) ** 2 + (y - c.cy) ** 2 <= c.r * c.r
                   for c in circles):
                points.append((x, y))
    return points


def assert_scores_close(a: float, b: float, rel: float = 1e-6,
                        context: str = "") -> None:
    tol = rel * max(1.0, abs(a), abs(b))
    assert abs(a - b) <= tol, f"{context}: {a} != {b} (tol {tol})"


def brute_knn_distances(queries: np.ndarray, points: np.ndarray,
                        k: int) -> np.ndarray:
    """Reference kNN distances via a full distance matrix."""
    d = np.hypot(queries[:, 0:1] - points[None, :, 0],
                 queries[:, 1:2] - points[None, :, 1])
    d.sort(axis=1)
    return d[:, :k]


def polygon_area_by_sampling(region, samples: int = 400,
                             seed: int = 0) -> float:
    """Monte-Carlo area of an ArcRegion (for cross-checking .area)."""
    box = region.bounding_box()
    if box.area == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    pts = rng.random((samples * samples // 100, 2))
    pts[:, 0] = box.xmin + pts[:, 0] * box.width
    pts[:, 1] = box.ymin + pts[:, 1] * box.height
    inside = sum(1 for x, y in pts if region.contains_point(x, y))
    return box.area * inside / pts.shape[0]


def circle_angle(circle: Circle, x: float, y: float) -> float:
    return math.atan2(y - circle.cy, x - circle.cx)


def pytest_sessionfinish(session, exitstatus):
    """REPRO_SANITIZE=1 runs end with a lifecycle audit: any store
    owner, writer, attachment, or pool task the suite leaked fails the
    whole session here, naming the creating call sites."""
    from repro.store import sanitize

    if not sanitize.active():
        return
    try:
        sanitize.check()
    except sanitize.StoreLeakError as exc:
        tr = session.config.pluginmanager.get_plugin("terminalreporter")
        if tr is not None:
            tr.write_line(f"REPRO_SANITIZE: {exc}", red=True)
        session.exitstatus = 1
