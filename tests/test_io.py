"""Tests for repro.io (result serialization)."""

import json

import numpy as np
import pytest

from repro.core.maxfirst import MaxFirst
from repro.io import (load_result, result_from_dict, result_to_dict,
                      save_result)


@pytest.fixture
def solved(small_k2_problem):
    return MaxFirst().solve(small_k2_problem)


class TestRoundTrip:
    def test_dict_round_trip(self, solved):
        restored = result_from_dict(result_to_dict(solved))
        assert restored.score == solved.score
        assert restored.space == solved.space
        assert len(restored.regions) == len(solved.regions)
        np.testing.assert_array_equal(restored.nlcs.cx, solved.nlcs.cx)
        np.testing.assert_array_equal(restored.nlcs.scores,
                                      solved.nlcs.scores)
        assert restored.stats == solved.stats
        assert restored.timings == solved.timings

    def test_file_round_trip(self, solved, tmp_path):
        path = tmp_path / "result.json"
        save_result(path, solved)
        restored = load_result(path)
        assert restored.score == solved.score

    def test_regions_preserve_geometry(self, solved):
        restored = result_from_dict(result_to_dict(solved))
        for orig, back in zip(solved.regions, restored.regions):
            assert back.score == orig.score
            assert back.cover == orig.cover
            assert back.area == pytest.approx(orig.area)
            p = orig.representative_point()
            assert back.contains_point(p.x, p.y)

    def test_json_is_plain(self, solved, tmp_path):
        path = tmp_path / "result.json"
        save_result(path, solved)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert isinstance(data["regions"], list)

    def test_degenerate_region_round_trip(self):
        import math
        from repro.index.circleset import CircleSet
        from repro.geometry.circle import Circle
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2.1, 4.2)]
        # Construct a result whose region could be degenerate by solving
        # a 2-circle lens shrunk to tangency.
        nlcs = CircleSet.from_circles(
            [Circle(0, 0, 1), Circle(2, 0, 1), Circle(5, 0, 0.5)])
        result = MaxFirst().solve_nlcs(nlcs)
        restored = result_from_dict(result_to_dict(result))
        assert restored.score == result.score


class TestValidation:
    def test_wrong_version_rejected(self, solved):
        data = result_to_dict(solved)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            result_from_dict(data)
