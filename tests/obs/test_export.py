"""Exporter formats, including the acceptance-criterion Chrome trace:
a traced solve must cover all six pipeline stages with at least one
sub-span inside ``search``."""

import json

import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import STAGES, run_pipeline
from repro.obs.export import (chrome_trace_events, write_chrome_trace,
                              write_metrics_json, write_spans_jsonl)
from repro.obs.trace import TRACER, SpanRecord


@pytest.fixture
def spans():
    return [
        SpanRecord(name="solve/x", ts=0.0, dur=1.0, depth=0),
        SpanRecord(name="pipeline/search", ts=0.1, dur=0.5, depth=1,
                   args={"n": 3}),
        SpanRecord(name="shard/tile0", ts=0.2, dur=0.2, depth=0, pid=1),
    ]


class TestChromeTrace:
    def test_complete_events_in_microseconds(self, spans):
        events = [e for e in chrome_trace_events(spans) if e["ph"] == "X"]
        assert len(events) == 3
        first = events[0]
        assert first["ts"] == pytest.approx(0.0)
        assert first["dur"] == pytest.approx(1.0e6)
        assert first["pid"] == 0
        assert first["tid"] == 0
        assert events[1]["args"] == {"n": 3}
        assert events[2]["pid"] == 1

    def test_process_name_metadata_per_pid(self, spans):
        meta = [e for e in chrome_trace_events(spans) if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {0, 1}
        assert any("worker" in e["args"]["name"] for e in meta)

    def test_written_file_is_a_json_array(self, spans, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", spans)
        doc = json.loads(path.read_text())
        assert isinstance(doc, list)
        assert any(e.get("name") == "pipeline/search" for e in doc)


class TestJsonl:
    def test_one_record_per_line(self, spans, tmp_path):
        path = write_spans_jsonl(tmp_path / "t.jsonl", spans)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "solve/x"
        assert parsed[2]["pid"] == 1

    def test_empty_span_list(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "t.jsonl", [])
        assert path.read_text() == ""


class TestMetricsJson:
    def test_sections_and_sorting(self, tmp_path):
        path = write_metrics_json(tmp_path / "m.json",
                                  {"b": 2, "a": 1}, {"g": 1.5},
                                  meta={"scale": "tiny"})
        doc = json.loads(path.read_text())
        assert list(doc["counters"]) == ["a", "b"]
        assert doc["gauges"] == {"g": 1.5}
        assert doc["meta"]["scale"] == "tiny"

    def test_gauges_optional(self, tmp_path):
        path = write_metrics_json(tmp_path / "m.json", {"a": 1})
        doc = json.loads(path.read_text())
        assert doc["gauges"] == {}


class TestTracedSolveAcceptance:
    def test_trace_covers_all_stages_with_search_substructure(self, tmp_path):
        customers, sites = synthetic_instance(120, 10, "uniform", seed=11)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        TRACER.reset(enabled=True)
        try:
            run_pipeline("maxfirst", problem)
        finally:
            TRACER.disable()
        path = write_chrome_trace(tmp_path / "trace.json",
                                  TRACER.finished())
        TRACER.reset(enabled=False)
        events = json.loads(path.read_text())
        names = {e["name"] for e in events if e.get("ph") == "X"}
        for stage in STAGES:
            assert f"pipeline/{stage}" in names
        # At least one sub-span inside search: Phase I's own span nests
        # one level below pipeline/search.
        by_name = {e["name"]: e for e in events if e.get("ph") == "X"}
        search = by_name["pipeline/search"]
        phase1 = by_name["phase1/search"]
        assert phase1["tid"] == search["tid"] + 1
        assert search["ts"] <= phase1["ts"]
        assert (phase1["ts"] + phase1["dur"]
                <= search["ts"] + search["dur"] + 1.0)  # µs slack
