"""CLI observability flags: --trace, --trace-format, --metrics."""

import json

import pytest

from repro.cli import main
from repro.datasets.loader import save_points_csv
from repro.datasets.synthetic import synthetic_instance
from repro.engine import STAGES
from repro.obs.trace import TRACER


@pytest.fixture
def instance_files(tmp_path):
    customers, sites = synthetic_instance(60, 6, "uniform", seed=23)
    c_path = tmp_path / "customers.csv"
    s_path = tmp_path / "sites.csv"
    save_points_csv(c_path, customers)
    save_points_csv(s_path, sites)
    return str(c_path), str(s_path)


@pytest.fixture(autouse=True)
def _reset_tracer():
    yield
    TRACER.reset(enabled=False)


class TestTraceFlag:
    def test_chrome_trace_covers_pipeline_stages(self, instance_files,
                                                 tmp_path, capsys):
        customers, sites = instance_files
        trace_path = tmp_path / "trace.json"
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--trace", str(trace_path)])
        assert code == 0
        assert "trace (chrome" in capsys.readouterr().out
        events = json.loads(trace_path.read_text())
        assert isinstance(events, list)
        names = {e["name"] for e in events if e.get("ph") == "X"}
        for stage in STAGES:
            assert f"pipeline/{stage}" in names
        assert "phase1/search" in names

    def test_jsonl_format(self, instance_files, tmp_path, capsys):
        customers, sites = instance_files
        trace_path = tmp_path / "trace.jsonl"
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--trace", str(trace_path),
                     "--trace-format", "jsonl"])
        assert code == 0
        assert "trace (jsonl" in capsys.readouterr().out
        records = [json.loads(line)
                   for line in trace_path.read_text().splitlines()]
        assert any(r["name"] == "pipeline/search" for r in records)

    def test_tracer_disabled_after_solve(self, instance_files, tmp_path):
        customers, sites = instance_files
        main(["solve", "--customers", customers, "--sites", sites,
              "--trace", str(tmp_path / "t.json")])
        assert not TRACER.enabled

    def test_no_trace_flag_records_nothing(self, instance_files):
        customers, sites = instance_files
        main(["solve", "--customers", customers, "--sites", sites])
        assert not TRACER.enabled
        assert TRACER.finished() == ()


class TestMetricsFlag:
    def test_metrics_json_written(self, instance_files, tmp_path, capsys):
        customers, sites = instance_files
        metrics_path = tmp_path / "metrics.json"
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--metrics", str(metrics_path)])
        assert code == 0
        assert "metrics written" in capsys.readouterr().out
        doc = json.loads(metrics_path.read_text())
        assert doc["counters"]["generated"] > 0
        assert doc["counters"]["kernel_batches"] > 0
        assert doc["meta"]["solver"] == "maxfirst"

    def test_trace_and_metrics_with_sharded_solver(self, instance_files,
                                                   tmp_path):
        customers, sites = instance_files
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(["solve", "--customers", customers, "--sites", sites,
                     "--solver", "maxfirst-sharded", "--shards", "2",
                     "--shard-mode", "serial",
                     "--trace", str(trace_path),
                     "--metrics", str(metrics_path)])
        assert code == 0
        names = {e["name"]
                 for e in json.loads(trace_path.read_text())
                 if e.get("ph") == "X"}
        # Serial mode runs every tile on one unified frontier span;
        # tile-wise/pool runs emit per-tile shard/tile<N> spans instead.
        assert "shard/unified" in names
        doc = json.loads(metrics_path.read_text())
        assert doc["counters"]["shard_tasks"] >= 1
