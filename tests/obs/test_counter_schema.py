"""Counter-key schema stability across solvers, degenerate instances,
and the checked-in BENCH_*.json artifacts (ISSUE 4 bugfix satellite:
degenerate no-NLC instances used to leave ``RunReport.counters``
empty on some solver paths)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.core.quadrant import MAXFIRST_COUNTER_KEYS, MaxFirstStats
from repro.datasets.synthetic import synthetic_instance
from repro.engine import run_pipeline, solver_names
from repro.obs.metrics import COUNTER_KEYS

_REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def normal_problem():
    customers, sites = synthetic_instance(80, 8, "uniform", seed=11)
    return MaxBRkNNProblem(customers, sites, k=1)


@pytest.fixture(scope="module")
def degenerate_problem():
    """All-zero weights: no NLC survives, solvers short-circuit."""
    customers, sites = synthetic_instance(80, 8, "uniform", seed=11)
    return MaxBRkNNProblem(customers, sites, k=1,
                           weights=np.zeros(customers.shape[0]))


class TestStableKeySets:
    @pytest.mark.parametrize("solver", solver_names())
    def test_normal_and_degenerate_share_keys(self, solver,
                                              normal_problem,
                                              degenerate_problem):
        _, normal = run_pipeline(solver, normal_problem)
        _, degenerate = run_pipeline(solver, degenerate_problem)
        assert list(normal.counters) == list(degenerate.counters)
        assert all(v == 0 for v in degenerate.counters.values())

    @pytest.mark.parametrize("solver", solver_names())
    def test_registry_keys_present_on_every_solver(self, solver,
                                                   normal_problem):
        _, report = run_pipeline(solver, normal_problem)
        assert set(COUNTER_KEYS) <= set(report.counters)

    def test_maxfirst_reports_full_stats_schema(self, normal_problem):
        _, report = run_pipeline("maxfirst", normal_problem)
        assert set(MAXFIRST_COUNTER_KEYS) <= set(report.counters)
        # Solver keys lead, in MaxFirstStats order, so existing report
        # consumers (fig13, ablations) keep their key positions.
        assert list(report.counters)[:len(MAXFIRST_COUNTER_KEYS)] \
            == list(MAXFIRST_COUNTER_KEYS)

    def test_maxfirst_keys_tuple_matches_stats_dataclass(self):
        assert MAXFIRST_COUNTER_KEYS \
            == tuple(MaxFirstStats().as_dict().keys())

    def test_serial_sharded_matches_maxfirst_schema(self, normal_problem):
        _, single = run_pipeline("maxfirst", normal_problem)
        _, sharded = run_pipeline("maxfirst-sharded", normal_problem,
                                  shards=2, mode="serial")
        assert list(single.counters) == list(sharded.counters)


class TestBenchArtifacts:
    def test_bench_phase1_rows_share_maxfirst_stats_schema(self):
        path = _REPO_ROOT / "BENCH_phase1.json"
        if not path.exists():
            pytest.skip("BENCH_phase1.json not present")
        doc = json.loads(path.read_text())
        rows = [row for row in doc.get("rows", []) if "stats" in row]
        assert rows, "BENCH_phase1.json rows carry no stats dicts"
        for row in rows:
            assert tuple(row["stats"].keys()) == MAXFIRST_COUNTER_KEYS

    def test_gate_baseline_counters_are_known(self):
        from repro.obs.gate import GATED_COUNTERS, SERVE_GATED_COUNTERS

        path = _REPO_ROOT / "bench-baselines" / "counters_tiny.json"
        if not path.exists():
            pytest.skip("gate baseline not present")
        counters = json.loads(path.read_text())["counters"]
        known = set(MAXFIRST_COUNTER_KEYS) | set(COUNTER_KEYS)
        for key in counters:
            arm, _, name = key.rpartition("/")
            assert arm, f"flat key {key!r} lacks an arm prefix"
            assert name in known
            if arm.startswith("serve_"):
                assert name in SERVE_GATED_COUNTERS
            else:
                assert name in GATED_COUNTERS
