"""Span tracer semantics: nesting, exception safety, no-op mode, ingest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import SpanRecord, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestNesting:
    def test_depths_follow_lexical_nesting(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["a"].depth == 0
        assert by_name["b"].depth == 1
        assert by_name["c"].depth == 2
        assert by_name["d"].depth == 1

    def test_children_recorded_before_parents(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.finished()]
        assert names == ["inner", "outer"]

    def test_child_interval_inside_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished()
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-9

    def test_sibling_spans_share_depth(self, tracer):
        for name in ("x", "y", "z"):
            with tracer.span(name):
                pass
        assert [s.depth for s in tracer.finished()] == [0, 0, 0]

    @given(st.lists(st.integers(min_value=0, max_value=6),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_random_nesting_shapes_restore_depth(self, pushes):
        # Open a random tree of spans via an explicit stack of context
        # managers; whatever the shape, the tracer's depth must return
        # to zero and every record's depth must equal its nesting level.
        t = Tracer()
        t.enable()
        stack = []
        for target in pushes:
            while len(stack) > target:
                stack.pop().__exit__(None, None, None)
            span = t.span(f"d{len(stack)}")
            span.__enter__()
            stack.append(span)
        while stack:
            stack.pop().__exit__(None, None, None)
        assert t._depth == 0
        for record in t.finished():
            assert record.name == f"d{record.depth}"


class TestExceptionSafety:
    def test_span_records_on_raise(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (record,) = tracer.finished()
        assert record.name == "boom"
        assert record.dur >= 0.0

    def test_depth_restored_after_raise(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("a"):
                with tracer.span("b"):
                    raise RuntimeError
        with tracer.span("after"):
            pass
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["after"].depth == 0

    def test_exceptions_propagate(self, tracer):
        # __exit__ must not swallow: the span is instrumentation only.
        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            with tracer.span("s"):
                raise Boom

    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_mixed_success_failure_chains(self, raising):
        t = Tracer()
        t.enable()
        for i, should_raise in enumerate(raising):
            if should_raise:
                with pytest.raises(KeyError):
                    with t.span(f"s{i}"):
                        raise KeyError(i)
            else:
                with t.span(f"s{i}"):
                    pass
        records = t.finished()
        assert len(records) == len(raising)
        assert all(r.depth == 0 for r in records)
        assert t._depth == 0


class TestNoopMode:
    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("invisible"):
            pass
        assert t.finished() == ()

    def test_disabled_span_is_shared_singleton(self):
        t = Tracer()
        assert t.span("a") is t.span("b")

    def test_reenable_resumes_recording(self):
        t = Tracer()
        t.enable()
        with t.span("one"):
            pass
        t.disable()
        with t.span("hidden"):
            pass
        t.enable()
        with t.span("two"):
            pass
        assert [s.name for s in t.finished()] == ["one", "two"]

    def test_reset_clears_records_and_depth(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset(enabled=True)
        assert tracer.finished() == ()
        with tracer.span("y"):
            pass
        assert [s.name for s in tracer.finished()] == ["y"]


class TestIngest:
    def test_ingest_applies_pid_and_offset(self, tracer):
        worker = Tracer()
        worker.enable()
        with worker.span("tile"):
            pass
        tracer.ingest(worker.drain(), pid=3, ts_offset=1.5)
        (record,) = tracer.finished()
        assert record.pid == 3
        assert record.ts >= 1.5
        assert record.name == "tile"

    def test_ingest_accepts_dicts(self, tracer):
        payload = SpanRecord(name="t", ts=0.0, dur=0.1, depth=0).as_dict()
        tracer.ingest([payload], pid=7)
        (record,) = tracer.finished()
        assert record.pid == 7
        assert record.dur == pytest.approx(0.1)

    def test_drain_empties_the_tracer(self, tracer):
        with tracer.span("x"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.finished() == ()

    def test_record_dict_round_trip(self):
        record = SpanRecord(name="n", ts=1.0, dur=2.0, depth=3, pid=4,
                            args={"k": 5})
        assert SpanRecord.from_dict(record.as_dict()) == record


class TestDecorator:
    def test_traced_wraps_and_records(self, monkeypatch):
        import repro.obs.trace as trace_mod

        trace_mod.TRACER.reset(enabled=True)
        try:
            @trace_mod.traced("custom/name")
            def work(x):
                return x + 1

            assert work(1) == 2
            assert [s.name for s in trace_mod.TRACER.finished()] \
                == ["custom/name"]
        finally:
            trace_mod.TRACER.reset(enabled=False)

    def test_traced_default_name_and_disabled_passthrough(self):
        from repro.obs.trace import TRACER, traced

        TRACER.reset(enabled=False)

        @traced()
        def fn():
            return 42

        assert fn() == 42
        assert TRACER.finished() == ()
        assert fn.__name__ == "fn"
