"""Cross-process counter merging: a tile-wise in-process run and a
one-worker pool run execute the same schedule and must report identical
merged work counters (acceptance criterion; transport counters are
mode-dependent by design and compared separately), and counters must
flow to the parent registry exactly once in every mode."""

import os

import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import run_pipeline
from repro.obs import metrics as obs_metrics

#: ``REPRO_STORE`` changes which transport the pipeline publishes the
#: NLC store through; the pool transport defaults to ``shm``.
_ENV_STORE = os.environ.get("REPRO_STORE")
_POOL_STORE = _ENV_STORE or "shm"


@pytest.fixture(scope="module")
def problem():
    customers, sites = synthetic_instance(300, 16, "uniform", seed=11)
    return MaxBRkNNProblem(customers, sites, k=1)


def _pool_counters(problem, shards):
    # max_workers=1 reproduces the tile-wise schedule (and hence the
    # seed-cover pruning) exactly; more workers keep results
    # bit-identical but shift work counters.
    try:
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=shards, mode="pool",
                                 max_workers=1)
    except RuntimeError as exc:
        pytest.skip(f"pool-mode sharding unavailable here: {exc}")
    return report.counters


def _work_only(counters):
    return {key: value for key, value in counters.items()
            if key not in obs_metrics.TRANSPORT_COUNTER_KEYS}


class TestTilewiseVsPool:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_identical_merged_counters(self, problem, shards):
        _, tilewise = run_pipeline("maxfirst-sharded", problem,
                                   shards=shards, mode="tiles")
        pool = _pool_counters(problem, shards)
        assert _work_only(tilewise.counters) == _work_only(pool)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_transport_counters_by_mode(self, problem, shards):
        for mode in ("serial", "tiles"):
            _, report = run_pipeline("maxfirst-sharded", problem,
                                     shards=shards, mode=mode)
            # In-process execution never touches the pool transport.
            # (With REPRO_STORE=shm the pipeline itself publishes and
            # attaches the store, so even in-process modes map bytes.)
            for key in obs_metrics.TRANSPORT_COUNTER_KEYS:
                if key == "shm_bytes_mapped" and _ENV_STORE == "shm":
                    continue
                assert report.counters[key] == 0, key
        pool = _pool_counters(problem, shards)
        # Pool execution publishes the NLC store once and queues one
        # task per tile; nothing is stolen with a single worker, and
        # every worker tile attaches its row window as a slice view.
        if _POOL_STORE == "shm":
            assert pool["shm_bytes_mapped"] > 0
        else:
            assert pool["shm_bytes_mapped"] == 0
        assert pool["store_slice_views"] >= 1
        assert pool["pool_tasks"] == report.counters["shard_tasks"]
        assert pool["tiles_stolen"] == 0

    def test_sharding_layer_counters_recorded(self, problem):
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=4, mode="serial")
        # 4 shards round to a full 2x2 grid; empty tiles are dropped at
        # planning time, so the task count is bounded by the grid.
        assert 1 <= report.counters["shard_tasks"] <= 4
        # Halo inclusion assigns every NLC to at least the tile(s) it
        # reaches, so assignments >= tasks on any non-trivial instance.
        assert report.counters["halo_assignments"] \
            >= report.counters["shard_tasks"]


class TestSingleFlow:
    @pytest.mark.parametrize("mode", ["serial", "tiles"])
    def test_tile_counts_enter_registry_exactly_once(self, problem, mode):
        """The shard counters reach the parent registry only via merge():
        the pipeline's delta equals the per-tile sums, not double."""
        before = obs_metrics.REGISTRY.snapshot()
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=2, mode=mode)
        delta = obs_metrics.REGISTRY.delta_since(before)
        assert delta.get("kernel_batches", 0) \
            == report.counters["kernel_batches"]

    def test_sharded_kernel_work_matches_outputs(self, problem):
        from repro.engine.sharded import ShardedMaxFirst
        from repro.core.nlc import build_nlcs

        solver = ShardedMaxFirst(shards=2, mode="serial")
        nlcs = build_nlcs(problem)
        plan = solver.plan(nlcs)
        outputs = solver.execute(nlcs, plan)
        per_tile = sum(out.obs_counters.get("kernel_batches", 0)
                       for out in outputs)
        before = obs_metrics.REGISTRY.snapshot()
        solver.merge(nlcs, outputs)
        delta = obs_metrics.REGISTRY.delta_since(before)
        assert delta.get("kernel_batches", 0) == per_tile
