"""Cross-process counter merging: serial and process sharded runs must
report identical merged counters (acceptance criterion), and counters
must flow to the parent registry exactly once."""

import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import run_pipeline
from repro.obs import metrics as obs_metrics


@pytest.fixture(scope="module")
def problem():
    customers, sites = synthetic_instance(300, 16, "uniform", seed=11)
    return MaxBRkNNProblem(customers, sites, k=1)


def _process_counters(problem, shards):
    try:
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=shards, mode="process")
    except RuntimeError as exc:
        pytest.skip(f"process-mode sharding unavailable here: {exc}")
    return report.counters


class TestSerialVsProcess:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_identical_merged_counters(self, problem, shards):
        _, serial = run_pipeline("maxfirst-sharded", problem,
                                 shards=shards, mode="serial")
        process = _process_counters(problem, shards)
        assert serial.counters == process

    def test_sharding_layer_counters_recorded(self, problem):
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=4, mode="serial")
        # 4 shards round to a full 2x2 grid; empty tiles are dropped at
        # planning time, so the task count is bounded by the grid.
        assert 1 <= report.counters["shard_tasks"] <= 4
        # Halo inclusion assigns every NLC to at least the tile(s) it
        # reaches, so assignments >= tasks on any non-trivial instance.
        assert report.counters["halo_assignments"] \
            >= report.counters["shard_tasks"]


class TestSingleFlow:
    def test_tile_counts_enter_registry_exactly_once(self, problem):
        """The shard counters reach the parent registry only via merge():
        the pipeline's delta equals the per-tile sums, not double."""
        before = obs_metrics.REGISTRY.snapshot()
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=2, mode="serial")
        delta = obs_metrics.REGISTRY.delta_since(before)
        assert delta.get("kernel_batches", 0) \
            == report.counters["kernel_batches"]

    def test_sharded_kernel_work_matches_outputs(self, problem):
        from repro.engine.sharded import ShardedMaxFirst
        from repro.core.nlc import build_nlcs

        solver = ShardedMaxFirst(shards=2, mode="serial")
        nlcs = build_nlcs(problem)
        plan = solver.plan(nlcs)
        outputs = solver.execute(nlcs, plan)
        per_tile = sum(out.obs_counters.get("kernel_batches", 0)
                       for out in outputs)
        before = obs_metrics.REGISTRY.snapshot()
        solver.merge(nlcs, outputs)
        delta = obs_metrics.REGISTRY.delta_since(before)
        assert delta.get("kernel_batches", 0) == per_tile
