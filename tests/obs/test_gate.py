"""The counter perf gate: band comparison, baseline files, CLI tool.

The acceptance criterion "fails on a seeded counter regression" is
demonstrated end to end: a baseline perturbed below the current counters
makes ``python -m repro.obs.gate`` exit non-zero.
"""

import json

import pytest

from repro.obs.gate import (DEFAULT_BAND, GATED_COUNTERS,
                            SERVE_GATED_COUNTERS, collect_counters,
                            collect_serve_counters, compare, main)


@pytest.fixture(scope="module")
def tiny_counters():
    """One real gate collection run (module-scoped: ~seconds)."""
    return collect_counters("tiny")


@pytest.fixture(scope="module")
def serve_counters():
    """One scripted serve-workload run (module-scoped)."""
    return collect_serve_counters("tiny")


class TestCompare:
    BASE = {"fig13_uniform/generated": 1000, "fig13_uniform/splits": 200}

    def test_identical_passes(self):
        ok, messages = compare(dict(self.BASE), self.BASE)
        assert ok
        assert messages == []

    def test_within_band_passes(self):
        current = {"fig13_uniform/generated": 1050,
                   "fig13_uniform/splits": 195}
        ok, messages = compare(current, self.BASE)
        assert ok

    def test_regression_fails(self):
        current = {"fig13_uniform/generated": 1200,
                   "fig13_uniform/splits": 200}
        ok, messages = compare(current, self.BASE)
        assert not ok
        assert any("FAIL" in m and "generated" in m for m in messages)

    def test_improvement_passes_with_hint(self):
        current = {"fig13_uniform/generated": 800,
                   "fig13_uniform/splits": 200}
        ok, messages = compare(current, self.BASE)
        assert ok
        assert any("update the baseline" in m for m in messages)

    def test_missing_baseline_key_fails(self):
        current = {"fig13_uniform/generated": 1000}
        ok, messages = compare(current, self.BASE)
        assert not ok

    def test_unexpected_current_key_fails(self):
        current = dict(self.BASE, extra=1)
        ok, _ = compare(current, self.BASE)
        assert not ok

    def test_band_boundaries_are_inclusive(self):
        base = {"k": 100}
        assert compare({"k": 110}, base, band=0.10)[0]
        assert not compare({"k": 111}, base, band=0.10)[0]
        ok, messages = compare({"k": 90}, base, band=0.10)
        assert ok and not any("improved" in m for m in messages)
        ok, messages = compare({"k": 89}, base, band=0.10)
        assert ok and any("improved" in m for m in messages)


class TestCollect:
    def test_arms_cover_fig11_sweep_and_fig13(self, tiny_counters):
        from repro.bench.config import get_profile

        profile = get_profile("tiny")
        arms = {key.rsplit("/", 1)[0] for key in tiny_counters}
        for distribution in ("uniform", "normal"):
            assert f"fig13_{distribution}" in arms
            for n_sites in profile.sites_sweep:
                assert f"fig11_{distribution}/sites={n_sites}" in arms
        # Every arm reports every gated counter.
        for arm in arms:
            for name in GATED_COUNTERS:
                assert f"{arm}/{name}" in tiny_counters

    def test_counters_are_deterministic(self, tiny_counters):
        assert collect_counters("tiny") == tiny_counters

    def test_real_work_was_counted(self, tiny_counters):
        assert tiny_counters["fig13_uniform/generated"] > 0
        assert tiny_counters["fig13_uniform/kernel_batches"] > 0


class TestCollectServe:
    def test_serve_arm_reports_every_gated_counter(self, serve_counters):
        assert set(serve_counters) == {
            f"serve_tiny/{name}" for name in SERVE_GATED_COUNTERS}

    def test_serve_counters_are_deterministic(self, serve_counters):
        assert collect_serve_counters("tiny") == serve_counters

    def test_real_requests_were_counted(self, serve_counters):
        assert serve_counters["serve_tiny/serve_requests"] > 0
        assert serve_counters["serve_tiny/serve_batches"] > 0
        # The gate arm runs pooled, so submissions must be non-zero —
        # a zero here means the pool path silently fell back.
        assert serve_counters["serve_tiny/serve_pool_submissions"] > 0

    def test_serve_collection_does_not_leak_into_registry(self):
        from repro.obs import metrics as _obs_metrics

        before = _obs_metrics.REGISTRY.snapshot()
        collect_serve_counters("tiny")
        after = _obs_metrics.REGISTRY.snapshot()
        for name in SERVE_GATED_COUNTERS:
            assert after.get(name, 0) == before.get(name, 0)


class TestMain:
    def test_write_then_pass(self, tiny_counters, tmp_path, capsys):
        baseline = tmp_path / "counters_tiny.json"
        assert main(["--scale", "tiny",
                     "--write-baseline", str(baseline)]) == 0
        assert main(["--scale", "tiny", "--baseline", str(baseline)]) == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_seeded_regression_fails(self, tiny_counters, tmp_path, capsys):
        # Perturb the blessed baseline downwards: the (unchanged) current
        # counters now read as a >10% regression and the gate must fail.
        perturbed = {
            key: max(1, int(value * 0.5))
            for key, value in tiny_counters.items()
        }
        baseline = tmp_path / "perturbed.json"
        baseline.write_text(json.dumps({"counters": perturbed}))
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"counters": tiny_counters}))
        code = main(["--baseline", str(baseline),
                     "--current", str(current)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_improvement_prints_update_hint(self, tiny_counters, tmp_path,
                                            capsys):
        inflated = {key: value * 2 for key, value in tiny_counters.items()}
        baseline = tmp_path / "inflated.json"
        baseline.write_text(json.dumps({"counters": inflated}))
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"counters": tiny_counters}))
        assert main(["--baseline", str(baseline),
                     "--current", str(current)]) == 0
        assert "update the baseline" in capsys.readouterr().out

    def test_missing_baseline_file_fails(self, tmp_path, tiny_counters,
                                         capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"counters": tiny_counters}))
        code = main(["--baseline", str(tmp_path / "nope.json"),
                     "--current", str(current)])
        assert code == 1

    def test_out_writes_metrics_artifact(self, tiny_counters, tmp_path):
        out = tmp_path / "metrics.json"
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"counters": tiny_counters}))
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"counters": tiny_counters}))
        assert main(["--baseline", str(baseline),
                     "--current", str(current), "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["counters"] == tiny_counters


class TestCheckedInBaseline:
    def test_repo_baseline_matches_current_run(self, tiny_counters,
                                               serve_counters):
        """The committed baseline must pass against a fresh tiny run —
        the same check the CI perf-gate job performs on main."""
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[2] \
            / "bench-baselines" / "counters_tiny.json"
        assert baseline_path.exists(), (
            "bench-baselines/counters_tiny.json is missing; regenerate "
            "with: PYTHONPATH=src python -m repro.obs.gate --scale tiny "
            "--write-baseline bench-baselines/counters_tiny.json")
        baseline = json.loads(baseline_path.read_text())["counters"]
        current = {**tiny_counters, **serve_counters}
        ok, messages = compare(current, baseline, band=DEFAULT_BAND)
        assert ok, messages
