"""Disabled-tracer overhead: the no-op mode must be effectively free.

Two layers of assertion:

* a microbenchmark bounds the per-call cost of a disabled ``span()``;
* a budget check multiplies that per-call cost by the number of span
  entries a real fig11-tiny-shaped solve records when tracing is ON,
  and asserts the product stays under 3% of the solve's untraced wall
  time — the acceptance criterion, phrased deterministically instead
  of as a flaky wall-clock A/B on shared CI runners.
"""

import time

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import run_pipeline
from repro.obs.trace import TRACER, Tracer

# Generous CI bound: a disabled span() is one attribute check plus the
# shared no-op context manager (~100ns on any modern interpreter).
_MAX_NOOP_SECONDS_PER_CALL = 5e-6


def _noop_cost_per_call(calls: int = 50_000) -> float:
    tracer = Tracer()  # fresh, disabled
    span = tracer.span
    # Baseline: the same loop without the span, so interpreter loop
    # overhead cancels out of the estimate.
    t0 = time.perf_counter()
    for _ in range(calls):
        pass
    baseline = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(calls):
        with span("x"):
            pass
    elapsed = time.perf_counter() - t0
    return max(elapsed - baseline, 0.0) / calls


class TestNoopOverhead:
    def test_disabled_span_call_is_cheap(self):
        # Best of three trials: guards against a scheduler hiccup
        # inflating a single measurement on a busy runner.
        per_call = min(_noop_cost_per_call() for _ in range(3))
        assert per_call < _MAX_NOOP_SECONDS_PER_CALL

    def test_traced_span_count_times_noop_cost_under_3pct(self):
        customers, sites = synthetic_instance(800, 40, "uniform", seed=11)
        problem = MaxBRkNNProblem(customers, sites, k=1)

        # Untraced solve wall time (tracing disabled — the default).
        assert not TRACER.enabled
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            run_pipeline("maxfirst", problem)
            best = min(best, time.perf_counter() - t0)

        # Count the span call sites the same solve actually passes.
        TRACER.reset(enabled=True)
        try:
            run_pipeline("maxfirst", problem)
        finally:
            TRACER.disable()
        n_spans = len(TRACER.finished())
        TRACER.reset(enabled=False)

        per_call = min(_noop_cost_per_call() for _ in range(3))
        overhead = n_spans * per_call
        assert overhead < 0.03 * best, (
            f"{n_spans} spans x {per_call:.2e}s = {overhead:.2e}s "
            f"exceeds 3% of the {best:.3f}s untraced solve")
