"""Metrics registry semantics: handles, deltas, isolation, merging."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import COUNTER_KEYS, GAUGE_KEYS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_add_accumulates(self, registry):
        c = registry.counter("x")
        c.add()
        c.add(4)
        assert registry.snapshot() == {"x": 5}

    def test_handles_share_the_named_counter(self, registry):
        a = registry.counter("x")
        b = registry.counter("x")
        a.add(1)
        b.add(2)
        assert registry.snapshot() == {"x": 3}

    def test_delta_since_reports_only_increments(self, registry):
        c = registry.counter("x")
        d = registry.counter("y")
        c.add(10)
        before = registry.snapshot()
        c.add(5)
        d.add(1)
        assert registry.delta_since(before) == {"x": 5, "y": 1}

    def test_snapshot_is_a_copy(self, registry):
        registry.counter("x").add()
        snap = registry.snapshot()
        registry.counter("x").add()
        assert snap == {"x": 1}

    def test_zeroed_counters_covers_all_keys(self):
        zeroed = obs_metrics.zeroed_counters()
        assert tuple(zeroed) == COUNTER_KEYS
        assert set(zeroed.values()) == {0}


class TestGauges:
    def test_set_and_observe_max(self, registry):
        g = registry.gauge("rss")
        g.set(10.0)
        g.observe_max(5.0)   # below: keeps 10
        g.observe_max(20.0)  # above: replaces
        assert registry.gauges_snapshot() == {"rss": 20.0}

    def test_merge_gauges_max_keeps_high_water(self, registry):
        registry.gauge("a").set(3.0)
        registry.merge_gauges_max({"a": 1.0, "b": 2.0})
        assert registry.gauges_snapshot() == {"a": 3.0, "b": 2.0}


class TestIsolation:
    def test_isolated_captures_delta_and_restores(self, registry):
        c = registry.counter("x")
        c.add(7)
        with registry.isolated() as box:
            c.add(3)  # same handle keeps working inside the block
            registry.gauge("g").set(1.5)
        assert box["counters"] == {"x": 3}
        assert box["gauges"] == {"g": 1.5}
        # Outer values untouched; the isolated counts never leaked.
        assert registry.snapshot() == {"x": 7}
        assert registry.gauges_snapshot() == {}

    def test_isolated_restores_on_exception(self, registry):
        c = registry.counter("x")
        c.add(1)
        with pytest.raises(ValueError):
            with registry.isolated() as box:
                c.add(99)
                raise ValueError
        assert registry.snapshot() == {"x": 1}
        assert box["counters"] == {"x": 99}

    def test_nested_isolation(self, registry):
        c = registry.counter("x")
        with registry.isolated() as outer:
            c.add(1)
            with registry.isolated() as inner:
                c.add(10)
            c.add(2)
        assert inner["counters"] == {"x": 10}
        assert outer["counters"] == {"x": 3}
        assert registry.snapshot() == {}

    def test_merge_counts_adds(self, registry):
        registry.counter("x").add(1)
        registry.merge_counts({"x": 4, "y": 2})
        assert registry.snapshot() == {"x": 5, "y": 2}


class TestModuleRegistry:
    def test_module_convenience_handles_hit_global_registry(self):
        before = obs_metrics.REGISTRY.snapshot()
        with obs_metrics.REGISTRY.isolated() as box:
            obs_metrics.counter("test_only_counter").add(2)
        assert box["counters"] == {"test_only_counter": 2}
        assert obs_metrics.REGISTRY.snapshot() == before

    def test_key_tuples_are_disjoint(self):
        assert not set(COUNTER_KEYS) & set(GAUGE_KEYS)
