"""Tests for repro.datasets.realworld (UX/NE substitutes)."""

import numpy as np
import pytest

from repro.datasets.realworld import (NE_BOUNDS, NE_CARDINALITY, UX_BOUNDS,
                                      UX_CARDINALITY, make_ne, make_ux,
                                      split_sites)


class TestCardinalities:
    def test_paper_table3_sizes(self):
        """Table III: UX has 19,499 points, NE has 123,593."""
        assert UX_CARDINALITY == 19_499
        assert NE_CARDINALITY == 123_593
        assert make_ux().shape == (UX_CARDINALITY, 2)

    def test_subsampling(self):
        pts = make_ux(1000)
        assert pts.shape == (1000, 2)
        with pytest.raises(ValueError):
            make_ux(0)

    def test_subsample_is_subset(self):
        full = make_ux()
        sub = make_ux(500)
        full_set = {tuple(p) for p in full}
        assert all(tuple(p) in full_set for p in sub)

    def test_deterministic(self):
        np.testing.assert_array_equal(make_ux(2000), make_ux(2000))
        np.testing.assert_array_equal(make_ne(2000), make_ne(2000))


class TestGeography:
    def test_within_bounds(self):
        ux = make_ux(3000)
        assert (ux[:, 0] >= UX_BOUNDS.xmin).all()
        assert (ux[:, 0] <= UX_BOUNDS.xmax).all()
        ne = make_ne(3000)
        assert (ne[:, 1] >= NE_BOUNDS.ymin).all()
        assert (ne[:, 1] <= NE_BOUNDS.ymax).all()

    def test_ne_denser_than_ux(self):
        """NE is metropolitan-dense; UX is continental-sparse — the skew
        contrast Figure 14 depends on."""
        ux = make_ux(5000)
        ne = make_ne(5000)
        ux_area = UX_BOUNDS.area
        ne_area = NE_BOUNDS.area
        # Same sample size over a much smaller extent: higher density.
        assert (5000 / ne_area) > 5 * (5000 / ux_area)

    def test_clustered_structure(self):
        pts = make_ne(8000)
        hist, _, _ = np.histogram2d(
            pts[:, 0], pts[:, 1], bins=12,
            range=[[NE_BOUNDS.xmin, NE_BOUNDS.xmax],
                   [NE_BOUNDS.ymin, NE_BOUNDS.ymax]])
        occupancy = np.sort(hist.ravel())[::-1]
        # Top 10% of cells hold a disproportionate share of the points
        # (uniform data would put ~10% there).
        top = occupancy[: max(1, len(occupancy) // 10)].sum()
        assert top > 0.3 * len(pts)


class TestSplitSites:
    def test_partition(self):
        pts = make_ux(1000)
        customers, sites = split_sites(pts, 100, seed=5)
        assert sites.shape == (100, 2)
        assert customers.shape == (900, 2)
        combined = {tuple(p) for p in np.vstack((customers, sites))}
        assert combined == {tuple(p) for p in pts}

    def test_validation(self):
        pts = make_ux(100)
        with pytest.raises(ValueError):
            split_sites(pts, 0)
        with pytest.raises(ValueError):
            split_sites(pts, 100)

    def test_deterministic_per_seed(self):
        pts = make_ux(500)
        a = split_sites(pts, 50, seed=1)
        b = split_sites(pts, 50, seed=1)
        np.testing.assert_array_equal(a[1], b[1])
        c = split_sites(pts, 50, seed=2)
        assert not np.array_equal(a[1], c[1])
