"""Tests for repro.datasets.loader (CSV IO)."""

import numpy as np
import pytest

from repro.datasets.loader import load_points_csv, save_points_csv


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        pts = np.array([[0.1, 0.2], [3.5, -1.25], [1e-9, 1e9]])
        path = tmp_path / "points.csv"
        save_points_csv(path, pts)
        loaded = load_points_csv(path)
        np.testing.assert_allclose(loaded, pts)

    def test_no_header(self, tmp_path):
        pts = np.array([[1.0, 2.0]])
        path = tmp_path / "raw.csv"
        save_points_csv(path, pts, header=False)
        assert load_points_csv(path).tolist() == [[1.0, 2.0]]

    def test_header_detected(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("x,y\n1.5,2.5\n")
        assert load_points_csv(path).tolist() == [[1.5, 2.5]]


class TestValidation:
    def test_save_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_points_csv(tmp_path / "bad.csv", np.zeros((3, 3)))

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_points_csv(path)

    def test_load_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("x,y\n")
        with pytest.raises(ValueError):
            load_points_csv(path)

    def test_load_non_numeric_data_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nfoo,bar\n")
        with pytest.raises(ValueError):
            load_points_csv(path)

    def test_load_too_few_columns(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("1.0\n")
        with pytest.raises(ValueError):
            load_points_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("1.0,2.0\n\n3.0,4.0\n")
        assert load_points_csv(path).shape == (2, 2)
