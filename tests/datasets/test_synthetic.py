"""Tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets.synthetic import (UNIT_SQUARE, clustered_points,
                                      normal_points, normal_points_chunks,
                                      striped_uniform_chunks,
                                      synthetic_instance, uniform_points,
                                      uniform_points_chunks)
from repro.geometry.rect import Rect


class TestUniform:
    def test_shape_and_bounds(self):
        pts = uniform_points(500, seed=1)
        assert pts.shape == (500, 2)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_deterministic_per_seed(self):
        np.testing.assert_array_equal(uniform_points(50, seed=7),
                                      uniform_points(50, seed=7))
        assert not np.array_equal(uniform_points(50, seed=7),
                                  uniform_points(50, seed=8))

    def test_custom_bounds(self):
        bounds = Rect(10.0, -5.0, 20.0, 5.0)
        pts = uniform_points(200, seed=2, bounds=bounds)
        assert (pts[:, 0] >= 10).all() and (pts[:, 0] <= 20).all()
        assert (pts[:, 1] >= -5).all() and (pts[:, 1] <= 5).all()

    def test_zero_points(self):
        assert uniform_points(0).shape == (0, 2)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            uniform_points(-1)


class TestNormal:
    def test_clipped_to_bounds(self):
        pts = normal_points(1000, seed=3)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_concentrated_near_center(self):
        pts = normal_points(2000, seed=4, spread=0.1)
        center_dist = np.hypot(pts[:, 0] - 0.5, pts[:, 1] - 0.5)
        # With sigma 0.1, the bulk is well within 0.3 of the centre.
        assert (center_dist < 0.3).mean() > 0.9

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            normal_points(10, spread=0.0)

    def test_denser_than_uniform(self):
        """The property the paper's experiments rely on: normal data has
        a dense core."""
        normal = normal_points(2000, seed=5)
        uniform = uniform_points(2000, seed=5)
        core = Rect(0.4, 0.4, 0.6, 0.6)
        in_core = lambda pts: np.mean(  # noqa: E731
            [(core.contains_point(x, y)) for x, y in pts])
        assert in_core(normal) > 3 * in_core(uniform)


class TestClustered:
    def test_basic(self):
        pts = clustered_points(800, clusters=5, seed=6)
        assert pts.shape == (800, 2)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_points(10, clusters=0)
        with pytest.raises(ValueError):
            clustered_points(10, background_fraction=1.5)
        with pytest.raises(ValueError):
            clustered_points(-5)

    def test_multimodal(self):
        """Multiple density peaks, unlike the single normal bump."""
        pts = clustered_points(4000, clusters=6, seed=7,
                               cluster_spread=0.02,
                               background_fraction=0.0)
        # Count occupied coarse cells: clusters concentrate mass into few.
        hist, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=10,
                                    range=[[0, 1], [0, 1]])
        top_cells = np.sort(hist.ravel())[::-1]
        assert top_cells[:6].sum() > 0.6 * len(pts)


class TestChunkedGenerators:
    """The streaming build's contract: chunked draws concatenate
    bit-identically to the one-shot arrays."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 1000])
    def test_uniform_chunks_concatenate_identically(self, chunk_size):
        chunks = list(uniform_points_chunks(100, chunk_size, seed=13))
        assert all(len(c) <= chunk_size for c in chunks)
        np.testing.assert_array_equal(np.concatenate(chunks),
                                      uniform_points(100, seed=13))

    def test_normal_chunks_concatenate_identically(self):
        chunks = list(normal_points_chunks(123, 40, seed=14, spread=0.2))
        np.testing.assert_array_equal(
            np.concatenate(chunks),
            normal_points(123, seed=14, spread=0.2))

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            list(uniform_points_chunks(-1, 10))
        with pytest.raises(ValueError):
            list(uniform_points_chunks(10, 0))
        with pytest.raises(ValueError):
            list(normal_points_chunks(10, 0))

    def test_striped_chunks_are_x_ordered_strips(self):
        n, strips = 103, 4
        chunks = list(striped_uniform_chunks(n, strips, seed=15))
        assert len(chunks) == strips
        base, extra = divmod(n, strips)
        assert [len(c) for c in chunks] == [
            base + (1 if j < extra else 0) for j in range(strips)]
        width = 1.0 / strips
        for j, chunk in enumerate(chunks):
            assert (chunk[:, 0] >= j * width).all()
            assert (chunk[:, 0] <= (j + 1) * width).all()
        assert sum(len(c) for c in chunks) == n

    def test_striped_strips_regenerate_independently(self):
        whole = list(striped_uniform_chunks(50, 5, seed=16))
        again = list(striped_uniform_chunks(50, 5, seed=16))
        for a, b in zip(whole, again):
            np.testing.assert_array_equal(a, b)


class TestInstance:
    def test_both_sets_generated(self):
        customers, sites = synthetic_instance(300, 20, "uniform", seed=9)
        assert customers.shape == (300, 2)
        assert sites.shape == (20, 2)

    def test_sets_differ(self):
        customers, sites = synthetic_instance(20, 20, "normal", seed=9)
        assert not np.array_equal(customers, sites)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            synthetic_instance(10, 5, "zipf", seed=0)

    def test_deterministic(self):
        a = synthetic_instance(50, 5, "clustered", seed=11)
        b = synthetic_instance(50, 5, "clustered", seed=11)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_unit_square_constant(self):
        assert UNIT_SQUARE == Rect(0.0, 0.0, 1.0, 1.0)
