"""PersistentPool lifecycle and the worker-side bound cell."""

import pytest

from repro.engine import pool as pool_mod
from repro.engine.pool import PersistentPool


class TestLifecycle:
    def test_lazy_start(self):
        pool = PersistentPool(max_workers=1)
        assert not pool.running
        pool.close()
        assert not pool.running

    def test_close_is_idempotent(self):
        pool = PersistentPool(max_workers=1)
        pool.close()
        pool.close()

    def test_start_method_avoids_fork(self):
        # fork would snapshot the parent's registry/tracer mid-solve.
        pool = PersistentPool(max_workers=1)
        assert pool.start_method in ("forkserver", "spawn")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            PersistentPool(max_workers=0)

    def test_discard_resets_executor(self):
        pool = PersistentPool(max_workers=1)
        first = pool.executor()
        assert pool.running
        pool.discard()
        assert not pool.running
        second = pool.executor()
        try:
            assert second is not first
        finally:
            pool.close()


class TestBoundCell:
    def test_reset_bound(self):
        pool = PersistentPool(max_workers=1)
        pool.reset_bound(3.5)
        assert pool._bound.value == 3.5
        pool.reset_bound(0.0)
        assert pool._bound.value == 0.0
        pool.close()

    def test_shared_sync_without_cell_is_local(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_SHARED_BOUND", None)
        assert pool_mod._shared_sync(2.25) == 2.25

    def test_shared_sync_monotonic(self, monkeypatch):
        pool = PersistentPool(max_workers=1)
        monkeypatch.setattr(pool_mod, "_SHARED_BOUND", pool._bound)
        assert pool_mod._shared_sync(1.5) == 1.5
        # A worse local bound reads back the global best.
        assert pool_mod._shared_sync(0.5) == 1.5
        assert pool_mod._shared_sync(2.0) == 2.0
        pool.close()
