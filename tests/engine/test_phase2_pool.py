"""Pooled Phase II: identity with the serial path, counters, fallback.

``MaxFirst(phase2_workers=N)`` runs ``compute_optimal_region`` for the
pending covers in worker processes against the shared-memory NLC store.
Results and the deterministic work counters (``region_grows``,
``phase2_clips``) must be bit-identical to the serial in-process path;
only the transport counter ``phase2_pool_tasks`` may differ.  A broken
pool degrades to serial with identical output.
"""

import numpy as np
import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import pool as pool_mod
from repro.obs import metrics as obs_metrics

DETERMINISTIC = ("region_grows", "phase2_clips",
                 "nlc_build_queries", "nlc_build_chunks")


@pytest.fixture(scope="module")
def problem():
    customers, sites = synthetic_instance(400, 24, "uniform", seed=7)
    return MaxBRkNNProblem(customers, sites, k=3)


def assert_results_identical(a, b):
    assert a.score == b.score
    assert len(a.regions) == len(b.regions)
    for r1, r2 in zip(a.regions, b.regions):
        assert r1.score == r2.score
        assert r1.cover == r2.cover
        assert r1.clipping_count == r2.clipping_count
        assert r1.seed_quadrant == r2.seed_quadrant
        assert (r1.shape is None) == (r2.shape is None)
        if r1.shape is not None:
            assert r1.shape.arcs == r2.shape.arcs


class TestPooledIdentity:
    def test_pooled_matches_serial(self, problem):
        with obs_metrics.REGISTRY.isolated() as serial_box:
            serial = MaxFirst(top_t=6).solve(problem)
        with obs_metrics.REGISTRY.isolated() as pooled_box:
            with MaxFirst(top_t=6, phase2_workers=2) as solver:
                pooled = solver.solve(problem)
        assert_results_identical(serial, pooled)
        for key in DETERMINISTIC:
            assert serial_box["counters"].get(key, 0) \
                == pooled_box["counters"].get(key, 0), key
        assert serial_box["counters"].get("phase2_pool_tasks", 0) == 0
        assert pooled_box["counters"]["phase2_pool_tasks"] > 0

    def test_pool_reused_across_solves(self, problem):
        with MaxFirst(top_t=4, phase2_workers=2) as solver:
            first = solver.solve(problem)
            pool = solver._phase2_pool
            assert isinstance(pool, pool_mod.PersistentPool)
            second = solver.solve(problem)
            assert solver._phase2_pool is pool
        assert_results_identical(first, second)
        assert solver._phase2_pool is None  # context exit closed it

    def test_single_pending_region_stays_serial(self):
        # top_t=1 with a tiny instance: <= 1 pending cover, no pool spin.
        customers, sites = synthetic_instance(40, 4, "uniform", seed=3)
        problem = MaxBRkNNProblem(customers, sites, k=1)
        with obs_metrics.REGISTRY.isolated() as box:
            with MaxFirst(top_t=1, phase2_workers=2) as solver:
                result = solver.solve(problem)
        assert result.regions
        assert box["counters"].get("phase2_pool_tasks", 0) == 0


class TestFallback:
    def test_broken_pool_degrades_to_serial(self, problem, monkeypatch):
        def boom(self, fn, job):
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("injected")

        monkeypatch.setattr(pool_mod.PersistentPool, "submit_call", boom)
        with obs_metrics.REGISTRY.isolated() as serial_box:
            serial = MaxFirst(top_t=6).solve(problem)
        with obs_metrics.REGISTRY.isolated() as pooled_box:
            with MaxFirst(top_t=6, phase2_workers=2) as solver:
                with pytest.warns(RuntimeWarning,
                                  match="Phase II pool failed"):
                    pooled = solver.solve(problem)
                assert solver._phase2_pool is None  # discarded
        assert_results_identical(serial, pooled)
        for key in DETERMINISTIC:
            assert serial_box["counters"].get(key, 0) \
                == pooled_box["counters"].get(key, 0), key

    def test_invalid_phase2_workers_rejected(self):
        with pytest.raises(ValueError, match="phase2_workers"):
            MaxFirst(phase2_workers=0)

    def test_close_without_pool_is_noop(self):
        solver = MaxFirst(phase2_workers=2)
        solver.close()
        solver.close()
