"""Exactness of the out-of-core tier (:mod:`repro.engine.outofcore`).

The acceptance bar: a streamed, window-at-a-time solve over a published
store replays ``ShardedMaxFirst(mode="tiles")`` bit for bit — scores,
region covers, areas, AND the merged Phase I stats — and its chunked
planning scans reproduce the in-RAM planner's space, tiles, windows and
seed bound exactly, whatever the chunk size.
"""

import numpy as np
import pytest

from repro import store as nlc_store
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine.outofcore import plan_streamed, solve_streamed
from repro.engine.sharded import ShardedMaxFirst
from repro.index.circleset import CircleSet

BACKENDS = ("ram", "shm", "memmap")


def _nlcs(k, seed, n_customers=300, n_sites=10):
    customers, sites = synthetic_instance(n_customers, n_sites,
                                          "uniform", seed=seed)
    return build_nlcs(MaxBRkNNProblem(customers, sites, k=k))


def _region_keys(result):
    return sorted(tuple(int(i) for i in r.cover) for r in result.regions)


@pytest.fixture(autouse=True)
def _drop_attachments():
    yield
    nlc_store.detach()


@pytest.fixture()
def published(request):
    """One published store per test, closed afterwards."""
    stores = []

    def _publish(nlcs, backend):
        owner = nlc_store.publish(nlcs, backend)
        stores.append(owner)
        return owner

    yield _publish
    nlc_store.detach()
    for owner in stores:
        owner.close()


def _assert_same_result(streamed, reference, context=""):
    assert streamed.score == reference.score, context
    assert _region_keys(streamed) == _region_keys(reference), context
    assert ([r.area for r in streamed.regions]
            == [r.area for r in reference.regions]), context
    assert streamed.stats.as_dict() == reference.stats.as_dict(), context


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("shards", [2, 5])
class TestStreamedIdentity:
    def test_matches_tiles_mode(self, k, shards, published):
        """Streamed == in-RAM tiles mode, down to the merged stats."""
        nlcs = _nlcs(k, seed=k * 11 + shards)
        tiles = ShardedMaxFirst(shards=shards, mode="tiles").solve_nlcs(nlcs)
        owner = published(nlcs, "memmap")
        streamed = solve_streamed(owner.handle, shards=shards)
        _assert_same_result(streamed, tiles, f"k={k} shards={shards}")


class TestBackendAxis:
    def test_identical_across_backends(self, published):
        nlcs = _nlcs(k=2, seed=29)
        tiles = ShardedMaxFirst(shards=4, mode="tiles").solve_nlcs(nlcs)
        for backend in BACKENDS:
            owner = published(nlcs, backend)
            streamed = solve_streamed(owner.handle, shards=4)
            _assert_same_result(streamed, tiles, backend)


class TestPlanParity:
    @pytest.mark.parametrize("shards", [2, 5])
    def test_plan_matches_inram_planner(self, shards, published):
        nlcs = _nlcs(k=2, seed=17)
        owner = published(nlcs, "memmap")
        streamed = plan_streamed(owner.handle, shards)
        inram = ShardedMaxFirst(shards=shards, mode="tiles").plan(nlcs)
        assert streamed.space == inram.space
        assert streamed.resolution == inram.resolution
        assert streamed.tiles == inram.tiles
        assert streamed.seed_bound == inram.seed_bound
        assert len(streamed.windows) == len(inram.candidates)
        for (lo, hi), cand, count in zip(streamed.windows,
                                         inram.candidates,
                                         streamed.candidate_counts):
            assert lo == int(cand[0])
            assert hi == int(cand[-1]) + 1
            assert count == cand.shape[0]

    def test_chunked_scans_are_chunk_size_invariant(self, published):
        """A 17-row chunked plan equals the single-chunk plan exactly:
        float min/max unions and window accumulation commute."""
        nlcs = _nlcs(k=1, seed=5)
        owner = published(nlcs, "memmap")
        whole = plan_streamed(owner.handle, 4)
        chunked = plan_streamed(owner.handle, 4, chunk_rows=17)
        assert chunked == whole

    def test_precomputed_plan_reused(self, published):
        nlcs = _nlcs(k=1, seed=8)
        owner = published(nlcs, "memmap")
        plan = plan_streamed(owner.handle, 4)
        fresh = solve_streamed(owner.handle, shards=4)
        replay = solve_streamed(owner.handle, plan=plan)
        _assert_same_result(replay, fresh)
        assert replay.timings["plan"] < fresh.timings["plan"]


class TestGlobalIndices:
    def test_covers_are_store_row_indices(self, published):
        """Slice-local covers translate back: the streamed regions name
        the same global NLC rows as an unsharded solve."""
        customers, sites = synthetic_instance(300, 10, "uniform", seed=41)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        single = MaxFirst().solve(problem)
        owner = published(build_nlcs(problem), "memmap")
        streamed = solve_streamed(owner.handle, shards=5)
        assert streamed.score == single.score
        assert _region_keys(streamed) == _region_keys(single)


class TestValidation:
    def test_empty_store_rejected(self, published):
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        owner = published(CircleSet(empty_f, empty_f, empty_f, empty_f,
                                    owners=empty_i, levels=empty_i), "ram")
        with pytest.raises(ValueError, match="empty NLC store"):
            plan_streamed(owner.handle, 2)

    def test_bad_parameters_rejected(self, published):
        owner = published(_nlcs(k=1, seed=1), "ram")
        with pytest.raises(ValueError, match="shards"):
            plan_streamed(owner.handle, 0)
        with pytest.raises(ValueError, match="chunk_rows"):
            plan_streamed(owner.handle, 2, chunk_rows=0)
        with pytest.raises(ValueError, match="top_t"):
            solve_streamed(owner.handle, top_t=3)
