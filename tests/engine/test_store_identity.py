"""Backend-axis identity: every storage backend, the same answer.

The CI ``REPRO_STORE=memmap`` matrix arm runs this file by name: the
assertions must hold whatever backend the environment resolves, and the
explicit ``store=`` axis below proves ram / shm / memmap interchange
bit-for-bit — through the pipeline, through the streaming NLC build,
and on the degenerate instances (zero customers, all-zero weights, a
single chunk smaller than ``chunk_size``).
"""

import numpy as np
import pytest

from repro import store as nlc_store
from repro.core.nlc import (build_nlcs, build_nlcs_streaming,
                            stream_nlc_chunks)
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import run_pipeline
from repro.store.base import soa_arrays

BACKENDS = ("ram", "shm", "memmap")


def _problem(k=2, seed=0, n_customers=80, n_sites=8):
    customers, sites = synthetic_instance(n_customers, n_sites,
                                          "uniform", seed=seed)
    return MaxBRkNNProblem(customers, sites, k=k)


def _region_keys(result):
    return sorted(tuple(int(i) for i in r.cover) for r in result.regions)


@pytest.fixture(autouse=True)
def _drop_attachments():
    yield
    nlc_store.detach()


class TestPipelineBackendAxis:
    @pytest.mark.parametrize("mode", ["tiles", "pool"])
    def test_identical_results_across_backends(self, mode):
        """One pipeline run per backend: scores, covers and areas agree
        exactly — the store is a transport, never part of the answer."""
        problem = _problem(k=2, seed=31)
        reference = None
        for backend in BACKENDS:
            options = dict(shards=4, mode=mode, store=backend)
            if mode == "pool":
                options["max_workers"] = 1
            result, report = run_pipeline("maxfirst-sharded", problem,
                                          **options)
            assert report.meta["store"] == backend
            if reference is None:
                reference = result
                continue
            assert result.score == reference.score, backend
            assert _region_keys(result) == _region_keys(reference), backend
            assert ([r.area for r in result.regions]
                    == [r.area for r in reference.regions]), backend


class TestStreamingBuildBackendAxis:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streamed_build_matches_inram(self, backend):
        problem = _problem(k=2, seed=12, n_customers=90)
        inram = build_nlcs(problem)
        with build_nlcs_streaming(problem, store=backend,
                                  chunk_size=32) as owner:
            assert owner.length == len(inram)
            assert owner.capacity == problem.n_customers * problem.k
            attached = nlc_store.attach(owner.handle)
            for got, want in zip(soa_arrays(attached), soa_arrays(inram)):
                np.testing.assert_array_equal(got, want)
            nlc_store.detach()


@pytest.mark.parametrize("backend", BACKENDS)
class TestDegenerateInstances:
    def test_zero_customers(self, backend):
        """``MaxBRkNNProblem`` rejects empty instances up front, so the
        zero-customer case lives at the chunk-stream layer: an empty
        customer stream seals an empty store on every backend."""
        _, sites = synthetic_instance(8, 8, "uniform", seed=2)
        writer = nlc_store.writer(0, backend)
        for chunk in stream_nlc_chunks(
                iter([np.empty((0, 2), dtype=np.float64)]), sites, k=2):
            writer.append(chunk)
        with writer.finalize() as owner:
            assert owner.length == 0
            assert owner.capacity == 0
            assert len(nlc_store.attach(owner.handle)) == 0
            nlc_store.detach()

    def test_all_zero_weights(self, backend):
        customers, sites = synthetic_instance(40, 6, "uniform", seed=3)
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  weights=np.zeros(len(customers)))
        assert len(build_nlcs(problem)) == 0
        with build_nlcs_streaming(problem, store=backend) as owner:
            # Every disk would score zero, so the build short-circuits
            # before the kNN pass and reserves nothing.
            assert owner.length == 0
            assert owner.capacity == 0
            assert len(nlc_store.attach(owner.handle)) == 0
            nlc_store.detach()

    def test_single_chunk_smaller_than_chunk_size(self, backend):
        problem = _problem(k=1, seed=6, n_customers=50)
        inram = build_nlcs(problem)
        with build_nlcs_streaming(problem, store=backend,
                                  chunk_size=65536) as owner:
            assert owner.length == len(inram)
            attached = nlc_store.attach(owner.handle)
            for got, want in zip(soa_arrays(attached), soa_arrays(inram)):
                np.testing.assert_array_equal(got, want)
            nlc_store.detach()
