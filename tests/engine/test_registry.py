"""Tests for repro.engine.registry — the solver contract layer."""

import pytest

from repro.baselines.gridsearch import GridSearch
from repro.baselines.maxoverlap import MaxOverlap
from repro.baselines.reference import Reference
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.core.result import MaxBRkNNResult
from repro.engine import (Solver, ShardedMaxFirst, create_pipeline,
                          create_solver, get_solver_spec, register_solver,
                          run_pipeline, solver_names, unregister_solver)


class TestRegistrations:
    def test_all_builtins_registered(self):
        assert set(solver_names()) >= {
            "maxfirst", "maxfirst-sharded", "maxoverlap", "gridsearch",
            "reference"}

    def test_factories_build_the_right_types(self):
        assert isinstance(create_solver("maxfirst"), MaxFirst)
        assert isinstance(create_solver("maxoverlap"), MaxOverlap)
        assert isinstance(create_solver("gridsearch"), GridSearch)
        assert isinstance(create_solver("reference"), Reference)
        assert isinstance(create_solver("maxfirst-sharded"),
                          ShardedMaxFirst)

    def test_options_forwarded_to_factory(self):
        solver = create_solver("maxfirst", m_threshold=7, top_t=2)
        assert solver.m_threshold == 7
        assert solver.top_t == 2

    def test_every_solver_satisfies_the_protocol(self):
        for name in solver_names():
            assert isinstance(create_solver(name), Solver)

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="maxfirst"):
            get_solver_spec("nope")

    def test_capabilities(self):
        assert get_solver_spec("maxfirst").capabilities.supports_top_t
        assert get_solver_spec("maxfirst").capabilities.exact
        assert not get_solver_spec("gridsearch").capabilities.exact
        assert not get_solver_spec("maxoverlap").capabilities.supports_top_t

    def test_exact_only_filter(self):
        exact = solver_names(exact_only=True)
        assert "gridsearch" not in exact
        assert "maxfirst" in exact and "reference" in exact


class TestRegistration:
    def test_register_and_unregister(self):
        class Dummy:
            def solve(self, problem):
                raise NotImplementedError

        register_solver("dummy-test", Dummy, exact=False,
                        description="test double")
        try:
            assert "dummy-test" in solver_names()
            assert isinstance(create_solver("dummy-test"), Dummy)
            with pytest.raises(ValueError, match="already registered"):
                register_solver("dummy-test", Dummy)
            register_solver("dummy-test", Dummy, replace=True)
        finally:
            unregister_solver("dummy-test")
        assert "dummy-test" not in solver_names()

    def test_pipeline_missing_raises(self):
        class Dummy:
            def solve(self, problem):
                raise NotImplementedError

        register_solver("dummy-nopipe", Dummy)
        try:
            with pytest.raises(ValueError, match="no staged pipeline"):
                create_pipeline("dummy-nopipe")
        finally:
            unregister_solver("dummy-nopipe")


class TestRunPipeline:
    def test_solve_by_each_name(self):
        problem = MaxBRkNNProblem([(0, 0), (1, 0)], [(4, 4), (-4, 4)])
        for name in ("maxfirst", "maxfirst-sharded", "maxoverlap",
                     "reference"):
            result, report = run_pipeline(name, problem)
            assert isinstance(result, MaxBRkNNResult)
            assert result.score == pytest.approx(2.0)
            assert report.solver == name
            assert report.score == pytest.approx(2.0)
