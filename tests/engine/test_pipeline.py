"""Tests for the staged pipelines and RunReport instrumentation."""

import json

import numpy as np
import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import STAGES, RunReport, run_pipeline
from repro.engine.report import STAGES as REPORT_STAGES


@pytest.fixture(scope="module")
def problem():
    customers, sites = synthetic_instance(80, 8, "uniform", seed=11)
    return MaxBRkNNProblem(customers, sites, k=2)


class TestRunReport:
    def test_stage_accumulation_and_total(self):
        report = RunReport(solver="x")
        report.record_stage("search", 1.0)
        report.record_stage("search", 0.5)
        report.record_stage("refine", 0.25)
        assert report.stages["search"] == pytest.approx(1.5)
        assert report.total_seconds == pytest.approx(1.75)

    def test_json_round_trip(self, tmp_path):
        report = RunReport(solver="x", score=3.0)
        report.record_stage("search", 0.1)
        report.counters["pops"] = 7
        report.meta["k"] = 2
        path = tmp_path / "report.json"
        report.save(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["solver"] == "x"
        assert loaded["score"] == 3.0
        assert loaded["counters"]["pops"] == 7
        assert loaded["meta"]["k"] == 2

    def test_summary_mentions_stages(self):
        report = RunReport(solver="x", score=1.0)
        report.record_stage("index", 0.5)
        assert "index" in report.summary()
        assert "x" in report.summary()


class TestPipelineStages:
    def test_maxfirst_stages_ordered_and_complete(self, problem):
        result, report = run_pipeline("maxfirst", problem)
        assert list(report.stages) == list(STAGES)
        assert all(v >= 0.0 for v in report.stages.values())
        # The report must agree with the solver's own result.
        assert report.score == result.score
        assert report.meta["n_nlcs"] == len(result.nlcs)

    def test_maxfirst_counters_match_stats(self, problem):
        result, report = run_pipeline("maxfirst", problem)
        # The solver's stats lead the counters dict unchanged; the
        # observability registry's work counters follow them.
        stats = result.stats.as_dict()
        assert {k: report.counters[k] for k in stats} == stats
        assert list(report.counters)[:len(stats)] == list(stats)
        assert report.counters["generated"] > 0
        assert report.counters["splits"] > 0
        assert report.counters["kernel_batches"] > 0

    def test_maxoverlap_counters_present(self, problem):
        result, report = run_pipeline("maxoverlap", problem)
        assert report.counters["intersecting_pairs"] > 0
        assert report.counters["coverage_tests"] > 0
        assert report.counters["nlc_count"] == len(result.nlcs)

    def test_pipeline_result_matches_direct_solve(self, problem):
        direct = MaxFirst().solve(problem)
        piped, _ = run_pipeline("maxfirst", problem)
        assert piped.score == direct.score
        assert (sorted(tuple(r.cover) for r in piped.regions)
                == sorted(tuple(r.cover) for r in direct.regions))
        assert piped.stats.as_dict() == direct.stats.as_dict()

    def test_timings_keys_preserved(self, problem):
        """The historical MaxBRkNNResult.timings keys survive routing."""
        mf, _ = run_pipeline("maxfirst", problem)
        assert set(mf.timings) == {"nlc", "phase1", "phase2"}
        mo, _ = run_pipeline("maxoverlap", problem)
        assert set(mo.timings) == {"nlc", "pairs", "coverage", "region"}

    def test_degenerate_instance_short_circuits(self):
        # All-zero weights: no NLC carries score, so no NLCs are built.
        problem = MaxBRkNNProblem([(0, 0), (1, 1)], [(2, 2), (3, 3)],
                                  weights=[0.0, 0.0])
        for name in ("maxfirst", "maxoverlap", "maxfirst-sharded"):
            result, report = run_pipeline(name, problem)
            assert result.score == 0.0
            assert result.regions == ()
            assert report.score == 0.0
            # Stages after build_nlcs are skipped entirely.
            assert "search" not in report.stages
            assert "finalize" in report.stages

    def test_gridsearch_lower_bounds_exact(self, problem):
        approx, _ = run_pipeline("gridsearch", problem,
                                 samples_per_axis=48)
        exact, _ = run_pipeline("maxfirst", problem)
        assert approx.score <= exact.score + 1e-9

    def test_sharded_meta_reports_layout(self, problem):
        _, report = run_pipeline("maxfirst-sharded", problem, shards=4,
                                 mode="serial")
        assert report.meta["shards"] >= 1
        assert len(report.meta["shard_nlcs"]) == report.meta["shards"]
        assert report.meta["mode"] == "serial"

    def test_stage_names_are_canonical(self):
        assert REPORT_STAGES == ("prepare", "build_nlcs", "index",
                                 "search", "refine", "finalize")
