"""Tests for tile-sharded Phase I: exactness, bounds, both exec modes."""

import numpy as np
import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import ShardedMaxFirst, tile_grid
from repro.geometry.rect import Rect


def _problem(n_customers, n_sites, k=1, seed=0, distribution="uniform"):
    customers, sites = synthetic_instance(n_customers, n_sites,
                                          distribution, seed=seed)
    return MaxBRkNNProblem(customers, sites, k=k)


def _region_keys(result):
    return sorted(tuple(int(i) for i in r.cover) for r in result.regions)


class TestTileGrid:
    def test_partition_is_exact(self):
        space = Rect(0.0, 0.0, 4.0, 2.0)
        tiles = tile_grid(space, 4)
        assert len(tiles) == 4
        assert sum(t.area for t in tiles) == pytest.approx(space.area)
        for t in tiles:
            assert t.xmin >= space.xmin and t.xmax <= space.xmax
            assert t.ymin >= space.ymin and t.ymax <= space.ymax

    def test_single_tile_is_the_space(self):
        space = Rect(0.0, 0.0, 1.0, 1.0)
        assert tile_grid(space, 1) == (space,)

    def test_two_tiles_split_one_axis(self):
        tiles = tile_grid(Rect(0.0, 0.0, 1.0, 1.0), 2)
        assert len(tiles) == 2

    @pytest.mark.parametrize("shards", [3, 5, 7, 11])
    def test_awkward_counts_round_up_and_cover(self, shards):
        """Counts that don't factor into the grid must never leave gaps:
        the full grid is emitted (>= shards tiles) and tiles the space."""
        space = Rect(0.0, 0.0, 3.0, 2.0)
        tiles = tile_grid(space, shards)
        assert len(tiles) >= shards
        assert sum(t.area for t in tiles) == pytest.approx(space.area)
        # Probe a lattice of interior points: each must land in a tile.
        for px in np.linspace(space.xmin, space.xmax, 17):
            for py in np.linspace(space.ymin, space.ymax, 17):
                assert any(t.xmin <= px <= t.xmax and t.ymin <= py <= t.ymax
                           for t in tiles)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            tile_grid(Rect(0, 0, 1, 1), 0)


class TestValidation:
    def test_top_t_rejected(self):
        with pytest.raises(ValueError, match="top_t"):
            ShardedMaxFirst(shards=2, top_t=2)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ShardedMaxFirst(mode="threads")

    def test_bad_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedMaxFirst(shards=0)

    def test_external_bound_needs_top_t_1(self):
        problem = _problem(30, 4, seed=3)
        nlcs = build_nlcs(problem)
        solver = MaxFirst(top_t=2)
        with pytest.raises(ValueError, match="top_t"):
            solver.run_phase1(nlcs, nlc_space(nlcs), initial_bound=1.0)


class TestShardedExactness:
    """Sharded runs must be score- and region-identical to the
    single-process batched run (the ISSUE's acceptance criterion)."""

    @pytest.mark.parametrize("shards", [2, 4, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_serial_identity(self, shards, seed):
        problem = _problem(70, 8, k=2, seed=seed)
        single = MaxFirst().solve(problem)
        sharded = ShardedMaxFirst(shards=shards, mode="serial")
        result = sharded.solve(problem)
        assert result.score == single.score  # bit-identical
        assert _region_keys(result) == _region_keys(single)

    def test_process_identity(self):
        problem = _problem(60, 6, k=1, seed=5)
        single = MaxFirst().solve(problem)
        with ShardedMaxFirst(shards=4, mode="process",
                             sync_interval=64) as sharded:
            result = sharded.solve(problem)
        assert result.score == single.score
        assert _region_keys(result) == _region_keys(single)

    def test_clustered_distribution(self):
        problem = _problem(80, 8, k=2, seed=9, distribution="clustered")
        single = MaxFirst().solve(problem)
        result = ShardedMaxFirst(shards=4, mode="serial").solve(problem)
        assert result.score == single.score
        assert _region_keys(result) == _region_keys(single)

    def test_corner_cluster_awkward_shard_count(self):
        """Regression: with shards=5 the old grid dropped its last cell,
        so mass clustered in the top-right corner was never searched and
        the sharded score fell below the true optimum."""
        rng = np.random.default_rng(17)
        customers = np.column_stack(
            [rng.uniform(0.8, 1.0, 40), rng.uniform(0.8, 1.0, 40)])
        sites = np.column_stack(
            [rng.uniform(0.0, 1.0, 6), rng.uniform(0.0, 1.0, 6)])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        single = MaxFirst().solve(problem)
        result = ShardedMaxFirst(shards=5, mode="serial").solve(problem)
        assert result.score == single.score
        assert _region_keys(result) == _region_keys(single)

    def test_one_shard_degenerates_to_single(self):
        problem = _problem(50, 6, seed=2)
        single = MaxFirst().solve(problem)
        result = ShardedMaxFirst(shards=1).solve(problem)
        assert result.score == single.score
        assert _region_keys(result) == _region_keys(single)
        assert result.stats.as_dict() == single.stats.as_dict()

    def test_degenerate_instance(self):
        problem = MaxBRkNNProblem([(0, 0)], [(1, 1)], weights=[0.0])
        result = ShardedMaxFirst(shards=4, mode="serial").solve(problem)
        assert result.score == 0.0
        assert result.regions == ()

    def test_empty_nlcs_rejected(self):
        problem = MaxBRkNNProblem([(0, 0)], [(1, 1)], weights=[0.0])
        nlcs = build_nlcs(problem)
        with pytest.raises(ValueError, match="empty"):
            ShardedMaxFirst(shards=2).solve_nlcs(nlcs)


class TestProcessFallback:
    """A pool that breaks mid-run (worker OOM-killed) must degrade to the
    identical serial computation in auto mode, and surface a clear error
    when processes were explicitly requested."""

    @staticmethod
    def _break_pool(monkeypatch, solver):
        from concurrent.futures.process import BrokenProcessPool

        def boom(nlcs, plan):
            raise BrokenProcessPool("worker died")

        monkeypatch.setattr(solver, "_execute_processes", boom)
        monkeypatch.setattr("os.cpu_count", lambda: 4)

    def test_auto_mode_falls_back_serial(self, monkeypatch):
        problem = _problem(50, 6, seed=4)
        single = MaxFirst().solve(problem)
        solver = ShardedMaxFirst(shards=4, mode="auto")
        self._break_pool(monkeypatch, solver)
        result = solver.solve(problem)
        assert result.score == single.score
        assert _region_keys(result) == _region_keys(single)

    def test_explicit_process_mode_raises(self, monkeypatch):
        problem = _problem(50, 6, seed=4)
        solver = ShardedMaxFirst(shards=4, mode="process")
        self._break_pool(monkeypatch, solver)
        with pytest.raises(RuntimeError, match="unavailable"):
            solver.solve(problem)


class TestBoundExchange:
    def test_later_shards_prune_with_earlier_bounds(self):
        """Serial mode hands each tile the best bound so far; the summed
        Phase I work must never exceed (and usually undercuts) the sum of
        independent per-tile runs with no bound sharing."""
        problem = _problem(90, 8, k=2, seed=13)
        nlcs = build_nlcs(problem)
        solver = ShardedMaxFirst(shards=4, mode="serial")
        plan = solver.plan(nlcs)
        shared = solver.execute(nlcs, plan)
        shared_pops = sum(o.stats["generated"] for o in shared)

        # Re-run every tile with no initial bound (independent shards).
        independent_pops = 0
        for tile, cand in zip(plan.tiles, plan.candidates):
            out = solver._run_tile(nlcs, tile, plan, None, cand)
            independent_pops += out.stats["generated"]
        assert shared_pops <= independent_pops

    def test_initial_bound_prunes(self):
        problem = _problem(60, 6, k=1, seed=7)
        nlcs = build_nlcs(problem)
        space = nlc_space(nlcs)
        solver = MaxFirst()
        _, score, base = solver.run_phase1(nlcs, space)
        # Seeding with the known optimum can only shrink the search.
        _, score2, seeded = solver.run_phase1(nlcs, space,
                                              initial_bound=score)
        assert score2 == score
        assert seeded.generated <= base.generated

    def test_plan_drops_unreachable_tiles(self):
        # NLCs concentrated in a corner: far tiles get no candidates.
        problem = MaxBRkNNProblem(
            [(0.01, 0.01), (0.02, 0.02)], [(0.05, 0.05), (0.9, 0.9)])
        nlcs = build_nlcs(problem)
        solver = ShardedMaxFirst(shards=16, mode="serial")
        plan = solver.plan(nlcs, space=Rect(0.0, 0.0, 1.0, 1.0))
        assert plan.n_shards < 16
        for cand in plan.candidates:
            assert cand.shape[0] > 0
