"""Cross-solver agreement property test (the registry's payoff).

Every solver registered as *exact* must return the same optimal score on
small random instances, across ``k`` — whatever name it was resolved by.
The expected value is the brute-force reference; ``gridsearch`` is
excluded by its own declared capability (``exact=False``), which is
exactly what capabilities are for.
"""

import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import create_solver, get_solver_spec, solver_names

# Small enough for the O(n^3) reference, big enough for real overlap
# structure (dozens of NLC intersections per instance).
_INSTANCES = [
    (40, 5, 0),
    (40, 5, 1),
    (60, 8, 2),
]


def _make_problem(n_customers, n_sites, seed, k):
    customers, sites = synthetic_instance(n_customers, n_sites, "uniform",
                                          seed=seed)
    return MaxBRkNNProblem(customers, sites, k=k)


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("n_customers,n_sites,seed", _INSTANCES)
def test_exact_solvers_agree(n_customers, n_sites, seed, k):
    problem = _make_problem(n_customers, n_sites, seed, k)
    reference = create_solver("reference").solve(problem)
    tol = 1e-9 * max(1.0, abs(reference.score))
    for name in solver_names(exact_only=True):
        if name == "reference":
            continue
        result = create_solver(name).solve(problem)
        assert result.score == pytest.approx(reference.score, abs=tol), \
            f"solver {name!r} disagrees with reference on " \
            f"(n={n_customers}, m={n_sites}, seed={seed}, k={k})"


@pytest.mark.parametrize("k", [1, 2])
def test_gridsearch_lower_bounds_every_exact_solver(k):
    problem = _make_problem(40, 5, 3, k)
    approx = create_solver("gridsearch", samples_per_axis=40).solve(problem)
    assert not get_solver_spec("gridsearch").capabilities.exact
    for name in solver_names(exact_only=True):
        exact = create_solver(name).solve(problem)
        assert approx.score <= exact.score + 1e-9
