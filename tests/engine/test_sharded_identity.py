"""Cross-mode identity properties of zero-copy sharded Phase I.

The acceptance bar for the sharded engine: the *same* scores, regions,
and merged work counters regardless of how the tiles execute —
unsharded, serial in-process, or on the persistent worker pool — plus
exception-safe shared-memory cleanup.
"""

import glob
import os

import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.engine import ShardedMaxFirst, run_pipeline
from repro.obs import metrics as obs_metrics


def _problem(k, seed=0, n_customers=80, n_sites=8):
    customers, sites = synthetic_instance(n_customers, n_sites,
                                          "uniform", seed=seed)
    return MaxBRkNNProblem(customers, sites, k=k)


def _region_keys(result):
    return sorted(tuple(int(i) for i in r.cover) for r in result.regions)


def _work_only(counters):
    return {key: value for key, value in counters.items()
            if key not in obs_metrics.TRANSPORT_COUNTER_KEYS}


def _leaked_segments():
    return glob.glob("/dev/shm/repro-nlc-*")


#: The pool transport backend this run resolves to (``REPRO_STORE``
#: overrides the ``shm`` default); the shm byte-accounting assertions
#: only describe the shm transport.
_ACTIVE_STORE = os.environ.get("REPRO_STORE") or "shm"


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("shards", [2, 5])
class TestFourWayIdentity:
    """unsharded == serial (unified) == tiles == pool, bit-for-bit."""

    def test_scores_and_regions(self, k, shards):
        problem = _problem(k, seed=k * 7 + shards)
        single = MaxFirst().solve(problem)
        results = {
            "serial": ShardedMaxFirst(shards=shards,
                                      mode="serial").solve(problem),
            "tiles": ShardedMaxFirst(shards=shards,
                                     mode="tiles").solve(problem),
        }
        with ShardedMaxFirst(shards=shards, mode="pool",
                             max_workers=1) as pooled:
            results["pool"] = pooled.solve(problem)
        for mode, result in results.items():
            assert result.score == single.score, mode
            assert _region_keys(result) == _region_keys(single), mode


class TestCounterIdentity:
    def test_tilewise_vs_pool_merged_counters(self):
        """With one worker the pool replays the tile-wise schedule, so
        every merged work counter matches exactly; only the transport
        counters (shm bytes, queued tasks, steals) may differ.  (The
        unified-frontier serial mode interleaves tiles on one heap, so
        its work counters legitimately differ — it does *less* work —
        while its results stay bit-identical.)"""
        problem = _problem(k=2, seed=13)
        _, tilewise = run_pipeline("maxfirst-sharded", problem,
                                   shards=4, mode="tiles")
        _, pooled = run_pipeline("maxfirst-sharded", problem,
                                 shards=4, mode="pool", max_workers=1)
        assert _work_only(tilewise.counters) == _work_only(pooled.counters)
        if _ACTIVE_STORE == "shm":
            assert pooled.counters["shm_bytes_mapped"] > 0
        assert pooled.counters["store_slice_views"] >= 1
        if (os.environ.get("REPRO_STORE") or "ram") != "shm":
            # With REPRO_STORE=shm the pipeline itself publishes and
            # attaches the store, so even in-process modes map bytes.
            assert tilewise.counters["shm_bytes_mapped"] == 0
        assert tilewise.counters["store_slice_views"] == 0

    def test_zero_nlc_bytes_pickled(self):
        """Pool transport ships only the O(1) job tuple per tile: the
        mapped shared bytes account for the entire NLC payload, one
        mapping per mapping process per solve (just the worker by
        default; parent + worker when ``REPRO_STORE=shm`` makes the
        pipeline publish and attach the store itself)."""
        if _ACTIVE_STORE != "shm":
            pytest.skip("shm byte accounting only applies to the shm "
                        "transport")
        problem = _problem(k=1, seed=4)
        _, report = run_pipeline("maxfirst-sharded", problem,
                                 shards=4, mode="pool", max_workers=1)
        nlc_bytes = 6 * 8 * report.meta["n_nlcs"]
        mappers = 2 if (os.environ.get("REPRO_STORE") or "ram") == "shm" \
            else 1
        assert report.counters["shm_bytes_mapped"] == mappers * nlc_bytes
        assert report.counters["pool_tasks"] >= 1


class TestPoolReuse:
    def test_pool_survives_repeated_solves(self):
        problem = _problem(k=2, seed=21)
        single = MaxFirst().solve(problem)
        with ShardedMaxFirst(shards=4, mode="pool",
                             max_workers=1) as solver:
            first = solver.solve(problem)
            second = solver.solve(problem)
        assert first.score == single.score
        assert second.score == single.score
        assert _region_keys(first) == _region_keys(second)


class TestExceptionSafety:
    def test_worker_failure_leaks_no_shm_and_pool_recovers(self):
        problem = _problem(k=1, seed=9)
        before = set(_leaked_segments())
        with ShardedMaxFirst(shards=4, mode="pool",
                             max_workers=1) as solver:
            solver._fail_tiles = frozenset({1})
            with pytest.raises(RuntimeError, match="injected failure"):
                solver.solve(problem)
            assert set(_leaked_segments()) == before
            # The pool stays usable after a tile failure.
            solver._fail_tiles = frozenset()
            result = solver.solve(problem)
        assert result.score == MaxFirst().solve(problem).score
        assert set(_leaked_segments()) == before
