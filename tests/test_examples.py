"""Smoke checks for the example scripts.

Each example must import cleanly (its imports and module-level code are
part of the documented surface), and the cheap ones run end to end.
Heavy examples are exercised by their own underlying-API tests.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart.py"]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert set(ALL_EXAMPLES) >= {
            "quickstart.py", "store_placement.py",
            "base_station_planning.py", "solver_comparison.py",
            "competitive_analysis.py", "manhattan_clinic.py"}

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_cleanly(self, name):
        module = load_example(name)
        assert hasattr(module, "main"), f"{name} must expose main()"
        assert module.__doc__, f"{name} must carry a docstring"

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name, capsys):
        module = load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert out.strip(), f"{name} produced no output"
