"""Edge cases not naturally covered by the per-module suites."""

import math

import numpy as np
import pytest

from repro.baselines.maxoverlap import MaxOverlap
from repro.cli import main
from repro.core.maxfirst import MaxFirst
from repro.datasets.loader import save_points_csv
from repro.datasets.synthetic import synthetic_instance
from repro.geometry.arcs import TWO_PI, Arc
from repro.geometry.circle import Circle
from repro.geometry.intersection import intersect_disks


class TestArcEdges:
    def test_arc_length(self):
        arc = Arc(Circle(0, 0, 2.0), 0.0, math.pi)
        assert arc.length == pytest.approx(2 * math.pi)

    def test_sample_single_point(self):
        arc = Arc(Circle(0, 0, 1), 0.0, 1.0)
        pts = arc.sample(1)
        assert len(pts) == 1
        assert pts[0].is_close(arc.midpoint)

    def test_degenerate_region_sample_boundary(self):
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2.1, 4.2)]
        region = intersect_disks(circles)
        assert region.is_degenerate
        pts = region.sample_boundary()
        assert len(pts) == 1

    def test_wrapping_arc_bbox(self):
        # Arc crossing the 0-angle: bbox must include the +x extreme.
        arc = Arc(Circle(0, 0, 1), TWO_PI - 0.5, 1.0)
        region = intersect_disks([Circle(0, 0, 1)])
        box = region.bounding_box()
        assert box.xmax == pytest.approx(1.0)
        from repro.geometry.arcs import ArcRegion
        bbox = ArcRegion._arc_bbox(arc)
        assert bbox.xmax == pytest.approx(1.0)
        assert bbox.ymin < 0 < bbox.ymax


class TestResultSummaries:
    def test_maxoverlap_summary_without_phase1_stats(
            self, small_uniform_problem):
        result = MaxOverlap().solve(small_uniform_problem)
        text = result.summary()
        assert "MaxBRkNN optimum" in text
        assert "quadrants" not in text  # no Phase I stats on MaxOverlap
        assert result.overlap_stats.distinct_candidates > 0
        assert (result.overlap_stats.distinct_candidates
                <= result.overlap_stats.intersection_points
                + result.overlap_stats.nlc_count)

    def test_zero_score_instance_summary(self):
        # Customer exactly on its only site: optimum is 0 under region
        # semantics; the solver must still return a well-formed result.
        from repro.core.problem import MaxBRkNNProblem
        result = MaxFirst().solve(
            MaxBRkNNProblem([(1.0, 1.0)], [(1.0, 1.0)], k=1))
        assert result.score == 0.0
        assert "score 0" in result.summary()


class TestCliWeights:
    def test_solve_with_weights_file(self, tmp_path, capsys):
        customers, sites = synthetic_instance(40, 5, "uniform", seed=61)
        c_path = tmp_path / "c.csv"
        s_path = tmp_path / "s.csv"
        w_path = tmp_path / "w.csv"
        save_points_csv(c_path, customers)
        save_points_csv(s_path, sites)
        w_path.write_text("\n".join(["2.0"] * 40) + "\n")
        code = main(["solve", "--customers", str(c_path), "--sites",
                     str(s_path), "--weights", str(w_path)])
        assert code == 0
        out = capsys.readouterr().out
        # Doubling all weights doubles the optimum vs the unweighted run.
        main(["solve", "--customers", str(c_path), "--sites",
              str(s_path)])
        base_out = capsys.readouterr().out
        score = float(out.split("score ")[1].split()[0])
        base = float(base_out.split("score ")[1].split()[0])
        assert score == pytest.approx(2 * base)


class TestSolveNlcsWithExplicitSpace:
    def test_restricting_space_restricts_search(self):
        """Passing an explicit space limits where regions are sought —
        a power-user hook (e.g. zoning constraints)."""
        from repro.geometry.rect import Rect
        from repro.index.circleset import CircleSet
        circles = [Circle(0, 0, 1), Circle(10, 0, 1), Circle(10.5, 0, 1)]
        nlcs = CircleSet.from_circles(circles)
        full = MaxFirst().solve_nlcs(nlcs)
        assert full.score == pytest.approx(2.0)
        left_only = MaxFirst().solve_nlcs(
            nlcs, space=Rect(-1.5, -1.5, 1.5, 1.5))
        assert left_only.score == pytest.approx(1.0)
        assert left_only.best_region.contains_point(0.0, 0.0)
