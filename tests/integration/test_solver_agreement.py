"""Cross-solver agreement: MaxFirst == MaxOverlap == reference.

These are the load-bearing correctness tests of the whole reproduction:
three solvers with disjoint mechanisms (best-first quadtree search,
region-to-point candidate enumeration, brute-force candidate scoring)
must produce the same optimum on the same instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.gridsearch import grid_search_nlcs
from repro.baselines.maxoverlap import MaxOverlap
from repro.baselines.reference import reference_solve_nlcs
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.probability import ProbabilityModel
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance

from tests.conftest import assert_scores_close


def solve_all_ways(problem):
    nlcs = build_nlcs(problem)
    mf = MaxFirst().solve_nlcs(nlcs)
    mo = MaxOverlap().solve_nlcs(nlcs)
    ref = reference_solve_nlcs(nlcs)
    return mf, mo, ref


class TestSystematicSweep:
    @pytest.mark.parametrize("distribution", ["uniform", "normal",
                                              "clustered"])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_three_way_agreement(self, distribution, k):
        customers, sites = synthetic_instance(140, 12, distribution,
                                              seed=hash((distribution, k))
                                              % 2**31)
        problem = MaxBRkNNProblem(customers, sites, k=k)
        mf, mo, ref = solve_all_ways(problem)
        ctx = f"{distribution} k={k}"
        assert_scores_close(mf.score, ref.score, context=f"mf {ctx}")
        assert_scores_close(mo.score, ref.score, context=f"mo {ctx}")

    @pytest.mark.parametrize("model_name", ["linear", "harmonic"])
    def test_paper_probability_series(self, model_name):
        k = 3
        model = getattr(ProbabilityModel, model_name)(k)
        customers, sites = synthetic_instance(100, 10, "uniform", seed=77)
        problem = MaxBRkNNProblem(customers, sites, k=k,
                                  probability=model)
        mf, mo, ref = solve_all_ways(problem)
        assert_scores_close(mf.score, ref.score, context=model_name)
        assert_scores_close(mo.score, ref.score, context=model_name)

    def test_grid_search_lower_bounds_all(self):
        customers, sites = synthetic_instance(90, 9, "uniform", seed=5)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        nlcs = build_nlcs(problem)
        mf = MaxFirst().solve_nlcs(nlcs)
        approx = grid_search_nlcs(nlcs, samples_per_axis=64)
        assert approx.score <= mf.score + 1e-9


class TestHypothesisInstances:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_customers=st.integers(min_value=2, max_value=60),
        n_sites=st.integers(min_value=2, max_value=10),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_random_instances_agree(self, seed, n_customers, n_sites, k):
        k = min(k, n_sites)
        rng = np.random.default_rng(seed)
        customers = rng.uniform(0, 10, (n_customers, 2))
        sites = rng.uniform(0, 10, (n_sites, 2))
        problem = MaxBRkNNProblem(customers, sites, k=k)
        mf, mo, ref = solve_all_ways(problem)
        ctx = f"seed={seed} n={n_customers} m={n_sites} k={k}"
        assert_scores_close(mf.score, ref.score, context=f"mf {ctx}")
        assert_scores_close(mo.score, ref.score, context=f"mo {ctx}")

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        scale=st.floats(min_value=1e-3, max_value=1e4),
        offset=st.floats(min_value=-1e4, max_value=1e4),
    )
    def test_affine_invariance(self, seed, scale, offset):
        """Translating/scaling the plane must not change the optimum
        (scores are combinatorial)."""
        rng = np.random.default_rng(seed)
        customers = rng.uniform(0, 1, (40, 2))
        sites = rng.uniform(0, 1, (6, 2))
        base = MaxFirst().solve(MaxBRkNNProblem(customers, sites, k=2))
        moved = MaxFirst().solve(MaxBRkNNProblem(
            customers * scale + offset, sites * scale + offset, k=2))
        assert_scores_close(base.score, moved.score,
                            context=f"scale={scale} offset={offset}")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_duplicate_customers_sum(self, seed):
        """Duplicating every customer doubles the optimum — equivalent
        to doubling weights."""
        rng = np.random.default_rng(seed)
        customers = rng.uniform(0, 1, (30, 2))
        sites = rng.uniform(0, 1, (5, 2))
        single = MaxFirst().solve(MaxBRkNNProblem(customers, sites, k=1))
        doubled = MaxFirst().solve(MaxBRkNNProblem(
            np.vstack((customers, customers)), sites, k=1))
        weighted = MaxFirst().solve(MaxBRkNNProblem(
            customers, sites, k=1,
            weights=np.full(30, 2.0)))
        assert_scores_close(doubled.score, 2 * single.score)
        assert_scores_close(weighted.score, 2 * single.score)


class TestColocatedData:
    def test_many_customers_one_location(self):
        customers = np.tile([[0.5, 0.5]], (20, 1))
        sites = np.array([[0.0, 0.0], [1.0, 1.0]])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        mf, mo, ref = solve_all_ways(problem)
        assert mf.score == pytest.approx(20.0)
        assert mo.score == pytest.approx(20.0)
        assert ref.score == pytest.approx(20.0)

    def test_colocated_sites(self):
        customers = np.array([[0.0, 0.0], [2.0, 0.0]])
        sites = np.array([[1.0, 0.0], [1.0, 0.0], [5.0, 5.0]])
        problem = MaxBRkNNProblem(customers, sites, k=2)
        mf, mo, ref = solve_all_ways(problem)
        assert_scores_close(mf.score, ref.score)
        assert_scores_close(mo.score, ref.score)

    def test_grid_lattice_data(self):
        """Exactly regular data maximises geometric degeneracies."""
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        customers = np.column_stack((xs.ravel(), ys.ravel()))
        sites = np.array([[0.5, 0.5], [3.5, 3.5], [0.5, 3.5], [3.5, 0.5]])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        mf, mo, ref = solve_all_ways(problem)
        assert_scores_close(mf.score, ref.score)
        assert_scores_close(mo.score, ref.score)
