"""Structural invariants of the MaxBRkNN problem, enforced end to end.

These tests encode facts a domain expert expects of any correct solver —
monotonicity, bounds, symmetry — independent of the specific algorithm.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.core.queries import impact_of_new_site, site_influence
from repro.datasets.synthetic import synthetic_instance
from repro.l1.solver import solve_l1


class TestScoreBounds:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_score_within_weight_bounds(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        customers = rng.uniform(0, 1, (n, 2))
        sites = rng.uniform(0, 1, (4, 2))
        weights = rng.uniform(0.1, 2.0, n)
        problem = MaxBRkNNProblem(customers, sites, k=1, weights=weights)
        result = MaxFirst().solve(problem)
        # At least one customer is always winnable (its own NLC has
        # interior unless it sits exactly on a site).
        on_site = np.array([
            np.min(np.hypot(sites[:, 0] - x, sites[:, 1] - y)) == 0.0
            for x, y in customers])
        winnable = weights[~on_site]
        lower = winnable.max() if winnable.size else 0.0
        assert lower - 1e-9 <= result.score <= weights.sum() + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_probability_caps_score(self, seed):
        """With model {p1, ...}, no location can beat p1 * total weight."""
        rng = np.random.default_rng(seed)
        customers = rng.uniform(0, 1, (30, 2))
        sites = rng.uniform(0, 1, (5, 2))
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  probability=[0.8, 0.2])
        result = MaxFirst().solve(problem)
        assert result.score <= 0.8 * 30 + 1e-9


class TestMonotonicity:
    def test_adding_customers_never_decreases_optimum(self):
        base_customers, sites = synthetic_instance(60, 8, "uniform",
                                                   seed=71)
        extra, _ = synthetic_instance(30, 8, "uniform", seed=72)
        small = MaxFirst().solve(
            MaxBRkNNProblem(base_customers, sites, k=1))
        big = MaxFirst().solve(MaxBRkNNProblem(
            np.vstack((base_customers, extra)), sites, k=1))
        assert big.score >= small.score - 1e-9

    def test_removing_sites_never_decreases_optimum(self):
        """Fewer competitors -> bigger NLCs -> every location's influence
        is monotone non-decreasing."""
        customers, sites = synthetic_instance(80, 10, "uniform", seed=73)
        full = MaxFirst().solve(MaxBRkNNProblem(customers, sites, k=1))
        reduced = MaxFirst().solve(
            MaxBRkNNProblem(customers, sites[:5], k=1))
        assert reduced.score >= full.score - 1e-9

    def test_increasing_k_never_decreases_uniform_probability_mass(self):
        """Under uniform models the per-customer cap is 1/k, so total
        score shrinks; but the unweighted BRkNN cardinality can only
        grow.  Check the normalised version: k * score is monotone."""
        customers, sites = synthetic_instance(70, 9, "uniform", seed=74)
        scores = {}
        for k in (1, 2, 3):
            scores[k] = MaxFirst().solve(
                MaxBRkNNProblem(customers, sites, k=k)).score
        assert 2 * scores[2] >= 1 * scores[1] - 1e-9
        assert 3 * scores[3] >= 2 * scores[2] - 1e-9


class TestSymmetry:
    def test_mirror_symmetry(self):
        customers, sites = synthetic_instance(50, 6, "uniform", seed=75)
        base = MaxFirst().solve(MaxBRkNNProblem(customers, sites, k=2))
        mirrored = MaxFirst().solve(MaxBRkNNProblem(
            customers * np.array([-1.0, 1.0]),
            sites * np.array([-1.0, 1.0]), k=2))
        assert mirrored.score == pytest.approx(base.score)

    def test_axis_swap(self):
        customers, sites = synthetic_instance(50, 6, "normal", seed=76)
        base = MaxFirst().solve(MaxBRkNNProblem(customers, sites, k=1))
        swapped = MaxFirst().solve(MaxBRkNNProblem(
            customers[:, ::-1].copy(), sites[:, ::-1].copy(), k=1))
        assert swapped.score == pytest.approx(base.score)

    def test_l1_rotation_by_90_degrees(self):
        """The L1 metric is invariant under 90° rotations."""
        customers, sites = synthetic_instance(40, 5, "uniform", seed=77)
        base = solve_l1(MaxBRkNNProblem(customers, sites, k=1))
        rot = lambda pts: np.column_stack((-pts[:, 1], pts[:, 0]))  # noqa
        rotated = solve_l1(MaxBRkNNProblem(rot(customers), rot(sites),
                                           k=1))
        assert rotated.score == pytest.approx(base.score)


class TestCrossModuleConsistency:
    def test_site_influence_plus_optimum_gain(self):
        """Opening the optimal site transfers exactly its gain from the
        incumbents (every won customer had a saturated top-k list) —
        influence is conserved."""
        customers, sites = synthetic_instance(100, 10, "uniform",
                                              seed=78)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        before = site_influence(problem)
        result = MaxFirst().solve(problem)
        p = result.optimal_location()
        impact = impact_of_new_site(problem, p.x, p.y)
        assert impact.gain == pytest.approx(result.score, abs=1e-9)
        assert impact.total_incumbent_loss() == pytest.approx(
            impact.gain, abs=1e-9)
        # And the loss never exceeds any incumbent's standing influence.
        for site_idx, loss in impact.incumbent_losses.items():
            assert loss <= before[site_idx] + 1e-9

    def test_l1_l2_same_trivial_instance(self):
        """On an instance whose optimum is a single isolated customer,
        metric choice cannot matter."""
        problem = MaxBRkNNProblem([(0.0, 0.0)], [(2.0, 0.0)])
        l2 = MaxFirst().solve(problem)
        l1 = solve_l1(problem)
        assert l1.score == pytest.approx(l2.score) == 1.0
