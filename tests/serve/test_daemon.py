"""HTTP daemon + client: in-process server thread, real sockets."""

import threading

import numpy as np
import pytest

from repro.core.probability import ProbabilityModel
from repro.core.queries import brknn_of_site, impact_of_new_site
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon, problem_from_doc
from repro.serve.protocol import (BrknnRequest, BrknnResponse,
                                  ErrorResponse, ImpactRequest,
                                  ImpactResponse, SolveRequest,
                                  SolveResponse)


@pytest.fixture()
def daemon():
    """A live daemon on an ephemeral loopback port, torn down after."""
    daemon = ServeDaemon(port=0, store="ram", linger=0.0)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    try:
        yield daemon
    finally:
        daemon.request_shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()


def _publish_body(serve_problem):
    return {"customers": serve_problem.customers.tolist(),
            "sites": serve_problem.sites.tolist(),
            "k": serve_problem.k}


class TestEndToEnd:
    def test_publish_query_round_trip(self, daemon, serve_problem):
        host, port = daemon.address
        with ServeClient(host, port) as client:
            assert client.health()["status"] == "ok"
            instance_id = client.publish(_publish_body(serve_problem))
            assert client.health()["instances"] == [instance_id]
            brknn, impact, solved = client.query([
                BrknnRequest(instance_id, 4),
                ImpactRequest(instance_id, 33.0, 66.0),
                SolveRequest(instance_id)])
            assert isinstance(brknn, BrknnResponse)
            direct = brknn_of_site(serve_problem, 4)
            assert brknn.members == dict(direct.members)
            assert brknn.influence == direct.influence
            assert isinstance(impact, ImpactResponse)
            assert impact.gain \
                == impact_of_new_site(serve_problem, 33.0, 66.0).gain
            assert isinstance(solved, SolveResponse)
            assert solved.upper_bound == solved.score > 0.0

    def test_metrics_count_served_requests(self, daemon, serve_problem):
        host, port = daemon.address
        with ServeClient(host, port) as client:
            instance_id = client.publish(_publish_body(serve_problem))
            client.query([BrknnRequest(instance_id, 0),
                          BrknnRequest(instance_id, 1)])
            counters = client.metrics()["counters"]
            assert counters.get("serve_requests", 0) >= 2
            assert counters.get("serve_batches", 0) >= 1

    def test_per_request_errors_keep_http_200(self, daemon,
                                              serve_problem):
        host, port = daemon.address
        with ServeClient(host, port) as client:
            instance_id = client.publish(_publish_body(serve_problem))
            bad, good = client.query([
                BrknnRequest("no-such-instance", 0),
                BrknnRequest(instance_id, 0)])
            assert isinstance(bad, ErrorResponse)
            assert isinstance(good, BrknnResponse)


class TestEnvelopeErrors:
    def test_unknown_path_is_404(self, daemon):
        host, port = daemon.address
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="unknown path"):
                client._request("GET", "/nope")
            with pytest.raises(ServeError, match="unknown path"):
                client._request("POST", "/nope", {})

    def test_malformed_publish_is_400(self, daemon):
        host, port = daemon.address
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="missing field"):
                client.publish({"customers": [[0.0, 0.0]]})

    def test_malformed_query_is_400(self, daemon):
        host, port = daemon.address
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="requests"):
                client._request("POST", "/query", {"requests": "nope"})
            with pytest.raises(ServeError, match="unknown request kind"):
                client._request("POST", "/query",
                                {"requests": [{"kind": "frobnicate",
                                               "instance": "i"}]})


class TestProblemFromDoc:
    CUSTOMERS = [[0.0, 0.0], [1.0, 2.0], [3.0, 1.0]]
    SITES = [[0.5, 0.5], [2.0, 2.0]]

    def test_named_probability_model(self):
        problem = problem_from_doc({
            "customers": self.CUSTOMERS, "sites": self.SITES, "k": 2,
            "probability": "linear"})
        expected = ProbabilityModel.linear(2)
        assert np.array_equal(problem.models[0].probs, expected.probs)

    def test_flat_and_per_customer_probability(self):
        flat = problem_from_doc({
            "customers": self.CUSTOMERS, "sites": self.SITES, "k": 2,
            "probability": [0.75, 0.25]})
        assert list(flat.models[0].probs) == [0.75, 0.25]
        rows = problem_from_doc({
            "customers": self.CUSTOMERS, "sites": self.SITES, "k": 2,
            "probability": [[0.75, 0.25], [0.5, 0.5], [1.0, 0.0]]})
        assert list(rows.models[2].probs) == [1.0, 0.0]

    def test_weights_are_applied(self):
        problem = problem_from_doc({
            "customers": self.CUSTOMERS, "sites": self.SITES, "k": 1,
            "weights": [1.0, 2.0, 3.0]})
        assert problem.weights.tolist() == [1.0, 2.0, 3.0]

    def test_unknown_named_model_raises(self):
        with pytest.raises(ValueError, match="unknown probability"):
            problem_from_doc({
                "customers": self.CUSTOMERS, "sites": self.SITES,
                "k": 1, "probability": "zipf"})
