"""BatchScheduler: coalescing, positional fulfilment, failure teeth."""

import threading

import pytest

from repro.serve.batching import BatchScheduler, Ticket
from repro.serve.protocol import (BrknnRequest, BrknnResponse,
                                  ErrorResponse, SiteInfluenceRequest)
from repro.serve.service import QueryService


class RecordingService:
    """Service stand-in: answers positionally, records batch sizes."""

    def __init__(self):
        self.batches = []

    def execute(self, requests):
        self.batches.append(len(requests))
        return [("answer", request) for request in requests]


class ExplodingService:
    def execute(self, requests):
        raise RuntimeError("service down")


class TestExplicitFlush:
    def test_flush_drains_everything_into_one_batch(self):
        service = RecordingService()
        scheduler = BatchScheduler(service)
        tickets = [scheduler.submit(f"r{i}") for i in range(5)]
        assert scheduler.pending() == 5
        assert scheduler.flush() == 5
        assert scheduler.pending() == 0
        assert service.batches == [5]
        for i, ticket in enumerate(tickets):
            assert ticket.result(timeout=1.0) == ("answer", f"r{i}")

    def test_empty_flush_is_a_noop(self):
        service = RecordingService()
        scheduler = BatchScheduler(service)
        assert scheduler.flush() == 0
        assert service.batches == []

    def test_batch_failure_resolves_every_ticket(self):
        scheduler = BatchScheduler(ExplodingService())
        tickets = [scheduler.submit("a"), scheduler.submit("b")]
        assert scheduler.flush() == 2
        for ticket in tickets:
            response = ticket.result(timeout=1.0)
            assert isinstance(response, ErrorResponse)
            assert "service down" in response.message

    def test_unfulfilled_ticket_times_out(self):
        with pytest.raises(TimeoutError):
            Ticket().result(timeout=0.01)


class TestDispatcherThread:
    def test_submissions_resolve_without_explicit_flush(self):
        service = RecordingService()
        scheduler = BatchScheduler(service, linger=0.001)
        scheduler.start()
        try:
            tickets = [scheduler.submit(f"r{i}") for i in range(4)]
            results = [t.result(timeout=5.0) for t in tickets]
        finally:
            scheduler.stop()
        assert results == [("answer", f"r{i}") for i in range(4)]
        assert sum(service.batches) == 4

    def test_start_is_idempotent_and_stop_flushes(self):
        service = RecordingService()
        scheduler = BatchScheduler(service, linger=10.0)  # never fires
        scheduler.start()
        first_thread = scheduler._thread
        scheduler.start()
        assert scheduler._thread is first_thread
        ticket = scheduler.submit("late")
        scheduler.stop()  # must flush the queued request on the way out
        assert ticket.result(timeout=1.0) == ("answer", "late")
        scheduler.stop()  # idempotent

    def test_concurrent_submitters_share_service_batches(self):
        service = RecordingService()
        scheduler = BatchScheduler(service, linger=0.02)
        scheduler.start()
        results = {}

        def worker(name):
            ticket = scheduler.submit(name)
            results[name] = ticket.result(timeout=5.0)

        try:
            threads = [threading.Thread(target=worker, args=(f"t{i}",))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            scheduler.stop()
        assert {name: answer for name, (_tag, answer)
                in results.items()} \
            == {f"t{i}": f"t{i}" for i in range(8)}
        # Coalescing happened: fewer service batches than requests
        # (with an 20ms linger, 8 near-simultaneous submits cannot each
        # get a private batch... unless the scheduler thread starves;
        # allow equality=8 only if batches are all singletons — the
        # positional guarantee above is the hard invariant).
        assert sum(service.batches) == 8


class TestAgainstRealService:
    def test_real_service_through_the_scheduler(self, serve_problem):
        with QueryService(store="ram") as service:
            instance_id = service.publish(serve_problem).instance_id
            scheduler = BatchScheduler(service)
            brknn = scheduler.submit(BrknnRequest(instance_id, 2))
            influence = scheduler.submit(
                SiteInfluenceRequest(instance_id))
            assert scheduler.flush() == 2
            assert isinstance(brknn.result(timeout=5.0), BrknnResponse)
            direct = service.execute(
                [SiteInfluenceRequest(instance_id)])[0]
            assert influence.result(timeout=5.0) == direct
