"""Pooled serve path: one worker, zero NLC copies, bit-identical answers.

``warnings.simplefilter("error")`` around the pooled calls is the
teeth: the service degrades to in-process execution with a
``RuntimeWarning`` when the pool breaks, so an accidental fallback
fails these tests instead of silently passing them.
"""

import warnings

import pytest

from repro.obs import metrics as _obs_metrics
from repro.serve.protocol import (AnytimeSolveRequest, BrknnRequest,
                                  ErrorResponse, ImpactRequest,
                                  SiteInfluenceRequest, SolveRequest)
from repro.serve.service import QueryService


def _scripted(instance_id):
    return [
        BrknnRequest(instance_id, 0),
        BrknnRequest(instance_id, 5),
        SiteInfluenceRequest(instance_id),
        ImpactRequest(instance_id, 40.0, 60.0),
        SolveRequest(instance_id),
        AnytimeSolveRequest(instance_id, 0.5),
    ]


@pytest.fixture(scope="module")
def pooled_vs_inprocess(serve_problem):
    """The same scripted batches through both execution paths."""
    # The result cache is disabled on both services so the repeated
    # batch really travels to the pool again — the point here is the
    # worker's *attach* cache, not the parent's result cache (which
    # tests/serve/test_cache.py covers).
    with QueryService(store="ram", cache_bytes=0) as reference:
        instance_id = reference.publish(serve_problem).instance_id
        expected = [reference.execute(_scripted(instance_id)),
                    reference.execute(_scripted(instance_id))]
    with QueryService(store="ram", workers=1, cache_bytes=0) as service:
        instance_id = service.publish(serve_problem).instance_id
        with warnings.catch_warnings(), \
                _obs_metrics.REGISTRY.isolated() as box:
            warnings.simplefilter("error")
            # Two batches: the first is the worker's cache-miss path
            # (attach + rebuild), the second a pure cache hit.
            got = [service.execute(_scripted(instance_id)),
                   service.execute(_scripted(instance_id))]
        counters = dict(box["counters"])  # filled when isolated() exits
    return expected, got, counters


class TestPooledIdentity:
    def test_cache_miss_batch_is_bit_identical(self, pooled_vs_inprocess):
        expected, got, _counters = pooled_vs_inprocess
        assert got[0] == expected[0]

    def test_cache_hit_batch_is_bit_identical(self, pooled_vs_inprocess):
        expected, got, _counters = pooled_vs_inprocess
        assert got[1] == expected[1]

    def test_no_error_responses(self, pooled_vs_inprocess):
        _expected, got, _counters = pooled_vs_inprocess
        assert not any(isinstance(r, ErrorResponse)
                       for batch in got for r in batch)

    def test_pool_submissions_counted(self, pooled_vs_inprocess):
        _expected, _got, counters = pooled_vs_inprocess
        # One instance group per batch → one pool job per batch; the
        # arrival counters count what the parent accepted, regardless
        # of where the batch executed.
        assert counters["serve_pool_submissions"] == 2
        assert counters["serve_batches"] == 2
        assert counters["serve_requests"] == 12


class TestPooledCertificate:
    def test_worker_solve_certificate_reaches_parent(self, serve_problem):
        with QueryService(store="ram", workers=1) as service:
            instance = service.publish(serve_problem)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                (response,) = service.execute(
                    [SolveRequest(instance.instance_id)])
            bound, seeds = instance.certificate()
            assert bound == response.score
            assert seeds
