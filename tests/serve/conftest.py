"""Shared fixtures for the serve-layer tests."""

from __future__ import annotations

import pytest

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance


@pytest.fixture(scope="module")
def serve_problem() -> MaxBRkNNProblem:
    """A deterministic 120-customer / 10-site instance, k=2.

    Module-scoped: the problem is immutable and every serve test only
    reads it (publishes copy the NLC arrays into a store anyway).
    """
    customers, sites = synthetic_instance(120, 10, "uniform", seed=7)
    return MaxBRkNNProblem(customers, sites, k=2)
