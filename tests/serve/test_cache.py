"""Serve-path result cache and single-flight coalescing.

Pins the tentpole invariants: a cache hit is **byte-identical** to the
fresh solve it replaced (on every storage backend; CI runs this file
under both kernel arms, with and without ``REPRO_NO_CKERNEL=1``), the
LRU evicts under byte pressure, an epoch bump invalidates every entry
of the instance, and the batch scheduler single-flights identical
requests submitted concurrently.
"""

import json
import threading

import pytest

from repro.obs import metrics as _obs_metrics
from repro.serve.batching import BatchScheduler
from repro.serve.cache import ResultCache
from repro.serve.protocol import (AnytimeSolveRequest, BrknnRequest,
                                  BrknnResponse, ErrorResponse,
                                  HeatmapRequest, ImpactRequest,
                                  SiteInfluenceRequest, SolveRequest,
                                  encode_response)
from repro.serve.service import QueryService

BACKENDS = ("ram", "shm", "memmap")


def _canonical(response) -> str:
    return json.dumps(encode_response(response), sort_keys=True,
                      separators=(",", ":"))


def _mixed_batch(instance_id):
    """One request of every kind — all distinct canonical keys."""
    return [
        BrknnRequest(instance_id, 1),
        SiteInfluenceRequest(instance_id),
        ImpactRequest(instance_id, 40.0, 60.0),
        SolveRequest(instance_id),
        AnytimeSolveRequest(instance_id, 0.5),
        HeatmapRequest(instance_id, nx=12, ny=12),
    ]


def _tiny_response(site: int) -> BrknnResponse:
    return BrknnResponse(site=site, members={}, influence=0.0)


class TestHitMissBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cached_answers_equal_fresh_bytes(self, backend,
                                              serve_problem):
        with QueryService(store=backend) as service:
            instance_id = service.publish(serve_problem).instance_id
            batch = _mixed_batch(instance_id)
            with _obs_metrics.REGISTRY.isolated() as box:
                fresh = service.execute(batch)
                cached = service.execute(batch)
        counters = dict(box["counters"])
        assert counters["serve_cache_misses"] == len(batch)
        assert counters["serve_cache_hits"] == len(batch)
        assert [_canonical(r) for r in cached] \
            == [_canonical(r) for r in fresh]
        assert cached == fresh

    def test_in_batch_duplicates_execute_once(self, serve_problem):
        with QueryService(store="ram") as service:
            instance_id = service.publish(serve_problem).instance_id
            request = BrknnRequest(instance_id, 2)
            with _obs_metrics.REGISTRY.isolated() as box:
                first, second, third = service.execute(
                    [request, request, request])
        counters = dict(box["counters"])
        # One miss for the whole batch; duplicates share the answer
        # without counting as hits (they never reached the cache).
        assert counters["serve_cache_misses"] == 1
        assert counters.get("serve_cache_hits", 0) == 0
        assert first == second == third

    def test_disabled_cache_never_hits(self, serve_problem):
        with QueryService(store="ram", cache_bytes=0) as service:
            instance_id = service.publish(serve_problem).instance_id
            batch = _mixed_batch(instance_id)
            with _obs_metrics.REGISTRY.isolated() as box:
                fresh = service.execute(batch)
                again = service.execute(batch)
            assert len(service.cache) == 0
        counters = dict(box["counters"])
        assert counters.get("serve_cache_hits", 0) == 0
        assert counters.get("serve_cache_misses", 0) == 0
        assert [_canonical(r) for r in again] \
            == [_canonical(r) for r in fresh]

    def test_error_responses_are_not_cached(self, serve_problem):
        with QueryService(store="ram") as service:
            instance_id = service.publish(serve_problem).instance_id
            bad = BrknnRequest(instance_id,
                               serve_problem.n_sites + 99)
            with _obs_metrics.REGISTRY.isolated() as box:
                (first,) = service.execute([bad])
                (second,) = service.execute([bad])
        assert isinstance(first, ErrorResponse)
        assert isinstance(second, ErrorResponse)
        counters = dict(box["counters"])
        assert counters["serve_cache_misses"] == 2
        assert counters.get("serve_cache_hits", 0) == 0


class TestLRUEviction:
    def _entry_bytes(self) -> int:
        probe = ResultCache(max_bytes=1 << 20)
        probe.put("i", "k", 0, _tiny_response(0))
        return probe.nbytes

    def test_evicts_least_recently_used_under_byte_pressure(self):
        entry = self._entry_bytes()
        cache = ResultCache(max_bytes=3 * entry)
        with _obs_metrics.REGISTRY.isolated() as box:
            for i in range(4):
                cache.put("i", f"k{i}", 0, _tiny_response(i))
            assert len(cache) == 3
            assert cache.nbytes <= cache.max_bytes
            assert cache.get("i", "k0", 0) is None     # oldest evicted
            # Touch k1 so k2 becomes the LRU, then overflow again.
            assert cache.get("i", "k1", 0) is not None
            cache.put("i", "k4", 0, _tiny_response(4))
            assert cache.get("i", "k2", 0) is None
            assert cache.get("i", "k1", 0) is not None
        counters = dict(box["counters"])
        assert counters["serve_cache_evictions"] == 2

    def test_oversized_entry_is_skipped(self):
        cache = ResultCache(max_bytes=8)   # smaller than any entry
        cache.put("i", "k", 0, _tiny_response(0))
        assert len(cache) == 0
        assert cache.get("i", "k", 0) is None


class TestEpochInvalidation:
    def test_stale_epoch_drops_entry(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("i", "k", 0, _tiny_response(0))
        assert cache.get("i", "k", 1) is None      # epoch moved on
        assert len(cache) == 0                     # entry dropped
        assert cache.get("i", "k", 0) is None      # gone for good

    def test_epoch_bump_forces_recompute_with_identical_answer(
            self, serve_problem):
        with QueryService(store="ram") as service:
            instance = service.publish(serve_problem)
            batch = _mixed_batch(instance.instance_id)
            with _obs_metrics.REGISTRY.isolated() as box:
                fresh = service.execute(batch)
                instance.bump_epoch()
                replayed = service.execute(batch)
        counters = dict(box["counters"])
        assert counters["serve_cache_misses"] == 2 * len(batch)
        assert counters.get("serve_cache_hits", 0) == 0
        # The data did not actually change, so the recomputation must
        # reproduce the first answers bit for bit.
        assert [_canonical(r) for r in replayed] \
            == [_canonical(r) for r in fresh]

    def test_invalidate_clears_only_that_instance(self):
        cache = ResultCache(max_bytes=1 << 20)
        cache.put("a", "k", 0, _tiny_response(0))
        cache.put("b", "k", 0, _tiny_response(1))
        cache.invalidate("a")
        assert cache.get("a", "k", 0) is None
        assert cache.get("b", "k", 0) is not None


class TestSingleFlight:
    def test_concurrent_identical_submitters_share_one_execution(
            self, serve_problem):
        # Cache disabled so the proof is the scheduler's dedup, not a
        # cache hit on the second arrival.
        with QueryService(store="ram", cache_bytes=0) as service:
            instance_id = service.publish(serve_problem).instance_id
            scheduler = BatchScheduler(service, linger=0.0)
            tickets = []

            def submit():
                tickets.append(
                    scheduler.submit(SolveRequest(instance_id)))

            threads = [threading.Thread(target=submit)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with _obs_metrics.REGISTRY.isolated() as box:
                assert scheduler.flush() == 8
            results = [t.result(timeout=30.0) for t in tickets]
        counters = dict(box["counters"])
        assert counters["serve_requests"] == 1   # one reached execute
        assert counters["serve_batches"] == 1
        first = results[0]
        assert all(r is first for r in results)  # one shared response

    def test_distinct_keys_survive_coalescing(self, serve_problem):
        with QueryService(store="ram", cache_bytes=0) as service:
            instance_id = service.publish(serve_problem).instance_id
            scheduler = BatchScheduler(service, linger=0.0)
            tickets = [scheduler.submit(r) for r in (
                BrknnRequest(instance_id, 0),
                BrknnRequest(instance_id, 0),
                BrknnRequest(instance_id, 3),
            )]
            with _obs_metrics.REGISTRY.isolated() as box:
                scheduler.flush()
            first, duplicate, other = [t.result(timeout=30.0)
                                       for t in tickets]
        assert dict(box["counters"])["serve_requests"] == 2
        assert duplicate is first
        assert isinstance(other, BrknnResponse)
        assert other.site != first.site

    def test_batch_failure_resolves_every_ticket(self, serve_problem):
        with QueryService(store="ram") as service:
            service.publish(serve_problem)
            scheduler = BatchScheduler(service, linger=0.0)
            ticket = scheduler.submit(object())   # not a Request
            scheduler.flush()
            response = ticket.result(timeout=30.0)
        assert isinstance(response, ErrorResponse)
