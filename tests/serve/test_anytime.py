"""The "solve_anytime" request: certified epsilon guarantees."""

import pytest

from repro.serve.protocol import (AnytimeSolveRequest, ErrorResponse,
                                  SolveRequest, SolveResponse)
from repro.serve.service import QueryService


@pytest.fixture(scope="module")
def solved(serve_problem):
    """Exact optimum + a spread of anytime answers on one instance.

    Publishes twice: the anytime instance is separate so its solves are
    not seeded by the exact instance's certificate (a seeded anytime
    solve would trivially start at the optimum).
    """
    with QueryService(store="ram") as service:
        exact_id = service.publish(serve_problem).instance_id
        (exact,) = service.execute([SolveRequest(exact_id)])
        anytime = {}
        for epsilon in (0.1, 0.5, 2.0):
            instance_id = service.publish(serve_problem).instance_id
            (response,) = service.execute(
                [AnytimeSolveRequest(instance_id, epsilon)])
            anytime[epsilon] = response
        return exact, anytime


class TestAnytimeGuarantees:
    def test_exact_solve_has_tight_bound(self, solved):
        exact, _ = solved
        assert isinstance(exact, SolveResponse)
        assert exact.upper_bound == exact.score > 0.0

    @pytest.mark.parametrize("epsilon", (0.1, 0.5, 2.0))
    def test_score_is_within_epsilon_of_upper_bound(self, solved,
                                                    epsilon):
        _, anytime = solved
        response = anytime[epsilon]
        assert isinstance(response, SolveResponse)
        assert response.upper_bound >= response.score > 0.0
        assert response.score * (1.0 + epsilon) + 1e-9 \
            >= response.upper_bound

    @pytest.mark.parametrize("epsilon", (0.1, 0.5, 2.0))
    def test_certified_approximation_of_true_optimum(self, solved,
                                                     epsilon):
        exact, anytime = solved
        response = anytime[epsilon]
        # The anytime answer never beats the optimum, and its certified
        # upper bound never undercuts it.
        assert response.score <= exact.score + 1e-9
        assert response.upper_bound >= exact.score - 1e-9
        assert response.score * (1.0 + epsilon) + 1e-9 >= exact.score

    def test_anytime_reports_at_least_one_region(self, solved):
        _, anytime = solved
        for response in anytime.values():
            assert response.regions
            # The best reported region attains the certified score (up
            # to the solver's tie tolerance).
            tol = 1e-9 * max(1.0, response.score)
            assert response.regions[0].score >= response.score - tol


class TestAnytimeErrors:
    def test_negative_epsilon_is_a_request_error(self, serve_problem):
        with QueryService(store="ram") as service:
            instance_id = service.publish(serve_problem).instance_id
            (response,) = service.execute(
                [AnytimeSolveRequest(instance_id, -0.5)])
            assert isinstance(response, ErrorResponse)
            assert "epsilon" in response.message
