"""Wire codecs: lossless round trips and strict decode errors."""

import json

import pytest

from repro.serve.protocol import (REQUEST_KINDS, AnytimeSolveRequest,
                                  BrknnRequest, BrknnResponse,
                                  ErrorResponse, HeatmapRequest,
                                  HeatmapResponse, ImpactRequest,
                                  ImpactResponse, RegionSummary,
                                  SiteInfluenceRequest,
                                  SiteInfluenceResponse, SolveRequest,
                                  SolveResponse, decode_request,
                                  decode_response, encode_request,
                                  encode_response)

# Awkward floats on purpose: shortest-repr JSON round trips must keep
# every one of them bit-identical.
UGLY = (0.1 + 0.2, 1.0 / 3.0, 6.02214076e23, 5e-324)

REQUESTS = [
    BrknnRequest(instance="i1", site=3),
    SiteInfluenceRequest(instance="i1"),
    ImpactRequest(instance="i1", x=UGLY[0], y=UGLY[1]),
    SolveRequest(instance="i1", top_t=4),
    AnytimeSolveRequest(instance="i1", epsilon=0.25),
    HeatmapRequest(instance="i1", nx=16, ny=9),
]

RESPONSES = [
    BrknnResponse(site=3, members={0: 1, 7: 2}, influence=UGLY[0]),
    SiteInfluenceResponse(influence=UGLY),
    ImpactResponse(x=UGLY[0], y=UGLY[1], gain=UGLY[2],
                   customer_ranks={5: 1}, incumbent_losses={2: UGLY[3]}),
    SolveResponse(score=UGLY[1], upper_bound=UGLY[2], regions=(
        RegionSummary(score=UGLY[1], area=UGLY[3], x=0.5, y=0.25,
                      cover=(4, 9, 11)),)),
    HeatmapResponse(nx=2, ny=1, bounds=(0.0, 0.0, UGLY[2], UGLY[0]),
                    lower=(0.0, UGLY[3]), upper=(UGLY[1], UGLY[3])),
    ErrorResponse(message="boom"),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_", REQUESTS,
                             ids=[r.kind for r in REQUESTS])
    def test_json_round_trip_is_identity(self, request_):
        doc = json.loads(json.dumps(encode_request(request_)))
        assert decode_request(doc) == request_

    def test_every_kind_has_a_round_trip_case(self):
        assert {r.kind for r in REQUESTS} == set(REQUEST_KINDS)

    def test_solve_top_t_defaults_to_one(self):
        assert decode_request({"kind": "solve", "instance": "i"}) \
            == SolveRequest(instance="i", top_t=1)


class TestResponseRoundTrip:
    @pytest.mark.parametrize("response", RESPONSES,
                             ids=[r.kind for r in RESPONSES])
    def test_json_round_trip_is_identity(self, response):
        doc = json.loads(json.dumps(encode_response(response)))
        assert decode_response(doc) == response

    def test_int_keys_survive_json_stringification(self):
        doc = json.loads(json.dumps(encode_response(RESPONSES[0])))
        assert all(isinstance(key, str) for key in doc["members"])
        decoded = decode_response(doc)
        assert decoded.members == {0: 1, 7: 2}


class TestDecodeErrors:
    def test_unknown_request_kind(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            decode_request({"kind": "frobnicate", "instance": "i"})

    def test_missing_instance(self):
        with pytest.raises(ValueError, match="non-empty 'instance'"):
            decode_request({"kind": "brknn", "site": 1})

    def test_missing_field_names_the_field(self):
        with pytest.raises(ValueError, match="'site'"):
            decode_request({"kind": "brknn", "instance": "i"})
        with pytest.raises(ValueError, match="'epsilon'"):
            decode_request({"kind": "solve_anytime", "instance": "i"})

    def test_bad_field_type(self):
        with pytest.raises(ValueError, match="bad impact request"):
            decode_request({"kind": "impact", "instance": "i",
                            "x": "north", "y": 0.0})

    def test_unknown_response_kind(self):
        with pytest.raises(ValueError, match="unknown response kind"):
            decode_response({"kind": "frobnicate"})

    def test_encode_rejects_non_protocol_objects(self):
        with pytest.raises(TypeError):
            encode_request(object())
        with pytest.raises(TypeError):
            encode_response(object())
