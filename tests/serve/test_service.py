"""In-process QueryService: identity with direct queries, certificates,
error paths, registry lifecycle, counters."""

import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.queries import (brknn_of_site, impact_of_new_site,
                                knn_sites, site_influence)
from repro.obs import metrics as _obs_metrics
from repro.serve.instance import InstanceRegistry
from repro.serve.protocol import (BrknnRequest, BrknnResponse,
                                  ErrorResponse, ImpactRequest,
                                  ImpactResponse, SiteInfluenceRequest,
                                  SiteInfluenceResponse, SolveRequest,
                                  SolveResponse)
from repro.serve.service import QueryService


@pytest.fixture()
def service(serve_problem):
    with QueryService(store="ram") as service:
        service.publish(serve_problem)
        yield service


def _instance(service):
    return next(iter(service.registry))


class TestQueryIdentity:
    def test_brknn_matches_direct_call(self, service, serve_problem):
        ranks = knn_sites(serve_problem)
        instance_id = _instance(service).instance_id
        for site in range(serve_problem.n_sites):
            (response,) = service.execute(
                [BrknnRequest(instance_id, site)])
            direct = brknn_of_site(serve_problem, site, ranks=ranks)
            assert isinstance(response, BrknnResponse)
            assert response.site == direct.site
            assert response.members == dict(direct.members)
            assert response.influence == direct.influence

    def test_site_influence_matches_direct_call(self, service,
                                                serve_problem):
        instance_id = _instance(service).instance_id
        (response,) = service.execute(
            [SiteInfluenceRequest(instance_id)])
        direct = site_influence(serve_problem)
        assert isinstance(response, SiteInfluenceResponse)
        assert list(response.influence) == direct.tolist()

    def test_impact_matches_direct_call(self, service, serve_problem):
        instance_id = _instance(service).instance_id
        for x, y in ((25.0, 25.0), (50.0, 75.0), (90.0, 10.0)):
            (response,) = service.execute(
                [ImpactRequest(instance_id, x, y)])
            direct = impact_of_new_site(serve_problem, x, y)
            assert isinstance(response, ImpactResponse)
            assert response.gain == direct.gain
            assert response.customer_ranks == dict(direct.customer_ranks)
            assert response.incumbent_losses \
                == dict(direct.incumbent_losses)

    def test_solve_matches_direct_maxfirst(self, service):
        instance = _instance(service)
        (response,) = service.execute(
            [SolveRequest(instance.instance_id)])
        assert isinstance(response, SolveResponse)
        solver = MaxFirst(top_t=1)
        accepted, max_min, _stats = solver.run_phase1(
            instance.nlcs, instance.space)
        regions = solver.build_regions(accepted, max_min, instance.nlcs)
        assert response.score == max_min
        assert response.upper_bound == response.score
        assert {r.cover for r in response.regions} \
            == {tuple(int(i) for i in r.cover) for r in regions}

    def test_top_t_solve_reports_t_scores(self, service):
        instance_id = _instance(service).instance_id
        (response,) = service.execute(
            [SolveRequest(instance_id, top_t=3)])
        assert isinstance(response, SolveResponse)
        scores = sorted({r.score for r in response.regions},
                        reverse=True)
        # At most top_t distinct scores survive; the reported score is
        # the t-th-best Theorem 2 threshold, never above the best.
        assert 1 <= len(scores) <= 3
        assert max(scores) >= response.score > 0.0


class TestCertificate:
    def test_first_exact_solve_installs_certificate(self, service):
        instance = _instance(service)
        assert instance.certificate() == (0.0, ())
        (response,) = service.execute(
            [SolveRequest(instance.instance_id)])
        bound, seeds = instance.certificate()
        assert bound == response.score
        assert seeds  # accepted covers recorded for Theorem 3 seeding

    def test_seeded_resolve_returns_identical_answer(self, service):
        instance_id = _instance(service).instance_id
        (first,) = service.execute([SolveRequest(instance_id)])
        (second,) = service.execute([SolveRequest(instance_id)])
        assert second.score == first.score
        assert second.upper_bound == first.upper_bound
        assert {(r.cover, r.score) for r in second.regions} \
            == {(r.cover, r.score) for r in first.regions}

    def test_certificate_survives_within_one_batch(self, service):
        instance_id = _instance(service).instance_id
        first, second = service.execute(
            [SolveRequest(instance_id), SolveRequest(instance_id)])
        assert second.score == first.score
        assert {r.cover for r in second.regions} \
            == {r.cover for r in first.regions}


class TestErrorPaths:
    def test_unknown_instance_gets_error_response(self, service):
        out = service.execute([BrknnRequest("nope", 0),
                               SolveRequest("nope")])
        assert all(isinstance(r, ErrorResponse) for r in out)
        assert all("unknown instance" in r.message for r in out)

    def test_bad_site_index_is_per_request(self, service, serve_problem):
        instance_id = _instance(service).instance_id
        bad, good = service.execute(
            [BrknnRequest(instance_id, serve_problem.n_sites + 5),
             BrknnRequest(instance_id, 0)])
        assert isinstance(bad, ErrorResponse)
        assert "out of range" in bad.message
        assert isinstance(good, BrknnResponse)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            QueryService(workers=0)


class TestRegistryLifecycle:
    def test_publish_retire_releases_store(self, serve_problem):
        registry = InstanceRegistry(store="ram")
        instance = registry.publish(serve_problem)
        assert registry.ids() == (instance.instance_id,)
        registry.retire(instance.instance_id)
        assert registry.ids() == ()
        with pytest.raises(ValueError, match="unknown instance"):
            registry.get(instance.instance_id)
        registry.close()

    def test_retire_keeps_sibling_instances_usable(self, serve_problem):
        with QueryService(store="ram") as service:
            first = service.publish(serve_problem)
            second = service.publish(serve_problem)
            service.registry.retire(first.instance_id)
            (response,) = service.execute(
                [BrknnRequest(second.instance_id, 0)])
            assert isinstance(response, BrknnResponse)

    def test_close_is_idempotent(self, serve_problem):
        service = QueryService(store="ram")
        service.publish(serve_problem)
        service.close()
        service.close()


class TestCounters:
    def test_batch_and_request_counters(self, service):
        instance_id = _instance(service).instance_id
        with _obs_metrics.REGISTRY.isolated() as box:
            service.execute([BrknnRequest(instance_id, 0),
                             SiteInfluenceRequest(instance_id)])
            service.execute([ImpactRequest(instance_id, 5.0, 5.0)])
        counters = dict(box["counters"])  # filled when isolated() exits
        assert counters["serve_batches"] == 2
        assert counters["serve_requests"] == 3
        assert counters.get("serve_pool_submissions", 0) == 0
