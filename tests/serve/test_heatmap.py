"""Influence heat-map tiles: bracket soundness, determinism, the serve
``heatmap`` request kind end to end, and SVG rendering.

The heat map materialises MaxFirst's Phase I tessellation: each tile
carries a proven lower bound (an influence value attained somewhere in
the tile) and a certified upper bound.  These tests pin that bracket
against the exact solver score, the row-major wire layout, and the
codec round-trip.
"""

import numpy as np
import pytest

from repro.core.heatmap import (InfluenceHeatmap, build_heatmap,
                                empty_heatmap, paint_tessellation)
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs, nlc_space
from repro.geometry.rect import Rect
from repro.obs import metrics as _obs_metrics
from repro.serve.protocol import (ErrorResponse, HeatmapRequest,
                                  HeatmapResponse, decode_request,
                                  decode_response, encode_request,
                                  encode_response)
from repro.serve.service import QueryService
from repro.viz.heatmap import heat_color, render_heatmap


@pytest.fixture(scope="module")
def nlcs_and_space(serve_problem):
    nlcs = build_nlcs(serve_problem)
    return nlcs, nlc_space(nlcs)


class TestBuildHeatmap:
    def test_shape_and_bounds(self, nlcs_and_space):
        nlcs, space = nlcs_and_space
        hm = build_heatmap(nlcs, space, 16, 9)
        assert (hm.nx, hm.ny) == (16, 9)
        assert hm.lower.shape == (9, 16)
        assert hm.upper.shape == (9, 16)
        assert hm.bounds == (space.xmin, space.ymin,
                             space.xmax, space.ymax)

    def test_bracket_is_sound_against_exact_solve(self,
                                                  nlcs_and_space):
        nlcs, space = nlcs_and_space
        hm = build_heatmap(nlcs, space, 32, 32)
        assert np.all(hm.lower <= hm.upper)
        assert np.all(hm.lower >= 0.0)
        _accepted, score, _stats = MaxFirst().run_phase1(nlcs, space)
        # The best proven tile never beats the optimum; the best
        # certified ceiling never undercuts it.
        assert float(hm.lower.max()) <= score
        assert float(hm.upper.max()) >= score

    def test_deterministic_across_builds(self, nlcs_and_space):
        nlcs, space = nlcs_and_space
        first = build_heatmap(nlcs, space, 12, 12)
        second = build_heatmap(nlcs, space, 12, 12)
        assert np.array_equal(first.lower, second.lower)
        assert np.array_equal(first.upper, second.upper)

    def test_empty_instance_yields_zero_field(self, nlcs_and_space):
        _nlcs, space = nlcs_and_space
        hm = build_heatmap((), space, 4, 4)
        assert not hm.lower.any()
        assert not hm.upper.any()
        blank = empty_heatmap(space, 4, 4)
        assert np.array_equal(hm.lower, blank.lower)

    def test_rejects_degenerate_grid(self, nlcs_and_space):
        nlcs, space = nlcs_and_space
        with pytest.raises(ValueError):
            build_heatmap(nlcs, space, 0, 4)
        with pytest.raises(ValueError):
            build_heatmap(nlcs, space, 4, -1)

    def test_tiles_filled_counter_moves(self, nlcs_and_space):
        nlcs, space = nlcs_and_space
        with _obs_metrics.REGISTRY.isolated() as box:
            build_heatmap(nlcs, space, 8, 8)
        assert box["counters"]["heatmap_tiles_filled"] > 0


class TestPaintTessellation:
    def test_overlapping_quads_max_combine(self):
        space = Rect(0.0, 0.0, 4.0, 4.0)
        hm = paint_tessellation(space, 4, 4, [
            (Rect(0.0, 0.0, 4.0, 4.0), 1.0, 2.0),
            (Rect(0.0, 0.0, 2.0, 2.0), 3.0, 5.0),
        ])
        assert hm.lower[0, 0] == 3.0     # overlap keeps the max
        assert hm.lower[3, 3] == 1.0
        assert hm.upper[0, 0] == 5.0
        assert hm.upper[3, 3] == 2.0

    def test_quad_outside_space_is_clipped(self):
        space = Rect(0.0, 0.0, 4.0, 4.0)
        hm = paint_tessellation(space, 2, 2, [
            (Rect(-10.0, -10.0, -5.0, -5.0), 9.0, 9.0),
        ])
        assert not hm.lower.any()


class TestServeHeatmap:
    def test_served_tiles_match_direct_build(self, serve_problem,
                                             nlcs_and_space):
        nlcs, space = nlcs_and_space
        direct = build_heatmap(nlcs, space, 10, 6)
        with QueryService(store="ram") as service:
            instance_id = service.publish(serve_problem).instance_id
            (response,) = service.execute(
                [HeatmapRequest(instance_id, nx=10, ny=6)])
        assert isinstance(response, HeatmapResponse)
        assert (response.nx, response.ny) == (10, 6)
        assert response.bounds == direct.bounds
        assert list(response.lower) == direct.lower.ravel().tolist()
        assert list(response.upper) == direct.upper.ravel().tolist()
        # Row-major layout: tile (i, j) lives at lower[j * nx + i].
        j, i = 3, 7
        assert response.lower[j * 10 + i] == direct.lower[j, i]

    def test_codec_round_trip(self, serve_problem):
        request = HeatmapRequest("inst-1", nx=5, ny=3)
        assert decode_request(encode_request(request)) == request
        response = HeatmapResponse(
            nx=2, ny=1, bounds=(0.0, 0.0, 1.0, 1.0),
            lower=(0.5, 1.25), upper=(2.0, 2.0))
        assert decode_response(encode_response(response)) == response

    def test_degenerate_grid_gets_error_response(self, serve_problem):
        with QueryService(store="ram") as service:
            instance_id = service.publish(serve_problem).instance_id
            (response,) = service.execute(
                [HeatmapRequest(instance_id, nx=0, ny=4)])
        assert isinstance(response, ErrorResponse)

    def test_decode_rejects_oversized_grid(self):
        doc = {"kind": "heatmap", "instance": "x",
               "nx": 100000, "ny": 4}
        with pytest.raises(ValueError):
            decode_request(doc)


class TestRenderHeatmap:
    def test_ramp_endpoints(self):
        assert heat_color(0.0, 1.0) == "#ffffff"
        assert heat_color(1.0, 1.0) == "#db143d"
        assert heat_color(5.0, 0.0) == "#ffffff"  # degenerate vmax

    def test_svg_contains_one_rect_per_tile(self, serve_problem,
                                            nlcs_and_space):
        nlcs, space = nlcs_and_space
        hm = build_heatmap(nlcs, space, 6, 6)
        svg = render_heatmap(hm, problem=serve_problem).render()
        assert svg.startswith("<svg") or "<svg" in svg
        assert svg.count("<rect") >= 36

    def test_renders_synthetic_field(self):
        space = Rect(0.0, 0.0, 1.0, 1.0)
        hm = InfluenceHeatmap(
            space=space, nx=2, ny=2,
            lower=np.array([[0.0, 1.0], [2.0, 3.0]]),
            upper=np.array([[1.0, 2.0], [3.0, 4.0]]))
        svg = render_heatmap(hm, show_upper_outline=False).render()
        # One shaded rect per tile (plus the canvas background rect).
        assert svg.count('fill-opacity="0.9"') == 4
