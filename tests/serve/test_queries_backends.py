"""Query operators against every NLC storage backend.

The served instance hands ``repro.core.queries`` and MaxFirst the
*attached view* of whichever backend published the NLC arrays — these
tests pin that every backend answers every request kind ("brknn",
"site_influence", "impact", "solve", "solve_anytime") bit-identically
to the in-RAM reference, under both kernel arms (CI runs this file with
and without ``REPRO_NO_CKERNEL=1``).
"""

import pytest

from repro.store import STORE_NAMES
from repro.serve.protocol import (AnytimeSolveRequest, BrknnRequest,
                                  ErrorResponse, ImpactRequest,
                                  SiteInfluenceRequest, SolveRequest)
from repro.serve.service import QueryService

BACKENDS = ("ram", "shm", "memmap")


def _all_kind_batch(instance_id):
    return [
        BrknnRequest(instance_id, 3),
        SiteInfluenceRequest(instance_id),
        ImpactRequest(instance_id, 45.0, 55.0),
        SolveRequest(instance_id),
        SolveRequest(instance_id, top_t=2),
        AnytimeSolveRequest(instance_id, 0.5),
    ]


@pytest.fixture(scope="module")
def reference_answers(serve_problem):
    with QueryService(store="ram") as service:
        instance_id = service.publish(serve_problem).instance_id
        return service.execute(_all_kind_batch(instance_id))


class TestBackendsAnswerIdentically:
    def test_every_backend_is_registered(self):
        assert set(BACKENDS) <= set(STORE_NAMES)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_request_kinds_match_ram_reference(
            self, backend, serve_problem, reference_answers):
        with QueryService(store=backend) as service:
            instance = service.publish(serve_problem)
            assert instance.store == backend
            answers = service.execute(
                _all_kind_batch(instance.instance_id))
        assert not any(isinstance(a, ErrorResponse) for a in answers)
        assert answers == reference_answers

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_certificate_seeding_per_backend(self, backend,
                                             serve_problem):
        """A seeded re-solve on each backend reproduces the first
        solve's answer exactly (Theorem-2/3 registry over the store)."""
        with QueryService(store=backend) as service:
            instance = service.publish(serve_problem)
            (first,) = service.execute(
                [SolveRequest(instance.instance_id)])
            bound, _seeds = instance.certificate()
            assert bound == first.score
            (second,) = service.execute(
                [SolveRequest(instance.instance_id)])
        assert second == first

    @pytest.mark.parametrize("backend", ("shm", "memmap"))
    def test_pooled_worker_attaches_by_handle(self, backend,
                                              serve_problem):
        """Workers serve shareable backends through a zero-copy attach:
        the answers must still match the in-process reference."""
        import warnings

        with QueryService(store=backend, workers=1) as service:
            instance_id = service.publish(serve_problem).instance_id
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                answers = service.execute(
                    _all_kind_batch(instance_id))
        with QueryService(store="ram") as reference:
            ref_id = reference.publish(serve_problem).instance_id
            expected = reference.execute(_all_kind_batch(ref_id))
        assert answers == expected
