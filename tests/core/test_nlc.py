"""Tests for repro.core.nlc (kNN engines and NLC construction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nlc import build_nlcs, knn_distances, nlc_space
from repro.core.probability import ProbabilityModel
from repro.core.problem import MaxBRkNNProblem

from tests.conftest import brute_knn_distances


class TestKnnDistances:
    def test_invalid_k(self, rng):
        pts = rng.random((5, 2))
        with pytest.raises(ValueError):
            knn_distances(pts, pts, 0)
        with pytest.raises(ValueError):
            knn_distances(pts, pts, 6)

    def test_unknown_method(self, rng):
        pts = rng.random((5, 2))
        with pytest.raises(ValueError):
            knn_distances(pts, pts, 1, method="quantum")

    @pytest.mark.parametrize("method", ["brute", "kdtree", "rtree"])
    def test_engines_match_reference(self, rng, method):
        queries = rng.random((40, 2))
        points = rng.random((25, 2))
        for k in (1, 3, 25):
            got = knn_distances(queries, points, k, method=method)
            expected = brute_knn_distances(queries, points, k)
            np.testing.assert_allclose(got, expected, rtol=1e-9,
                                       atol=1e-12)

    def test_engines_agree_pairwise(self, rng):
        queries = rng.random((60, 2))
        points = rng.random((80, 2))
        results = {m: knn_distances(queries, points, 4, method=m)
                   for m in ("brute", "kdtree", "rtree")}
        np.testing.assert_allclose(results["brute"], results["kdtree"])
        np.testing.assert_allclose(results["brute"], results["rtree"])

    def test_auto_selects_and_works(self, rng):
        queries = rng.random((10, 2))
        points = rng.random((20, 2))
        got = knn_distances(queries, points, 2, method="auto")
        np.testing.assert_allclose(got,
                                   brute_knn_distances(queries, points, 2))

    def test_distances_sorted_per_row(self, rng):
        d = knn_distances(rng.random((30, 2)), rng.random((15, 2)), 5)
        assert (np.diff(d, axis=1) >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_brute_chunking_boundary(self, seed):
        rng = np.random.default_rng(seed)
        queries = rng.random((7, 2)) * 10
        points = rng.random((9, 2)) * 10
        got = knn_distances(queries, points, 3, method="brute")
        np.testing.assert_allclose(
            got, brute_knn_distances(queries, points, 3))


class TestBuildNlcs:
    def test_k1_counts_and_scores(self, small_uniform_problem):
        nlcs = build_nlcs(small_uniform_problem)
        assert len(nlcs) == small_uniform_problem.n_customers
        assert (nlcs.scores == 1.0).all()
        assert (nlcs.levels == 1).all()

    def test_radii_are_knn_distances(self, small_uniform_problem):
        p = small_uniform_problem
        nlcs = build_nlcs(p)
        expected = brute_knn_distances(p.customers, p.sites, 1)[:, 0]
        order = np.argsort(nlcs.owners)
        np.testing.assert_allclose(nlcs.r[order], expected)

    def test_uniform_model_drops_zero_score_circles(self):
        # With the uniform model only the k-th NLC carries score, so the
        # builder keeps exactly one circle per object.
        p = MaxBRkNNProblem([(0, 0), (5, 5)],
                            [(1, 0), (2, 0), (3, 0)], k=3)
        nlcs = build_nlcs(p)
        assert len(nlcs) == 2
        assert (nlcs.levels == 3).all()
        assert nlcs.scores == pytest.approx([1 / 3, 1 / 3])

    def test_keep_zero_score_keeps_all(self):
        p = MaxBRkNNProblem([(0, 0)], [(1, 0), (2, 0), (3, 0)], k=3)
        nlcs = build_nlcs(p, keep_zero_score=True)
        assert len(nlcs) == 3
        assert nlcs.levels.tolist() == [1, 2, 3]
        assert nlcs.r.tolist() == pytest.approx([1.0, 2.0, 3.0])

    def test_skewed_model_scores(self):
        p = MaxBRkNNProblem([(0, 0)], [(1, 0), (2, 0)], k=2,
                            probability=[0.8, 0.2])
        nlcs = build_nlcs(p)
        assert len(nlcs) == 2
        # Definition 2: score(c1) = 0.6, score(c2) = 0.2.
        by_level = dict(zip(nlcs.levels.tolist(), nlcs.scores.tolist()))
        assert by_level[1] == pytest.approx(0.6)
        assert by_level[2] == pytest.approx(0.2)

    def test_weights_scale_scores(self):
        p = MaxBRkNNProblem([(0, 0), (5, 0)], [(1, 0), (6, 0)], k=1,
                            weights=[2.0, 3.0])
        nlcs = build_nlcs(p)
        scores = {int(o): float(s) for o, s in zip(nlcs.owners,
                                                   nlcs.scores)}
        assert scores == {0: pytest.approx(2.0), 1: pytest.approx(3.0)}

    def test_zero_weight_customer_dropped(self):
        p = MaxBRkNNProblem([(0, 0), (5, 0)], [(1, 0)], k=1,
                            weights=[0.0, 1.0])
        nlcs = build_nlcs(p)
        assert len(nlcs) == 1
        assert nlcs.owners.tolist() == [1]

    def test_per_object_models(self):
        models = [ProbabilityModel.of(0.8, 0.2),
                  ProbabilityModel.of(0.6, 0.4)]
        p = MaxBRkNNProblem([(0, 0), (5, 0)], [(1, 0), (2, 0)], k=2,
                            probability=models)
        nlcs = build_nlcs(p)
        scores = {(int(o), int(l)): float(s)
                  for o, l, s in zip(nlcs.owners, nlcs.levels, nlcs.scores)}
        assert scores[(0, 1)] == pytest.approx(0.6)
        assert scores[(0, 2)] == pytest.approx(0.2)
        assert scores[(1, 1)] == pytest.approx(0.2)
        assert scores[(1, 2)] == pytest.approx(0.4)

    def test_customer_on_site_zero_radius(self):
        p = MaxBRkNNProblem([(1.0, 1.0)], [(1.0, 1.0), (5, 5)], k=1)
        nlcs = build_nlcs(p)
        assert nlcs.r[0] == 0.0


class TestNlcSpace:
    def test_space_covers_all_circles(self, small_k2_problem):
        nlcs = build_nlcs(small_k2_problem)
        space = nlc_space(nlcs)
        box = nlcs.bounding_box()
        assert space.contains_rect(box)
        assert space.area > box.area  # strictly expanded
