"""Tests for repro.core.bounds — the two classification backends."""

import numpy as np
import pytest

from repro.core.bounds import RTreeBackend, VectorBackend, make_backend
from repro.core.nlc import build_nlcs, nlc_space
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


@pytest.fixture
def nlcs(small_k2_problem) -> CircleSet:
    return build_nlcs(small_k2_problem)


class TestFactory:
    def test_known_backends(self, nlcs):
        assert isinstance(make_backend("vector", nlcs), VectorBackend)
        assert isinstance(make_backend("rtree", nlcs), RTreeBackend)

    def test_unknown_backend(self, nlcs):
        with pytest.raises(ValueError):
            make_backend("quadtree", nlcs)


class TestBackendEquivalence:
    def test_identical_classification(self, nlcs, rng):
        """Both backends must produce identical Quadrants (DESIGN.md §5.1)."""
        vector = VectorBackend(nlcs)
        rtree = RTreeBackend(nlcs)
        space = nlc_space(nlcs)
        root = vector.root_candidates()
        for _ in range(40):
            x1, y1 = rng.random(2)
            w, h = rng.uniform(0.01, 0.5, 2)
            rect = Rect(float(x1), float(y1), float(x1 + w), float(y1 + h))
            qv = vector.classify(rect, root, depth=1)
            qr = rtree.classify(rect, root, depth=1)
            assert np.array_equal(qv.intersecting, qr.intersecting)
            assert np.array_equal(qv.containing_mask, qr.containing_mask)
            assert qv.max_hat == pytest.approx(qr.max_hat)
            assert qv.min_hat == pytest.approx(qr.min_hat)

    def test_equivalence_with_graze_tol(self, nlcs):
        vector = VectorBackend(nlcs, graze_tol=1e-9)
        rtree = RTreeBackend(nlcs, graze_tol=1e-9)
        rect = nlc_space(nlcs)
        qv = vector.classify(rect, vector.root_candidates(), 0)
        qr = rtree.classify(rect, rtree.root_candidates(), 0)
        assert np.array_equal(qv.intersecting, qr.intersecting)
        assert qv.min_hat == pytest.approx(qr.min_hat)

    def test_hierarchical_passing_matches_full(self, nlcs):
        """Classifying a child against its parent's I equals classifying
        it against the full NLC set — the invariant hierarchical
        candidate passing relies on."""
        vector = VectorBackend(nlcs)
        space = nlc_space(nlcs)
        parent = vector.classify(space, vector.root_candidates(), 0)
        for child_rect in space.split_center():
            via_parent = vector.classify(child_rect, parent.intersecting, 1)
            via_full = vector.classify(child_rect,
                                       vector.root_candidates(), 1)
            assert np.array_equal(via_parent.intersecting,
                                  via_full.intersecting)
            assert via_parent.max_hat == via_full.max_hat
            assert via_parent.min_hat == via_full.min_hat
