"""Tests for repro.core.influence."""

import numpy as np
import pytest

from repro.core.influence import (InfluenceBreakdown, InfluenceEvaluator,
                                  influence_at)
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem


class TestInfluenceAt:
    def test_simple_k1(self):
        # Customer at origin, site 3 away: any location within 3 of the
        # customer wins it.
        problem = MaxBRkNNProblem([(0, 0)], [(3, 0)])
        assert influence_at(problem, 1.0, 0.0).total == 1.0
        assert influence_at(problem, 10.0, 0.0).total == 0.0

    def test_k2_annulus_probabilities(self):
        # Sites at distance 1 and 2; probability model {0.8, 0.2}.
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0), (-2, 0)], k=2,
                                  probability=[0.8, 0.2])
        # Inside c1 (closer than the nearest site): 80%.
        assert influence_at(problem, 0.0, 0.5).total == pytest.approx(0.8)
        # In the annulus between c1 and c2: 20%.
        assert influence_at(problem, 1.5, 0.0).total == pytest.approx(0.2)
        # Outside c2: nothing.
        assert influence_at(problem, 5.0, 0.0).total == 0.0

    def test_weights_scale(self):
        problem = MaxBRkNNProblem([(0, 0)], [(3, 0)], weights=[4.0])
        assert influence_at(problem, 0.0, 0.0).total == pytest.approx(4.0)

    def test_breakdown_customers(self):
        problem = MaxBRkNNProblem([(0, 0), (1, 0), (50, 50)],
                                  [(5, 0), (55, 50)])
        b = influence_at(problem, 0.5, 0.0)
        assert isinstance(b, InfluenceBreakdown)
        assert set(b.customers) == {0, 1}
        assert b.customer_count == 2
        assert b.customers[0] == pytest.approx(1.0)

    def test_breakdown_merges_annuli(self):
        # A k=2 customer contributes its summed probability once.
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0), (-2, 0)], k=2,
                                  probability=[0.8, 0.2])
        b = influence_at(problem, 0.0, 0.5)
        assert b.customers == {0: pytest.approx(0.8)}


class TestEvaluator:
    def test_reuses_nlcs(self, small_uniform_problem):
        evaluator = InfluenceEvaluator(small_uniform_problem)
        result = MaxFirst().solve(small_uniform_problem)
        shared = InfluenceEvaluator(small_uniform_problem,
                                    nlcs=result.nlcs)
        assert shared.total_score(0.5, 0.5) == pytest.approx(
            evaluator.total_score(0.5, 0.5))

    def test_rank_candidates_sorted(self, small_uniform_problem):
        evaluator = InfluenceEvaluator(small_uniform_problem)
        ranked = evaluator.rank_candidates(
            [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9), (2.0, 2.0)])
        totals = [b.total for b in ranked]
        assert totals == sorted(totals, reverse=True)

    def test_rank_candidates_bad_shape(self, small_uniform_problem):
        evaluator = InfluenceEvaluator(small_uniform_problem)
        with pytest.raises(ValueError):
            evaluator.rank_candidates([1.0, 2.0, 3.0])

    def test_optimum_beats_all_candidates(self, small_k2_problem, rng):
        """No sampled location may beat the MaxFirst optimum."""
        result = MaxFirst().solve(small_k2_problem)
        evaluator = InfluenceEvaluator(small_k2_problem, nlcs=result.nlcs,
                                       boundary_tol=0.0)
        samples = rng.random((300, 2))
        best = max(evaluator.total_score(float(x), float(y))
                   for x, y in samples)
        assert best <= result.score + 1e-9
