"""Tests for repro.core.maxfirst (Algorithm 1 and the full solver)."""

import math

import numpy as np
import pytest

from repro.baselines.reference import reference_solve, reference_solve_nlcs
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.core.scoring import neighborhood_score
from repro.datasets.synthetic import synthetic_instance
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet

from tests.conftest import assert_scores_close


class TestConstructorValidation:
    def test_invalid_m_threshold(self):
        with pytest.raises(ValueError):
            MaxFirst(m_threshold=0)

    def test_invalid_theorem3(self):
        with pytest.raises(ValueError):
            MaxFirst(theorem3="maybe")

    def test_invalid_top_t(self):
        with pytest.raises(ValueError):
            MaxFirst(top_t=0)

    def test_invalid_tolerances(self):
        with pytest.raises(ValueError):
            MaxFirst(tie_tol=-1.0)
        with pytest.raises(ValueError):
            MaxFirst(resolution_fraction=-1.0)

    def test_empty_nlcs_raises(self):
        empty = CircleSet(np.zeros(0), np.zeros(0), np.zeros(0),
                          np.zeros(0))
        with pytest.raises(ValueError):
            MaxFirst().solve_nlcs(empty)


class TestTinyInstances:
    def test_one_customer_one_site(self):
        result = MaxFirst().solve(MaxBRkNNProblem([(0, 0)], [(2, 0)]))
        assert result.score == pytest.approx(1.0)
        region = result.best_region
        # The optimal region is the customer's full NLC (radius 2 disk).
        assert region.area == pytest.approx(math.pi * 4, rel=1e-6)
        assert region.contains_point(0.0, 0.0)

    def test_two_disjoint_customers_tie(self):
        result = MaxFirst().solve(MaxBRkNNProblem(
            [(0, 0), (100, 100)], [(1, 0), (101, 100)]))
        assert result.score == pytest.approx(1.0)
        assert len(result.regions) == 2  # both NLCs tie at 1.0

    def test_two_overlapping_customers(self):
        result = MaxFirst().solve(MaxBRkNNProblem(
            [(0, 0), (1, 0)], [(3, 0), (-3, 0)]))
        assert result.score == pytest.approx(2.0)
        region = result.best_region
        # The optimum is the lens of the two NLCs; the midpoint is in it.
        assert region.contains_point(0.5, 0.0)

    def test_weighted_customers(self):
        # The heavy customer's NLC wins even though two light ones
        # overlap.
        result = MaxFirst().solve(MaxBRkNNProblem(
            [(0, 0), (0.5, 0), (100, 0)],
            [(3, 0), (103, 0)],
            weights=[1.0, 1.0, 5.0]))
        assert result.score == pytest.approx(5.0)
        assert result.best_region.contains_point(100.0, 0.0)

    def test_k2_skewed_prefers_first_circles(self):
        # Two customers whose first NLCs overlap beat three whose second
        # NLCs overlap when prob favours the nearest site.
        customers = [(0, 0), (1, 0), (10, 0), (10.5, 0), (11, 0)]
        sites = [(0.5, 2), (10.5, 4), (-50, 0)]
        result = MaxFirst().solve(MaxBRkNNProblem(
            customers, sites, k=2, probability=[0.9, 0.1]))
        ref = reference_solve(MaxBRkNNProblem(
            customers, sites, k=2, probability=[0.9, 0.1]))
        assert_scores_close(result.score, ref.score)

    def test_customer_on_site(self):
        # Zero-radius NLC: nothing can be strictly closer; the other
        # customer's region wins.
        result = MaxFirst().solve(MaxBRkNNProblem(
            [(1, 1), (5, 5)], [(1, 1), (9, 9)]))
        assert result.score == pytest.approx(1.0)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k,probability", [
        (1, None),
        (2, None),
        (2, [0.8, 0.2]),
        (3, [0.5, 0.3, 0.2]),
    ])
    def test_random_instances(self, seed, k, probability):
        customers, sites = synthetic_instance(
            120, 10, "uniform", seed=seed)
        problem = MaxBRkNNProblem(customers, sites, k=k,
                                  probability=probability)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score,
                            context=f"seed={seed} k={k}")

    @pytest.mark.parametrize("seed", range(4))
    def test_normal_distribution(self, seed):
        customers, sites = synthetic_instance(
            150, 8, "normal", seed=seed)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)

    @pytest.mark.parametrize("seed", range(4))
    def test_weighted_instances(self, seed):
        rng = np.random.default_rng(seed)
        customers, sites = synthetic_instance(100, 9, "uniform",
                                              seed=seed + 50)
        weights = rng.uniform(0.1, 3.0, 100)
        problem = MaxBRkNNProblem(customers, sites, k=2, weights=weights,
                                  probability=[0.7, 0.3])
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)

    def test_per_object_models(self):
        from repro.core.probability import ProbabilityModel
        customers, sites = synthetic_instance(80, 8, "uniform", seed=3)
        models = [ProbabilityModel.of(0.8, 0.2) if i % 2 == 0
                  else ProbabilityModel.uniform(2)
                  for i in range(80)]
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  probability=models)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)


class TestRegionsAreOptimal:
    def test_returned_locations_achieve_score(self, small_k2_problem):
        result = MaxFirst().solve(small_k2_problem)
        nlcs = result.nlcs
        tol = 1e-9 * max(result.space.width, result.space.height)
        for region in result.regions:
            p = region.representative_point()
            value = neighborhood_score(nlcs, p.x, p.y, tol=tol)
            assert_scores_close(value, result.score,
                                context="representative point")

    def test_region_interior_uniform_score(self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        nlcs = result.nlcs
        region = result.best_region
        rng = np.random.default_rng(0)
        box = region.shape.bounding_box()
        hits = 0
        for _ in range(500):
            x = box.xmin + rng.random() * max(box.width, 1e-12)
            y = box.ymin + rng.random() * max(box.height, 1e-12)
            if region.contains_point(x, y, tol=-1e-12):
                hits += 1
                value = neighborhood_score(nlcs, x, y, tol=1e-12)
                assert value >= result.score - 1e-9
        assert hits > 0

    def test_distinct_regions_have_distinct_covers(
            self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        covers = [frozenset(r.cover) for r in result.regions]
        assert len(covers) == len(set(covers))


class TestIntersectionPointProblem:
    def circles_through_origin(self, angles, radius=1.0):
        return [Circle(radius * math.cos(t), radius * math.sin(t), radius)
                for t in angles]

    def test_three_circles_meeting_terminate(self):
        circles = self.circles_through_origin((0.1, 2.2, 4.3))
        nlcs = CircleSet.from_circles(circles, scores=[1.0] * 3)
        result = MaxFirst().solve_nlcs(nlcs)
        # Region semantics: the common point has empty interior; the best
        # full-dimensional regions are the pairwise lenses (score 2).
        assert result.score == pytest.approx(2.0)
        assert len(result.regions) == 3  # all three lenses tie

    def test_many_circles_through_a_site(self):
        # The pervasive real case: many customers share their nearest
        # site, so all their NLCs pass through it exactly.
        rng = np.random.default_rng(7)
        site = np.array([0.5, 0.5])
        customers = site + rng.normal(scale=0.2, size=(40, 2))
        sites = np.vstack([site, [[5.0, 5.0]]])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)
        # The pointwise score AT the site exceeds the region optimum —
        # the trap the intersection-point machinery must not fall into.
        nlcs = build_nlcs(problem)
        at_site = nlcs.cover_score_at(float(site[0]), float(site[1]),
                                      tol=1e-12)
        assert at_site > result.score

    def test_m_threshold_does_not_change_result(self):
        customers, sites = synthetic_instance(100, 8, "uniform", seed=9)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        scores = {m: MaxFirst(m_threshold=m).solve(problem).score
                  for m in (1, 2, 4, 16)}
        values = list(scores.values())
        for v in values[1:]:
            assert v == pytest.approx(values[0])


class TestSolverOptions:
    def test_backends_agree(self, small_k2_problem):
        vector = MaxFirst(backend="vector").solve(small_k2_problem)
        rtree = MaxFirst(backend="rtree").solve(small_k2_problem)
        assert vector.score == pytest.approx(rtree.score)
        assert len(vector.regions) == len(rtree.regions)

    def test_theorem3_modes_agree(self, small_uniform_problem):
        results = {mode: MaxFirst(theorem3=mode).solve(
            small_uniform_problem) for mode in ("subset", "equality")}
        assert results["equality"].score == pytest.approx(
            results["subset"].score)
        # Subset pruning never does more splitting work than equality.
        assert (results["subset"].stats.splits
                <= results["equality"].stats.splits)

    def test_theorem3_off_rejected(self):
        # Theorem 3 is required for termination; "off" is not a mode.
        with pytest.raises(ValueError):
            MaxFirst(theorem3="off")

    def test_keep_zero_score_same_result(self, small_uniform_problem):
        customers = small_uniform_problem.customers
        sites = small_uniform_problem.sites
        problem = MaxBRkNNProblem(customers, sites, k=2)
        drop = MaxFirst().solve(problem)
        keep = MaxFirst(keep_zero_score_nlcs=True).solve(problem)
        assert drop.score == pytest.approx(keep.score)

    def test_max_iterations_guard(self, small_uniform_problem):
        with pytest.raises(RuntimeError):
            MaxFirst(max_iterations=3).solve(small_uniform_problem)

    def test_stats_accounting(self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        s = result.stats
        # Every generated quadrant is eventually split, pruned (by
        # Theorem 2, Theorem 3, or the compatibility refinement), or a
        # result; re-queues pop twice but are generated once.
        assert s.generated == (s.splits + s.pruned_theorem2
                               + s.pruned_theorem3 + s.pruned_refined
                               + s.results)
        assert s.generated >= 4
        assert s.results >= 1

    def test_timings_recorded(self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        assert set(result.timings) == {"nlc", "phase1", "phase2"}
        assert all(v >= 0 for v in result.timings.values())


class TestTopT:
    def test_top1_equals_default(self, small_uniform_problem):
        default = MaxFirst().solve(small_uniform_problem)
        top1 = MaxFirst(top_t=1).solve(small_uniform_problem)
        assert default.score == pytest.approx(top1.score)

    def test_top3_scores_descend_and_start_at_optimum(
            self, small_uniform_problem):
        result = MaxFirst(top_t=3).solve(small_uniform_problem)
        ref = reference_solve_nlcs(result.nlcs)
        scores = [r.score for r in result.regions]
        assert scores[0] == pytest.approx(ref.score)
        assert scores == sorted(scores, reverse=True)
        distinct = sorted({round(s, 9) for s in scores}, reverse=True)
        assert len(distinct) <= 3

    def test_top_t_regions_guarantee_scores(self, small_k2_problem):
        result = MaxFirst(top_t=2).solve(small_k2_problem)
        nlcs = result.nlcs
        for region in result.regions:
            p = region.representative_point()
            value = neighborhood_score(nlcs, p.x, p.y, tol=1e-12)
            assert value >= region.score - 1e-9


class TestEchoFreeChildren:
    """Splitting must never re-push the quadrant itself (an echo loops
    the search forever at increasing depth)."""

    RECT = Rect(0.0, 0.0, 1.0, 1.0)

    @staticmethod
    def _children(rect, x, y):
        from repro.core.maxfirst import _echo_free_children
        return _echo_free_children(rect, rect.split_at(x, y))

    def test_interior_split_passes_through(self):
        out = self._children(self.RECT, 0.25, 0.75)
        assert len(out) == 4
        assert self.RECT not in out

    @pytest.mark.parametrize("x,y", [
        (1.0, 1.0),  # top-right corner: children[0] == rect and is
                     # full-dimensional — the regression the guard missed
        (0.0, 0.0), (0.0, 1.0), (1.0, 0.0),
    ])
    def test_corner_split_never_echoes(self, x, y):
        out = self._children(self.RECT, x, y)
        assert self.RECT not in out
        # The echo is replaced by the centre split, so full coverage of
        # the rectangle survives.
        assert any(c.xmax - c.xmin == 0.5 and c.ymax - c.ymin == 0.5
                   for c in out)

    @pytest.mark.parametrize("x,y", [
        (0.5, 1.0), (0.5, 0.0), (0.0, 0.5), (1.0, 0.5),
    ])
    def test_edge_split_never_echoes(self, x, y):
        out = self._children(self.RECT, x, y)
        assert self.RECT not in out
