"""Hot-path and backend agreement for the batched Phase I rewrite.

``hotpath="batched"`` (batched kernel calls, cover-identity bitsets,
vectorised refinement) must walk *exactly* the same search as
``hotpath="legacy"`` (the seed hot path): same optimum, same stats
counters.  Likewise the rewritten vector backend must agree with the
paper-literal R-tree backend.  These pin the perf work of
bench_phase1_hotpath.py to the seed semantics.
"""

import numpy as np
import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance

STAT_FIELDS = (
    "generated", "splits", "pruned_theorem2", "pruned_theorem3", "results",
    "point_splits", "intersection_checks", "refinement_checks",
    "pruned_refined", "resolution_closed", "max_depth",
)


def stats_dict(result):
    return {name: getattr(result.stats, name) for name in STAT_FIELDS}


def build(seed, n_customers=160, n_sites=14, distribution="uniform", k=1):
    customers, sites = synthetic_instance(n_customers, n_sites,
                                          distribution, seed=seed)
    return build_nlcs(MaxBRkNNProblem(customers, sites, k=k))


class TestHotpathAgreement:
    @pytest.mark.parametrize("distribution", ["uniform", "normal",
                                              "clustered"])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_batched_equals_legacy(self, distribution, k):
        nlcs = build(seed=hash((distribution, k)) % 2**31,
                     distribution=distribution, k=k)
        batched = MaxFirst(hotpath="batched").solve_nlcs(nlcs)
        legacy = MaxFirst(hotpath="legacy").solve_nlcs(nlcs)
        assert batched.score == legacy.score
        assert stats_dict(batched) == stats_dict(legacy)

    @pytest.mark.parametrize("seed", range(6))
    def test_batched_equals_legacy_random(self, seed):
        nlcs = build(seed=seed * 7919 + 1)
        batched = MaxFirst(hotpath="batched").solve_nlcs(nlcs)
        legacy = MaxFirst(hotpath="legacy").solve_nlcs(nlcs)
        assert batched.score == legacy.score
        assert stats_dict(batched) == stats_dict(legacy)

    def test_top_t_regions_agree(self):
        nlcs = build(seed=424, n_customers=200, n_sites=16, k=2)
        batched = MaxFirst(hotpath="batched", top_t=3).solve_nlcs(nlcs)
        legacy = MaxFirst(hotpath="legacy", top_t=3).solve_nlcs(nlcs)
        assert [r.score for r in batched.regions] == \
            [r.score for r in legacy.regions]

    def test_unknown_hotpath_rejected(self):
        with pytest.raises(ValueError):
            MaxFirst(hotpath="turbo")


class TestBackendAgreement:
    """The rewritten vector backend against the paper-literal R-tree."""

    @pytest.mark.parametrize("distribution", ["uniform", "normal",
                                              "clustered"])
    def test_vector_equals_rtree(self, distribution):
        nlcs = build(seed=hash(("backend", distribution)) % 2**31,
                     distribution=distribution)
        vector = MaxFirst(backend="vector").solve_nlcs(nlcs)
        rtree = MaxFirst(backend="rtree").solve_nlcs(nlcs)
        assert vector.score == rtree.score

    @pytest.mark.parametrize("seed", range(4))
    def test_vector_equals_rtree_random_k2(self, seed):
        nlcs = build(seed=seed * 104729 + 3, k=2)
        vector = MaxFirst(backend="vector").solve_nlcs(nlcs)
        rtree = MaxFirst(backend="rtree").solve_nlcs(nlcs)
        assert vector.score == rtree.score
