"""Tests for repro.core.region (Phase II / Algorithm 2)."""

import numpy as np
import pytest

from repro.core.nlc import build_nlcs
from repro.core.region import OptimalRegion, compute_optimal_region
from repro.geometry.circle import Circle
from repro.geometry.intersection import intersect_disks
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


def circle_set(circles, scores=None):
    return CircleSet.from_circles(circles, scores=scores)


class TestComputeOptimalRegion:
    def test_empty_cover(self):
        cs = circle_set([Circle(0, 0, 1)])
        region = compute_optimal_region(Rect(5, 5, 6, 6),
                                        np.array([], dtype=np.int64), cs,
                                        score=0.0)
        assert region.shape is None
        assert region.score == 0.0
        assert region.contains_point(5.5, 5.5)
        assert region.representative_point().x == pytest.approx(5.5)
        assert region.area == pytest.approx(1.0)

    def test_single_cover_is_full_disk(self):
        cs = circle_set([Circle(0, 0, 2)])
        region = compute_optimal_region(
            Rect(-0.1, -0.1, 0.1, 0.1), np.array([0]), cs, score=1.0)
        assert region.shape is not None
        assert region.area == pytest.approx(np.pi * 4)
        assert region.clipping_count == 1

    def test_matches_full_intersection(self, rng):
        """Algorithm 2's early stop must not change the region."""
        for trial in range(15):
            quad_center = rng.uniform(0.4, 0.6, 2)
            circles = []
            for _ in range(rng.integers(2, 10)):
                # Disks all covering the quadrant around quad_center.
                cx, cy = quad_center + rng.uniform(-0.5, 0.5, 2)
                d = np.hypot(cx - quad_center[0], cy - quad_center[1])
                r = d + rng.uniform(0.1, 1.0)
                circles.append(Circle(float(cx), float(cy), float(r)))
            cs = circle_set(circles)
            half = 0.005
            quad = Rect(float(quad_center[0] - half),
                        float(quad_center[1] - half),
                        float(quad_center[0] + half),
                        float(quad_center[1] + half))
            cover = np.flatnonzero(cs.contains_rect_mask(quad))
            if len(cover) < 2:
                continue
            region = compute_optimal_region(quad, cover, cs, score=1.0)
            full = intersect_disks([circles[int(i)] for i in cover])
            assert region.shape.area == pytest.approx(full.area, rel=1e-9)

    def test_early_stop_skips_distant_disks(self):
        # Two tight disks and one huge one far from clipping range: the
        # huge disk must not be intersected.
        circles = [Circle(0, 0, 1), Circle(0.5, 0, 1), Circle(0, 0, 100)]
        cs = circle_set(circles)
        quad = Rect(0.2, -0.05, 0.3, 0.05)
        region = compute_optimal_region(quad, np.array([0, 1, 2]), cs,
                                        score=1.0)
        assert region.clipping_count == 2
        # And the region still equals the full three-way intersection
        # (the huge disk is redundant).
        full = intersect_disks(circles)
        assert region.shape.area == pytest.approx(full.area, rel=1e-9)

    def test_region_contains_seed_quadrant(self, small_k2_problem):
        nlcs = build_nlcs(small_k2_problem)
        # Construct a quadrant covered by at least two NLCs.
        idx = 0
        x, y = float(nlcs.cx[idx]), float(nlcs.cy[idx])
        quad = Rect(x - 1e-4, y - 1e-4, x + 1e-4, y + 1e-4)
        cover = np.flatnonzero(nlcs.contains_rect_mask(quad))
        region = compute_optimal_region(quad, cover, nlcs, score=1.0)
        for corner in quad.corners():
            assert region.contains_point(corner.x, corner.y, tol=1e-9)

    def test_cover_recorded(self):
        cs = circle_set([Circle(0, 0, 1), Circle(0.1, 0, 1)])
        region = compute_optimal_region(
            Rect(0, 0, 0.01, 0.01), np.array([1, 0]), cs, score=2.0)
        assert region.cover == (1, 0)
        assert region.score == 2.0


class TestOptimalRegionApi:
    def _region(self):
        cs = circle_set([Circle(0, 0, 1), Circle(0.5, 0, 1)])
        return compute_optimal_region(
            Rect(0.24, -0.01, 0.26, 0.01), np.array([0, 1]), cs,
            score=2.0)

    def test_contains_point(self):
        region = self._region()
        assert region.contains_point(0.25, 0.0)
        assert not region.contains_point(-0.8, 0.0)

    def test_representative_point_in_region(self):
        region = self._region()
        p = region.representative_point()
        assert region.contains_point(p.x, p.y)

    def test_area_positive(self):
        assert self._region().area > 0.0

    def test_is_dataclass_frozen(self):
        region = self._region()
        with pytest.raises(AttributeError):
            region.score = 3.0
