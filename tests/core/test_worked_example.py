"""The paper's running example (Figures 1-3 / Table I analogue), exact.

These tests pin the headline numbers of the paper's motivating example:
1.6 vs 0.6 under {0.8, 0.2}, and MaxFirst == MaxOverlap == 1.5 under
{0.5, 0.5}.
"""

import numpy as np
import pytest

import repro
from repro.baselines.reference import reference_solve
from repro.bench.worked_example import (
    EXPECTED_SKEWED_SCORE, EXPECTED_THREE_CUSTOMER_SCORE_SKEWED,
    EXPECTED_UNIFORM_SCORE, SKEWED_MODEL, UNIFORM_MODEL,
    initial_quadrant_bounds, worked_example_problem)
from repro.core.nlc import knn_distances


class TestSceneConstruction:
    def test_designed_knn_structure(self):
        """The scene is built so o1/o2 share p4 as their second-nearest
        site and each customer has a distinct nearest site."""
        p = worked_example_problem()
        d = knn_distances(p.customers, p.sites, 2)
        # o1: nearest p1 at 1.0, second p4 at ~1.118.
        assert d[0, 0] == pytest.approx(1.0)
        assert d[0, 1] == pytest.approx(np.hypot(1.0, 0.5))
        # o2: nearest p2, second p4.
        assert d[1, 0] == pytest.approx(np.hypot(0.5, 1.5))
        assert d[1, 1] == pytest.approx(np.hypot(3.0, 0.5))
        # o3: nearest p3, second p2.
        assert d[2, 0] == pytest.approx(1.2)
        assert d[2, 1] == pytest.approx(np.hypot(0.5, 3.5))


class TestSkewedModel:
    def test_optimum_is_160_percent(self):
        result = repro.MaxFirst().solve(worked_example_problem(SKEWED_MODEL))
        assert result.score == pytest.approx(EXPECTED_SKEWED_SCORE)
        assert len(result.regions) == 1

    def test_optimal_region_serves_o2_o3_at_80(self):
        problem = worked_example_problem(SKEWED_MODEL)
        result = repro.MaxFirst().solve(problem)
        p = result.optimal_location()
        breakdown = repro.influence_at(problem, p.x, p.y)
        assert breakdown.customers == {
            1: pytest.approx(0.8), 2: pytest.approx(0.8)}

    def test_three_customer_region_only_60_percent(self):
        """The region MaxOverlap's equal-probability optimum corresponds
        to is worth only 0.6 under the skewed model (paper Figure 2)."""
        problem = worked_example_problem(SKEWED_MODEL)
        uniform_result = repro.MaxFirst().solve(
            worked_example_problem(UNIFORM_MODEL))
        p = uniform_result.optimal_location()
        value = repro.influence_at(problem, p.x, p.y).total
        assert value == pytest.approx(EXPECTED_THREE_CUSTOMER_SCORE_SKEWED)

    def test_all_solvers_agree(self):
        problem = worked_example_problem(SKEWED_MODEL)
        mf = repro.MaxFirst().solve(problem)
        mo = repro.MaxOverlap().solve(problem)
        ref = reference_solve(problem)
        assert mf.score == pytest.approx(ref.score)
        assert mo.score == pytest.approx(ref.score)


class TestUniformModel:
    def test_optimum_is_150_percent(self):
        result = repro.MaxFirst().solve(
            worked_example_problem(UNIFORM_MODEL))
        assert result.score == pytest.approx(EXPECTED_UNIFORM_SCORE)

    def test_maxfirst_matches_maxoverlap_region(self):
        """Paper: 'MaxFirst will return the same optimal region as
        MaxOverlap if the probability model is {0.5, 0.5}'."""
        problem = worked_example_problem(UNIFORM_MODEL)
        mf = repro.MaxFirst().solve(problem)
        mo = repro.MaxOverlap().solve(problem)
        assert mf.score == pytest.approx(mo.score)
        assert len(mf.regions) == len(mo.regions) == 1
        # Same geometry: each solver's representative point is in the
        # other's region.
        p_mf = mf.optimal_location()
        p_mo = mo.optimal_location()
        assert mo.regions[0].contains_point(p_mf.x, p_mf.y, tol=1e-9)
        assert mf.regions[0].contains_point(p_mo.x, p_mo.y, tol=1e-9)

    def test_serves_three_customers_at_50(self):
        problem = worked_example_problem(UNIFORM_MODEL)
        result = repro.MaxFirst().solve(problem)
        p = result.optimal_location()
        breakdown = repro.influence_at(problem, p.x, p.y)
        assert breakdown.customer_count == 3
        assert all(v == pytest.approx(0.5)
                   for v in breakdown.customers.values())


class TestBoundTable:
    def test_table1_analogue_structure(self):
        rows = initial_quadrant_bounds(generations=2)
        # 4 root quadrants + 4 per further generation.
        assert len(rows) == 12
        assert {row["generation"] for row in rows} == {0, 1, 2}
        for row in rows:
            assert row["min_hat"] <= row["max_hat"] + 1e-12

    def test_bounds_converge_toward_optimum(self):
        rows = initial_quadrant_bounds(generations=6)
        best_min = max(row["min_hat"] for row in rows)
        best_max = max(row["max_hat"] for row in rows)
        # The maximum m̂ax never drops below the optimum, and m̂in
        # approaches it from below.
        assert best_max >= EXPECTED_SKEWED_SCORE - 1e-9
        assert best_min <= EXPECTED_SKEWED_SCORE + 1e-9
