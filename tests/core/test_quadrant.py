"""Tests for repro.core.quadrant."""

import numpy as np
import pytest

from repro.core.quadrant import MaxFirstStats, Quadrant, _MutableStats
from repro.geometry.rect import Rect


def make_quadrant(inter, contain_mask, max_hat, min_hat,
                  rect=Rect(0, 0, 1, 1)):
    return Quadrant(rect=rect,
                    intersecting=np.array(inter, dtype=np.int64),
                    containing_mask=np.array(contain_mask, dtype=bool),
                    max_hat=max_hat, min_hat=min_hat)


class TestQuadrant:
    def test_theorem1_violation_raises(self):
        with pytest.raises(ValueError):
            make_quadrant([0], [False], max_hat=1.0, min_hat=2.0)

    def test_containing_and_boundary(self):
        q = make_quadrant([3, 5, 9], [True, False, True], 3.0, 2.0)
        assert q.containing.tolist() == [3, 9]
        assert q.boundary_only.tolist() == [5]

    def test_consistency(self):
        assert make_quadrant([1, 2], [True, True], 2.0, 2.0).is_consistent
        assert not make_quadrant([1, 2], [True, False], 2.0,
                                 1.0).is_consistent
        # Empty I: trivially consistent (score 0 everywhere).
        assert make_quadrant([], [], 0.0, 0.0).is_consistent

    def test_same_frontier(self):
        a = make_quadrant([1, 2], [True, False], 2.0, 1.0)
        b = make_quadrant([1, 2], [False, False], 2.0, 1.0,
                          rect=Rect(0, 0, 0.5, 0.5))
        c = make_quadrant([1, 3], [True, False], 2.0, 1.0)
        d = make_quadrant([1, 2], [True, False], 2.0, 0.5)
        assert a.same_frontier(b)
        assert not a.same_frontier(c)   # different I
        assert not a.same_frontier(d)   # different min
        assert a.same_frontier(d, tol=1.0)

    def test_cover_key_hashable(self):
        q = make_quadrant([4, 7, 2], [True, True, False], 3.0, 2.0)
        assert q.cover_key() == (4, 7)
        assert hash(q.cover_key()) == hash((4, 7))


class TestStats:
    def test_freeze_copies_values(self):
        acc = _MutableStats()
        acc.generated = 10
        acc.splits = 3
        acc.pruned_theorem2 = 5
        frozen = acc.freeze()
        assert isinstance(frozen, MaxFirstStats)
        assert frozen.generated == 10
        assert frozen.splits == 3
        acc.generated = 99
        assert frozen.generated == 10  # decoupled

    def test_as_dict_round_trip(self):
        stats = MaxFirstStats(generated=4, splits=1, pruned_theorem2=2,
                              pruned_theorem3=1, results=1)
        d = stats.as_dict()
        assert d["generated"] == 4
        assert d["pruned_theorem2"] == 2
        assert set(d) >= {"generated", "splits", "pruned_theorem2",
                          "pruned_theorem3", "results", "max_depth"}

    def test_stats_immutable(self):
        stats = MaxFirstStats()
        with pytest.raises(AttributeError):
            stats.generated = 5
