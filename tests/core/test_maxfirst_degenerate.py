"""Stress tests for MaxFirst on degeneracy-rich inputs.

The inputs here are the ones a naive Algorithm 1 transcription fails on
(see docs/algorithm.md §4): exact tangencies, lattice data, massive
coincidence points, collinear everything.  Every case must terminate,
match the reference solver, and leave the resolution guard unused (or
nearly so).
"""

import math

import numpy as np
import pytest

from repro.baselines.reference import reference_solve, reference_solve_nlcs
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.geometry.circle import Circle
from repro.index.circleset import CircleSet

from tests.conftest import assert_scores_close


class TestLatticeData:
    def test_5x5_lattice_four_sites(self):
        xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
        customers = np.column_stack((xs.ravel(), ys.ravel()))
        sites = np.array([[0.5, 0.5], [3.5, 3.5], [0.5, 3.5],
                          [3.5, 0.5]])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)
        assert result.stats.pruned_refined > 0  # tangency machinery used

    def test_lattice_k2(self):
        xs, ys = np.meshgrid(np.arange(4.0), np.arange(4.0))
        customers = np.column_stack((xs.ravel(), ys.ravel()))
        sites = np.array([[0.5, 0.5], [2.5, 2.5], [0.5, 2.5]])
        problem = MaxBRkNNProblem(customers, sites, k=2)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)

    def test_snapped_random_data(self):
        rng = np.random.default_rng(5)
        customers = np.round(rng.uniform(0, 1, (150, 2)) * 10) / 10
        sites = np.round(rng.uniform(0, 1, (8, 2)) * 10) / 10
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)


class TestExactTangencies:
    def test_chain_of_tangent_circles(self):
        # Unit circles centred at even integers: consecutive pairs are
        # exactly tangent; no open overlap anywhere -> optimum 1.
        circles = [Circle(2.0 * i, 0.0, 1.0) for i in range(8)]
        nlcs = CircleSet.from_circles(circles)
        result = MaxFirst().solve_nlcs(nlcs)
        assert result.score == pytest.approx(1.0)
        assert len(result.regions) == 8  # every disk ties

    def test_tangent_pair_plus_winner(self):
        # Two tangent unit disks (phantom pointwise 2 at the tangency)
        # and a genuinely overlapping pair elsewhere scoring 2.
        circles = [Circle(0, 0, 1), Circle(2, 0, 1),
                   Circle(10, 0, 1), Circle(10.5, 0, 1)]
        nlcs = CircleSet.from_circles(circles)
        result = MaxFirst().solve_nlcs(nlcs)
        assert result.score == pytest.approx(2.0)
        assert result.best_region.contains_point(10.25, 0.0)

    def test_flower_of_tangent_petals(self):
        # Six unit circles around a centre at distance 2: each petal is
        # exactly tangent to the centre circle AND to its neighbours
        # (adjacent centres are 2*2*sin(30°) = 2 apart) — a fully tangent
        # flower with no open overlap anywhere.
        circles = [Circle(0, 0, 1)]
        for i in range(6):
            theta = i * math.pi / 3
            circles.append(Circle(2 * math.cos(theta),
                                  2 * math.sin(theta), 1.0))
        nlcs = CircleSet.from_circles(circles)
        result = MaxFirst().solve_nlcs(nlcs)
        ref = reference_solve_nlcs(nlcs)
        assert_scores_close(result.score, ref.score)
        assert result.score == pytest.approx(1.0)
        assert len(result.regions) == 7  # every disk ties


class TestCollinearAndCoincident:
    def test_all_collinear(self):
        customers = np.column_stack((np.linspace(0, 10, 40),
                                     np.zeros(40)))
        sites = np.array([[2.0, 0.0], [8.0, 0.0]])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)

    def test_massive_coincidence_single_site_cluster(self):
        rng = np.random.default_rng(9)
        site = np.array([2.0, 3.0])
        customers = site + rng.normal(scale=0.5, size=(120, 2))
        sites = np.vstack([site, [[50.0, 50.0]]])
        problem = MaxBRkNNProblem(customers, sites, k=1)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)

    def test_concentric_rings(self):
        # Many circles sharing one centre (same customer, k NLCs, kept):
        problem = MaxBRkNNProblem(
            [(0.0, 0.0)], [(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)], k=3,
            probability=[0.5, 0.3, 0.2])
        result = MaxFirst().solve(problem)
        # Optimal region: inside the innermost circle, score 0.5.
        assert result.score == pytest.approx(0.5)
        assert result.best_region.contains_point(0.0, 0.0)

    def test_identical_customers_and_sites_everywhere(self):
        customers = np.tile([[1.0, 1.0], [4.0, 4.0]], (10, 1))
        sites = np.array([[2.0, 2.0], [5.0, 5.0], [2.0, 2.0]])
        problem = MaxBRkNNProblem(customers, sites, k=2)
        result = MaxFirst().solve(problem)
        ref = reference_solve(problem)
        assert_scores_close(result.score, ref.score)


class TestGuardsStayQuiet:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_resolution_closures_on_generic_data(self, seed):
        from repro.datasets.synthetic import synthetic_instance
        customers, sites = synthetic_instance(200, 12, "uniform",
                                              seed=seed + 900)
        result = MaxFirst().solve(MaxBRkNNProblem(customers, sites, k=2))
        assert result.stats.resolution_closed == 0
