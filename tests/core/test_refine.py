"""Tests for repro.core.refine (compatibility refinement)."""

import math

import numpy as np
import pytest

from repro.core.refine import (Refinement, incompatible_in_rect,
                               refine_quadrant)
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet


def circle_set(circles, scores=None):
    return CircleSet.from_circles(circles, scores=scores)


class TestIncompatibleInRect:
    def test_disjoint_disks(self):
        cs = circle_set([Circle(0, 0, 1), Circle(5, 0, 1)])
        assert incompatible_in_rect(cs, 0, 1, Rect(0, 0, 5, 1), tol=1e-9)

    def test_exactly_tangent_disks(self):
        """The lattice case: two NLCs externally tangent at a shared
        site."""
        r = math.sqrt(0.5)
        cs = circle_set([Circle(0, 0, r), Circle(1, 1, r)])
        assert incompatible_in_rect(cs, 0, 1,
                                    Rect(0.4, 0.4, 0.6, 0.6), tol=1e-9)

    def test_overlapping_near_rect_compatible(self):
        cs = circle_set([Circle(0, 0, 1), Circle(1, 0, 1)])
        # The lens is centred at (0.5, 0): a rect over it is compatible.
        assert not incompatible_in_rect(cs, 0, 1,
                                        Rect(0.4, -0.1, 0.6, 0.1),
                                        tol=1e-9)

    def test_lens_far_from_rect(self):
        cs = circle_set([Circle(0, 0, 1), Circle(1, 0, 1)])
        # Rect near (-0.9, 0): inside disk 0, far from the lens.
        assert incompatible_in_rect(cs, 0, 1,
                                    Rect(-0.95, -0.05, -0.85, 0.05),
                                    tol=1e-9)

    def test_contained_disk_compatible(self):
        cs = circle_set([Circle(0, 0, 2), Circle(0.2, 0, 0.5)])
        assert not incompatible_in_rect(cs, 0, 1, Rect(0, 0, 0.1, 0.1),
                                        tol=1e-9)

    def test_certificate_soundness_random(self, rng):
        """Whenever incompatibility is certified, no sampled point of the
        rect is inside both disks."""
        for _ in range(200):
            circles = [Circle(float(rng.uniform(-1, 1)),
                              float(rng.uniform(-1, 1)),
                              float(rng.uniform(0.1, 1.0)))
                       for _ in range(2)]
            cs = circle_set(circles)
            x, y = rng.uniform(-1, 1, 2)
            w, h = rng.uniform(0.01, 0.5, 2)
            rect = Rect(float(x), float(y), float(x + w), float(y + h))
            if not incompatible_in_rect(cs, 0, 1, rect, tol=1e-12):
                continue
            xs = np.linspace(rect.xmin, rect.xmax, 12)
            ys = np.linspace(rect.ymin, rect.ymax, 12)
            for px in xs:
                for py in ys:
                    in_both = all(
                        (px - c.cx) ** 2 + (py - c.cy) ** 2 < c.r * c.r
                        for c in circles)
                    assert not in_both


class TestRefineQuadrant:
    def test_none_when_all_compatible(self):
        cs = circle_set([Circle(0, 0, 1), Circle(0.1, 0, 1),
                         Circle(0, 0.1, 1)])
        out = refine_quadrant(cs, np.arange(3), Rect(0, 0, 0.05, 0.05),
                              base_score=0.0, value_floor=0.0, tol=1e-9)
        assert out is None

    def test_none_for_single_disk(self):
        cs = circle_set([Circle(0, 0, 1)])
        assert refine_quadrant(cs, np.array([0]), Rect(0, 0, 1, 1),
                               base_score=0.0, value_floor=0.0,
                               tol=1e-9) is None

    def test_tangent_pair_refines_to_max_single(self):
        r = math.sqrt(0.5)
        cs = circle_set([Circle(0, 0, r), Circle(1, 1, r)],
                        scores=[1.0, 2.0])
        out = refine_quadrant(cs, np.arange(2),
                              Rect(0.45, 0.45, 0.55, 0.55),
                              base_score=5.0, value_floor=0.0, tol=1e-9)
        assert isinstance(out, Refinement)
        # Only one of the tangent pair is achievable: base + max score.
        assert out.refined_max == pytest.approx(7.0)
        assert out.complete

    def test_top_cliques_cover_floor(self):
        r = math.sqrt(0.5)
        cs = circle_set([Circle(0, 0, r), Circle(1, 1, r)],
                        scores=[1.0, 1.0])
        out = refine_quadrant(cs, np.arange(2),
                              Rect(0.45, 0.45, 0.55, 0.55),
                              base_score=0.0, value_floor=1.0, tol=1e-9)
        # Two maximal cliques ({0} and {1}), each of weight 1 >= floor.
        assert sorted(out.top_cliques) == [(0,), (1,)]

    def test_three_mutually_tangent(self):
        # Unit circles centred on an equilateral triangle of side 2:
        # pairwise externally tangent, no two achievable together.
        circles = [Circle(0, 0, 1), Circle(2, 0, 1),
                   Circle(1, math.sqrt(3), 1)]
        cs = circle_set(circles, scores=[1.0, 1.5, 2.0])
        center = (1.0, math.sqrt(3) / 3)
        rect = Rect(center[0] - 0.2, center[1] - 0.2,
                    center[0] + 0.2, center[1] + 0.2)
        out = refine_quadrant(cs, np.arange(3), rect, base_score=0.0,
                              value_floor=0.0, tol=1e-9)
        assert out.refined_max == pytest.approx(2.0)

    def test_mixed_compatibility_clique(self):
        # 0 and 1 overlap broadly; 2 is disjoint from both.
        circles = [Circle(0, 0, 1), Circle(0.5, 0, 1), Circle(10, 0, 1)]
        cs = circle_set(circles, scores=[1.0, 1.0, 5.0])
        rect = Rect(-1, -1, 11, 1)
        out = refine_quadrant(cs, np.arange(3), rect, base_score=0.0,
                              value_floor=0.0, tol=1e-9)
        # Best compatible subset within the rect: {2} alone (5.0) beats
        # {0, 1} (2.0).
        assert out.refined_max == pytest.approx(5.0)

    def test_refined_upper_bounds_true_scores(self, rng):
        """The refined bound must never fall below the true best local
        score within the rect."""
        for _ in range(50):
            n = int(rng.integers(2, 8))
            circles = [Circle(float(rng.uniform(-1, 1)),
                              float(rng.uniform(-1, 1)),
                              float(rng.uniform(0.2, 1.2)))
                       for _ in range(n)]
            scores = rng.uniform(0.1, 2.0, n)
            cs = circle_set(circles, scores=scores.tolist())
            x, y = rng.uniform(-0.5, 0.5, 2)
            rect = Rect(float(x), float(y), float(x + 0.3),
                        float(y + 0.3))
            boundary = np.arange(n)
            out = refine_quadrant(cs, boundary, rect, base_score=0.0,
                                  value_floor=0.0, tol=1e-12)
            if out is None:
                continue
            # True best achievable: sample the rect.
            xs = np.linspace(rect.xmin, rect.xmax, 15)
            ys = np.linspace(rect.ymin, rect.ymax, 15)
            best = 0.0
            for px in xs:
                for py in ys:
                    v = sum(float(s) for c, s in zip(circles, scores)
                            if (px - c.cx) ** 2 + (py - c.cy) ** 2
                            < c.r * c.r)
                    best = max(best, v)
            assert out.refined_max >= best - 1e-9


class TestAdjacencyBuildersAgree:
    """_adjacency_vector mirrors _adjacency_scalar operation for
    operation, so the two must agree on every pair — including pairs
    sitting on the tol boundaries of the disjoint/inside certificates,
    where a last-ulp difference in the centre distance would flip the
    decision (the reason both compute sqrt(dx*dx + dy*dy), never
    hypot)."""

    @staticmethod
    def _assert_agree(cs, rect, tol):
        from repro.core.refine import _adjacency_scalar, _adjacency_vector
        boundary = np.arange(len(cs))
        adj_s, any_s = _adjacency_scalar(cs, boundary, rect, tol)
        adj_v, any_v = _adjacency_vector(cs, boundary, rect, tol)
        assert np.array_equal(adj_s, adj_v)
        assert any_s == any_v

    def test_random_boundary_sets(self, rng):
        for _ in range(25):
            n = int(rng.integers(2, 14))
            circles = [Circle(float(rng.uniform(-1, 1)),
                              float(rng.uniform(-1, 1)),
                              float(rng.uniform(0.05, 1.2)))
                       for _ in range(n)]
            x, y = rng.uniform(-1, 1, 2)
            w, h = rng.uniform(0.01, 0.6, 2)
            rect = Rect(float(x), float(y), float(x + w), float(y + h))
            tol = float(10.0 ** rng.integers(-12, -6))
            self._assert_agree(circle_set(circles), rect, tol)

    def test_near_tangent_pairs(self, rng):
        """Pairs straddling the disjoint certificate d >= ri + rj - tol
        within a few ulps/tols — the flip-prone region."""
        tol = 1e-9
        for _ in range(200):
            ri, rj = (float(v) for v in rng.uniform(0.1, 1.0, 2))
            theta = float(rng.uniform(0.0, 2.0 * math.pi))
            # Distances clustered tightly around the certificate edge.
            d = ri + rj - tol + float(rng.uniform(-5e-9, 5e-9))
            circles = [Circle(0.0, 0.0, ri),
                       Circle(d * math.cos(theta), d * math.sin(theta),
                              rj)]
            rect = Rect(-0.05, -0.05, 0.05, 0.05)
            self._assert_agree(circle_set(circles), rect, tol)

    def test_near_containment_pairs(self, rng):
        """Pairs straddling the inside certificate d <= |ri - rj|."""
        tol = 1e-9
        for _ in range(200):
            ri = float(rng.uniform(0.5, 1.0))
            rj = float(rng.uniform(0.1, 0.4))
            d = abs(ri - rj) + float(rng.uniform(-5e-9, 5e-9))
            circles = [Circle(0.0, 0.0, ri), Circle(d, 0.0, rj)]
            rect = Rect(-0.05, -0.05, 0.05, 0.05)
            self._assert_agree(circle_set(circles), rect, tol)

    def test_concentric_pair(self):
        # d == 0 divides by zero in the lens arithmetic of both
        # builders; the inside certificate must answer first.
        cs = circle_set([Circle(0, 0, 1), Circle(0, 0, 0.5),
                         Circle(0, 0, 1)])
        self._assert_agree(cs, Rect(-0.1, -0.1, 0.1, 0.1), 1e-9)
