"""Tests for repro.core.queries (BRkNN operators and what-if analysis)."""

import numpy as np
import pytest

from repro.core.influence import influence_at
from repro.core.queries import (brknn_of_site, impact_of_new_site,
                                knn_sites, site_influence)
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance


@pytest.fixture
def line_problem():
    """Customers on a line, sites interleaved — ranks by hand."""
    customers = [(0.0, 0.0), (10.0, 0.0)]
    sites = [(1.0, 0.0), (3.0, 0.0), (9.0, 0.0)]
    return MaxBRkNNProblem(customers, sites, k=2,
                           probability=[0.7, 0.3])


class TestKnnSites:
    def test_hand_ranks(self, line_problem):
        ranks = knn_sites(line_problem)
        # Customer 0: site 0 (d=1) then site 1 (d=3).
        assert ranks[0].tolist() == [0, 1]
        # Customer 1: site 2 (d=1) then site 1 (d=7).
        assert ranks[1].tolist() == [2, 1]

    def test_matches_brute_force(self, rng):
        customers, sites = synthetic_instance(120, 15, "uniform", seed=31)
        problem = MaxBRkNNProblem(customers, sites, k=4)
        ranks = knn_sites(problem)
        d = np.hypot(customers[:, 0:1] - sites[None, :, 0],
                     customers[:, 1:2] - sites[None, :, 1])
        for i in range(customers.shape[0]):
            expected = sorted(range(sites.shape[0]),
                              key=lambda j: (d[i, j], j))[:4]
            assert ranks[i].tolist() == expected

    def test_k_equals_site_count(self):
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0), (2, 0)], k=2)
        assert knn_sites(problem)[0].tolist() == [0, 1]

    def test_tie_broken_by_index(self):
        problem = MaxBRkNNProblem([(0.0, 0.0)],
                                  [(1.0, 0.0), (-1.0, 0.0)], k=2)
        assert knn_sites(problem)[0].tolist() == [0, 1]


class TestBrknnOfSite:
    def test_hand_influence(self, line_problem):
        s1 = brknn_of_site(line_problem, 1)
        # Site 1 is rank 2 for both customers: influence 0.3 + 0.3.
        assert s1.members == {0: 2, 1: 2}
        assert s1.influence == pytest.approx(0.6)
        assert s1.cardinality == 2

    def test_rank_one_site(self, line_problem):
        s0 = brknn_of_site(line_problem, 0)
        assert s0.members == {0: 1}
        assert s0.influence == pytest.approx(0.7)

    def test_out_of_range(self, line_problem):
        with pytest.raises(ValueError):
            brknn_of_site(line_problem, 3)

    def test_weighted(self):
        problem = MaxBRkNNProblem([(0, 0)], [(1, 0), (5, 0)], k=1,
                                  weights=[4.0])
        assert brknn_of_site(problem, 0).influence == pytest.approx(4.0)
        assert brknn_of_site(problem, 1).influence == 0.0


class TestSiteInfluence:
    def test_matches_per_site_queries(self, rng):
        customers, sites = synthetic_instance(100, 8, "uniform", seed=41)
        weights = rng.uniform(0.5, 2.0, 100)
        problem = MaxBRkNNProblem(customers, sites, k=3, weights=weights,
                                  probability=[0.5, 0.3, 0.2])
        totals = site_influence(problem)
        ranks = knn_sites(problem)
        for j in range(problem.n_sites):
            assert totals[j] == pytest.approx(
                brknn_of_site(problem, j, ranks=ranks).influence)

    def test_conserves_total_weight(self, rng):
        """Every customer distributes exactly its weight across sites."""
        customers, sites = synthetic_instance(80, 10, "uniform", seed=42)
        weights = rng.uniform(0.5, 2.0, 80)
        problem = MaxBRkNNProblem(customers, sites, k=2, weights=weights)
        assert site_influence(problem).sum() == pytest.approx(
            weights.sum())


class TestImpactOfNewSite:
    def test_gain_matches_influence_evaluator(self):
        customers, sites = synthetic_instance(90, 9, "uniform", seed=43)
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  probability=[0.8, 0.2])
        for probe in ((0.3, 0.3), (0.7, 0.2), (0.5, 0.9)):
            impact = impact_of_new_site(problem, *probe)
            # influence_at uses closed disks (boundary tolerance); away
            # from boundaries both notions coincide.
            expected = influence_at(problem, *probe).total
            assert impact.gain == pytest.approx(expected, abs=1e-9)

    def test_conservation(self, line_problem):
        """With k saturated, the newcomer's gain equals the incumbents'
        total loss plus any probability mass pulled from beyond rank k —
        here every won customer had a full top-k list, so gain == loss."""
        impact = impact_of_new_site(line_problem, 2.0, 0.0)
        assert impact.gain == pytest.approx(
            impact.total_incumbent_loss())

    def test_hand_example(self, line_problem):
        # New site at x=2: customer 0 distances: new=2, s0=1, s1=1 -> it
        # becomes rank 2 (strictly closer than s1? d(s1)=3 > 2 yes).
        impact = impact_of_new_site(line_problem, 2.0, 0.0)
        assert impact.customer_ranks[0] == 2
        # Customer 1: distances new=8, s2=1, s1=7 -> not in top 2.
        assert 1 not in impact.customer_ranks
        # Incumbent s1 loses its rank-2 share of customer 0.
        assert impact.incumbent_losses[1] == pytest.approx(0.3)

    def test_tie_leaves_incumbent(self):
        problem = MaxBRkNNProblem([(0.0, 0.0)], [(1.0, 0.0)], k=1)
        impact = impact_of_new_site(problem, -1.0, 0.0)  # exact tie
        assert impact.gain == 0.0
        assert impact.customers_won == 0

    def test_far_location_no_effect(self, line_problem):
        impact = impact_of_new_site(line_problem, 1000.0, 1000.0)
        assert impact.gain == 0.0
        assert impact.incumbent_losses == {}

    def test_optimal_location_has_best_gain(self):
        """The MaxFirst optimum dominates sampled alternatives in gain."""
        from repro.core.maxfirst import MaxFirst
        customers, sites = synthetic_instance(100, 10, "uniform", seed=44)
        problem = MaxBRkNNProblem(customers, sites, k=2)
        result = MaxFirst().solve(problem)
        p = result.optimal_location()
        best = impact_of_new_site(problem, p.x, p.y)
        assert best.gain == pytest.approx(result.score, abs=1e-9)
        rng = np.random.default_rng(0)
        for x, y in rng.random((100, 2)):
            other = impact_of_new_site(problem, float(x), float(y))
            assert other.gain <= best.gain + 1e-9
