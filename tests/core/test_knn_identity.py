"""Bitwise identity of the compiled kNN kernel and its numpy fallback.

The ``knn_brute`` C kernel and ``_knn_chunked_numpy`` must agree
bit-for-bit — distances AND indices — on every input, including
tie-heavy grids where an argpartition boundary tie could silently pick
a different (equal-distance) neighbour set.  CI runs this file on both
``REPRO_NO_CKERNEL`` arms; under the gate the compiled branch is absent
and the tests still pin the numpy body against the stable-argsort
reference.
"""

import numpy as np
import pytest

from repro.core import nlc as nlc_mod
from repro.core.nlc import knn_chunked, knn_distances_indices
from repro.obs import metrics as obs_metrics


def reference_knn(queries, points, k):
    """Stable-argsort (d², index) reference: the identity oracle."""
    deltas = queries[:, None, :] - points[None, :, :]
    d2 = np.einsum("qpc,qpc->qp", deltas, deltas)
    order = np.argsort(d2, axis=1, kind="stable")[:, :k]
    rows = np.arange(queries.shape[0])[:, None]
    return np.sqrt(d2[rows, order]), order.astype(np.int64)


def tie_heavy_instance(rng, n_queries=64, n_points=40):
    """Coordinates on a coarse grid: many exactly-equal distances."""
    queries = np.round(rng.random((n_queries, 2)) * 4) / 4
    points = np.round(rng.random((n_points, 2)) * 4) / 4
    return queries, points


class TestBitwiseIdentity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 3, 17])
    def test_matches_stable_argsort_reference(self, seed, k):
        rng = np.random.default_rng(seed)
        queries = rng.random((50, 2))
        points = rng.random((30, 2))
        with obs_metrics.REGISTRY.isolated():
            dists, idx = knn_chunked(queries, points, k)
        ref_d, ref_i = reference_knn(queries, points, k)
        assert dists.tobytes() == ref_d.tobytes()
        assert idx.tobytes() == ref_i.tobytes()

    @pytest.mark.parametrize("seed", range(5))
    def test_boundary_ties_resolve_to_lowest_indices(self, seed):
        rng = np.random.default_rng(100 + seed)
        queries, points = tie_heavy_instance(rng)
        for k in (1, 2, 5, points.shape[0]):
            with obs_metrics.REGISTRY.isolated():
                dists, idx = knn_chunked(queries, points, k)
            ref_d, ref_i = reference_knn(queries, points, k)
            assert idx.tobytes() == ref_i.tobytes()
            assert dists.tobytes() == ref_d.tobytes()

    def test_numpy_body_matches_public_path(self, monkeypatch, rng):
        """Force the fallback body and compare against knn_chunked —
        on the compiled arm this is the C-vs-numpy identity proof, on
        the REPRO_NO_CKERNEL arm it is a (trivially passing) self-check.
        """
        queries, points = tie_heavy_instance(rng, 300, 70)
        k = 6
        with obs_metrics.REGISTRY.isolated():
            dists, idx = knn_chunked(queries, points, k)
        np_d = np.empty((300, k), dtype=np.float64)
        np_i = np.empty((300, k), dtype=np.int64)
        nlc_mod._knn_chunked_numpy(
            np.ascontiguousarray(queries), np.ascontiguousarray(points),
            k, np_d, np_i)
        assert dists.tobytes() == np_d.tobytes()
        assert idx.tobytes() == np_i.tobytes()


class TestChunking:
    def test_exact_final_chunk(self, monkeypatch, rng):
        """A partial final chunk (n % chunk != 0) is sliced exactly —
        no numpy overshoot rows — and counted as its own chunk."""
        monkeypatch.setattr(nlc_mod, "_BRUTE_CHUNK", 7)
        queries = rng.random((23, 2))  # 3 full chunks + 2 rows
        points = rng.random((11, 2))
        with obs_metrics.REGISTRY.isolated() as box:
            dists, idx = knn_chunked(queries, points, 4)
        ref_d, ref_i = reference_knn(queries, points, 4)
        assert dists.tobytes() == ref_d.tobytes()
        assert idx.tobytes() == ref_i.tobytes()
        assert box["counters"]["nlc_build_queries"] == 23
        assert box["counters"]["nlc_build_chunks"] == 4

    def test_counters_identical_across_chunk_sizes(self, rng):
        """nlc_build_queries is chunk-size independent (the gate relies
        on the formula count, not the loop trip count)."""
        queries = rng.random((40, 2))
        points = rng.random((9, 2))
        with obs_metrics.REGISTRY.isolated() as box:
            knn_chunked(queries, points, 3)
        assert box["counters"]["nlc_build_queries"] == 40
        assert box["counters"]["nlc_build_chunks"] == 1


class TestIndicesPlumbing:
    @pytest.mark.parametrize("method", ["brute", "kdtree", "rtree"])
    def test_engines_return_identical_indices(self, rng, method):
        """The _knn_brute fix: indices flow out of every engine and all
        three agree exactly (ties to the lowest site index)."""
        queries, points = tie_heavy_instance(rng, 80, 30)
        with obs_metrics.REGISTRY.isolated():
            dists, idx = knn_distances_indices(queries, points, 4,
                                               method=method)
        ref_d, ref_i = reference_knn(queries, points, 4)
        assert idx.tobytes() == ref_i.tobytes()
        np.testing.assert_allclose(dists, ref_d, rtol=1e-12, atol=1e-12)

    def test_invalid_k_raises(self, rng):
        pts = rng.random((5, 2))
        with pytest.raises(ValueError):
            knn_distances_indices(pts, pts, 0)
        with pytest.raises(ValueError):
            knn_distances_indices(pts, pts, 6)
