"""Tests for repro.core.probability."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.probability import ProbabilityModel, resolve_models


class TestValidation:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ProbabilityModel(())

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            ProbabilityModel.of(1.2, -0.2)

    def test_sum_must_be_one(self):
        with pytest.raises(ValueError):
            ProbabilityModel.of(0.5, 0.4)

    def test_increasing_raises(self):
        # Increasing rank probabilities produce negative NLC scores,
        # which invalidates Theorem 1's upper bound.
        with pytest.raises(ValueError):
            ProbabilityModel.of(0.2, 0.8)

    def test_valid_single(self):
        model = ProbabilityModel.of(1.0)
        assert model.k == 1
        assert model.scores() == (1.0,)


class TestNamedConstructors:
    def test_uniform(self):
        model = ProbabilityModel.uniform(4)
        assert model.probs == (0.25,) * 4
        assert model.is_uniform()

    def test_uniform_invalid_k(self):
        with pytest.raises(ValueError):
            ProbabilityModel.uniform(0)

    def test_linear_matches_paper_m1(self):
        # M1 of size k: {k/D, (k-1)/D, ..., 1/D}, D = k(k+1)/2.
        model = ProbabilityModel.linear(3)
        assert model.probs == pytest.approx((3 / 6, 2 / 6, 1 / 6))

    def test_harmonic_matches_paper_m2(self):
        # M2 of size k: {1/C, 1/2C, ..., 1/kC}, C = H_k.
        model = ProbabilityModel.harmonic(3)
        c = 1 + 0.5 + 1 / 3
        assert model.probs == pytest.approx((1 / c, 0.5 / c, (1 / 3) / c))

    def test_harmonic_k1_is_uniform(self):
        assert ProbabilityModel.harmonic(1).probs == (1.0,)

    def test_normalized(self):
        model = ProbabilityModel.normalized([3.0, 2.0, 1.0])
        assert model.probs == pytest.approx((0.5, 1 / 3, 1 / 6))

    def test_normalized_zero_sum_raises(self):
        with pytest.raises(ValueError):
            ProbabilityModel.normalized([0.0, 0.0])

    def test_from_sequence(self):
        assert ProbabilityModel.from_sequence([0.8, 0.2]).k == 2


class TestScores:
    def test_definition2_example_from_paper(self):
        # Paper: k=2, model {0.8, 0.2}, weight 1 -> scores 0.6 and 0.2.
        scores = ProbabilityModel.of(0.8, 0.2).scores()
        assert scores == pytest.approx((0.6, 0.2))

    def test_weighting(self):
        scores = ProbabilityModel.of(0.8, 0.2).scores(weight=5.0)
        assert scores == pytest.approx((3.0, 1.0))

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            ProbabilityModel.of(1.0).scores(weight=-1.0)

    def test_uniform_model_only_last_circle_scores(self):
        scores = ProbabilityModel.uniform(4).scores()
        assert scores[:3] == pytest.approx((0.0, 0.0, 0.0))
        assert scores[3] == pytest.approx(0.25)

    @given(st.integers(min_value=1, max_value=12))
    def test_telescoping_property(self, k):
        """sum(scores[i:]) == prob_i — the property Definition 2 needs."""
        for model in (ProbabilityModel.uniform(k),
                      ProbabilityModel.linear(k),
                      ProbabilityModel.harmonic(k)):
            scores = model.scores()
            for i in range(k):
                assert math.fsum(scores[i:]) == pytest.approx(
                    model.probs[i])

    @given(st.integers(min_value=1, max_value=12))
    def test_scores_nonnegative_and_sum_to_prob1(self, k):
        for model in (ProbabilityModel.linear(k),
                      ProbabilityModel.harmonic(k)):
            scores = model.scores()
            assert all(s >= -1e-15 for s in scores)
            assert math.fsum(scores) == pytest.approx(model.probs[0])


class TestTruncated:
    def test_truncate(self):
        model = ProbabilityModel.harmonic(5).truncated(2)
        assert model.k == 2
        assert math.fsum(model.probs) == pytest.approx(1.0)

    def test_truncate_invalid(self):
        with pytest.raises(ValueError):
            ProbabilityModel.uniform(2).truncated(3)


class TestResolveModels:
    def test_none_gives_uniform(self):
        models = resolve_models(None, 3, 5)
        assert len(models) == 5
        assert all(m.is_uniform() and m.k == 3 for m in models)

    def test_single_model_broadcast(self):
        m = ProbabilityModel.of(0.8, 0.2)
        models = resolve_models(m, 2, 4)
        assert models == [m] * 4

    def test_sequence_parsed(self):
        models = resolve_models([0.8, 0.2], 2, 3)
        assert models[0].probs == (0.8, 0.2)

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            resolve_models([0.8, 0.2], 3, 2)

    def test_per_object_models(self):
        per = [ProbabilityModel.of(0.8, 0.2), ProbabilityModel.uniform(2)]
        models = resolve_models(per, 2, 2)
        assert models == per

    def test_per_object_wrong_count(self):
        per = [ProbabilityModel.uniform(2)]
        with pytest.raises(ValueError):
            resolve_models(per, 2, 3)
