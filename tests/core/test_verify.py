"""Tests for repro.core.verify (result auditing)."""

import dataclasses

import pytest

from repro.baselines.maxoverlap import MaxOverlap
from repro.core.maxfirst import MaxFirst
from repro.core.verify import VerificationReport, verify_result
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance


class TestVerifyHonestResults:
    def test_maxfirst_result_verifies(self, small_k2_problem):
        result = MaxFirst().solve(small_k2_problem)
        report = verify_result(result)
        assert report.ok, report.issues
        assert report.regions_checked == len(result.regions)
        assert report.sampled_best <= result.score + 1e-6
        report.raise_if_failed()  # no-op when ok

    def test_maxoverlap_result_verifies(self, small_uniform_problem):
        result = MaxOverlap().solve(small_uniform_problem)
        assert verify_result(result).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances_verify(self, seed):
        customers, sites = synthetic_instance(120, 10, "clustered",
                                              seed=seed + 300)
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  probability=[0.6, 0.4])
        result = MaxFirst().solve(problem)
        assert verify_result(result, seed=seed).ok


class TestVerifyCatchesLies:
    def test_inflated_score_detected(self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        lied = dataclasses.replace(
            result,
            score=result.score * 2,
            regions=tuple(dataclasses.replace(r, score=r.score * 2)
                          for r in result.regions))
        report = verify_result(lied)
        assert not report.ok
        assert any("attains" in issue for issue in report.issues)
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_deflated_score_detected(self, small_uniform_problem):
        """Claiming less than the true optimum: a sampled location (or a
        dense probe) should beat the claim."""
        result = MaxFirst().solve(small_uniform_problem)
        lied = dataclasses.replace(result, score=result.score * 0.25)
        report = verify_result(lied, samples=5_000)
        assert not report.ok
        assert any("> claimed optimum" in issue
                   for issue in report.issues)

    def test_report_is_frozen(self, small_uniform_problem):
        report = verify_result(MaxFirst().solve(small_uniform_problem))
        assert isinstance(report, VerificationReport)
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.ok = False
