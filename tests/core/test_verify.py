"""Tests for repro.core.verify (result auditing)."""

import dataclasses

import pytest

from repro.baselines.maxoverlap import MaxOverlap
from repro.core.maxfirst import MaxFirst
from repro.core.verify import VerificationReport, verify_result
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance


class TestVerifyHonestResults:
    def test_maxfirst_result_verifies(self, small_k2_problem):
        result = MaxFirst().solve(small_k2_problem)
        report = verify_result(result)
        assert report.ok, report.issues
        assert report.regions_checked == len(result.regions)
        assert report.sampled_best <= result.score + 1e-6
        report.raise_if_failed()  # no-op when ok

    def test_maxoverlap_result_verifies(self, small_uniform_problem):
        result = MaxOverlap().solve(small_uniform_problem)
        assert verify_result(result).ok

    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances_verify(self, seed):
        customers, sites = synthetic_instance(120, 10, "clustered",
                                              seed=seed + 300)
        problem = MaxBRkNNProblem(customers, sites, k=2,
                                  probability=[0.6, 0.4])
        result = MaxFirst().solve(problem)
        assert verify_result(result, seed=seed).ok


class TestVerifyNearZeroScores:
    """The sampled_best witness near zero (the RPR002 audit site).

    ``sampled_best`` starts at 0.0 and is only raised by suspicious
    samples; when none fire (or every evaluation rounds to dust) the
    report substitutes the cheap upper bound.  That branch must treat
    accumulated rounding noise like exact zero — it used to test
    ``sampled_best == 0.0`` and let a 1e-13 residue masquerade as a
    genuine witness.
    """

    def test_no_suspicious_samples_reports_upper_bound(
            self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        report = verify_result(result, samples=2_000, seed=1234)
        # Whether or not any probe fired, the witness is a finite lower
        # bound, never a silent hard zero (the optimum here is positive).
        assert result.score > 0
        assert 0.0 < report.sampled_best <= result.score + 1e-6

    def test_rounding_dust_treated_as_zero(self, small_uniform_problem,
                                           monkeypatch):
        """Evaluations that return only rounding dust (≤ DEFAULT_ABS_TOL)
        must route through near_zero and fall back to the upper bound."""
        import repro.core.verify as verify_mod

        result = MaxFirst().solve(small_uniform_problem)
        dust = 5e-13
        monkeypatch.setattr(verify_mod, "neighborhood_score",
                            lambda nlcs, x, y, tol=0.0: dust)
        report = verify_result(result, samples=2_000,
                               region_probes=0, seed=0)
        # With every exact evaluation returning dust, the representative
        # checks fail (expected — scores were faked), but the witness
        # must NOT be the dust value itself.
        assert report.sampled_best != dust
        assert report.sampled_best <= result.score

    def test_zero_samples_keeps_zero_witness(self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        report = verify_result(result, samples=0)
        assert report.sampled_best == 0.0
        assert report.samples_checked == 0


class TestVerifyCatchesLies:
    def test_inflated_score_detected(self, small_uniform_problem):
        result = MaxFirst().solve(small_uniform_problem)
        lied = dataclasses.replace(
            result,
            score=result.score * 2,
            regions=tuple(dataclasses.replace(r, score=r.score * 2)
                          for r in result.regions))
        report = verify_result(lied)
        assert not report.ok
        assert any("attains" in issue for issue in report.issues)
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_deflated_score_detected(self, small_uniform_problem):
        """Claiming less than the true optimum: a sampled location (or a
        dense probe) should beat the claim."""
        result = MaxFirst().solve(small_uniform_problem)
        lied = dataclasses.replace(result, score=result.score * 0.25)
        report = verify_result(lied, samples=5_000)
        assert not report.ok
        assert any("> claimed optimum" in issue
                   for issue in report.issues)

    def test_report_is_frozen(self, small_uniform_problem):
        report = verify_result(MaxFirst().solve(small_uniform_problem))
        assert isinstance(report, VerificationReport)
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.ok = False
