"""Per-region identity of the optimised Phase II against the pre-PR loop.

``compute_optimal_region`` (incremental clipper + SoA heap seeding) must
reproduce ``compute_optimal_region_reference`` (scalar heapq seeding,
from-scratch ``intersect_disks`` per accepted disk) exactly: same score,
cover, clipping_count, and float-identical region shape.  Exercised on
synthetic random covers and on every region a real solve produces; CI
runs this file on both ``REPRO_NO_CKERNEL`` arms so the identity holds
regardless of which kNN kernel built the NLC radii.
"""

import numpy as np
import pytest

from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs
from repro.core.problem import MaxBRkNNProblem
from repro.core.region import (compute_optimal_region,
                               compute_optimal_region_reference)
from repro.datasets.synthetic import synthetic_instance
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs import metrics as obs_metrics


def assert_identical(new, ref):
    assert new.score == ref.score
    assert new.cover == ref.cover
    assert new.clipping_count == ref.clipping_count
    assert new.seed_quadrant == ref.seed_quadrant
    assert (new.shape is None) == (ref.shape is None)
    if new.shape is not None:
        assert new.shape.circles == ref.shape.circles
        assert new.shape.arcs == ref.shape.arcs
        assert new.shape.degenerate_point == ref.shape.degenerate_point


class TestRandomCovers:
    @pytest.mark.parametrize("seed", range(8))
    def test_synthetic_covers_identical(self, seed):
        rng = np.random.default_rng(seed)
        quad_center = rng.uniform(0.4, 0.6, 2)
        circles = []
        for _ in range(int(rng.integers(2, 12))):
            cx, cy = quad_center + rng.uniform(-0.5, 0.5, 2)
            d = np.hypot(cx - quad_center[0], cy - quad_center[1])
            r = d + rng.uniform(0.05, 1.0)
            circles.append(Circle(float(cx), float(cy), float(r)))
        cs = CircleSet.from_circles(circles)
        half = 0.004
        quad = Rect(float(quad_center[0] - half),
                    float(quad_center[1] - half),
                    float(quad_center[0] + half),
                    float(quad_center[1] + half))
        cover = np.flatnonzero(cs.contains_rect_mask(quad))
        with obs_metrics.REGISTRY.isolated():
            new = compute_optimal_region(quad, cover, cs, score=1.0)
        ref = compute_optimal_region_reference(quad, cover, cs, score=1.0)
        assert_identical(new, ref)

    def test_duplicate_disks_in_cover(self):
        base = Circle(0.0, 0.0, 1.0)
        cs = CircleSet.from_circles([base, base, Circle(0.3, 0.0, 1.1)])
        quad = Rect(-0.01, -0.01, 0.01, 0.01)
        cover = np.array([0, 1, 2], dtype=np.int64)
        with obs_metrics.REGISTRY.isolated():
            new = compute_optimal_region(quad, cover, cs, score=3.0)
        ref = compute_optimal_region_reference(quad, cover, cs, score=3.0)
        assert_identical(new, ref)

    def test_empty_and_single_cover(self):
        cs = CircleSet.from_circles([Circle(0, 0, 2)])
        quad = Rect(-0.1, -0.1, 0.1, 0.1)
        for cover in (np.array([], dtype=np.int64),
                      np.array([0], dtype=np.int64)):
            with obs_metrics.REGISTRY.isolated():
                new = compute_optimal_region(quad, cover, cs, score=1.0)
            ref = compute_optimal_region_reference(quad, cover, cs,
                                                   score=1.0)
            assert_identical(new, ref)


class TestSolverRegions:
    @pytest.mark.parametrize("seed,dist", [(0, "uniform"), (1, "uniform"),
                                           (2, "normal")])
    def test_every_solved_region_identical(self, seed, dist):
        customers, sites = synthetic_instance(250, 16, dist, seed=seed)
        problem = MaxBRkNNProblem(customers, sites, k=3)
        result = MaxFirst(top_t=8).solve(problem)
        nlcs = build_nlcs(problem)
        assert result.regions
        for region in result.regions:
            cover = np.asarray(region.cover, dtype=np.int64)
            with obs_metrics.REGISTRY.isolated():
                new = compute_optimal_region(region.seed_quadrant, cover,
                                             nlcs, score=region.score)
            ref = compute_optimal_region_reference(
                region.seed_quadrant, cover, nlcs, score=region.score)
            assert_identical(new, ref)
            # The solver's own region came through the optimised path.
            assert region.clipping_count == ref.clipping_count
            if region.shape is not None:
                assert region.shape.arcs == ref.shape.arcs


class TestCounters:
    def test_phase2_clips_counts_selected_disks(self):
        cs = CircleSet.from_circles(
            [Circle(0.0, 0.0, 1.0), Circle(0.2, 0.0, 1.0),
             Circle(0.0, 0.2, 1.0)])
        quad = Rect(-0.01, -0.01, 0.01, 0.01)
        cover = np.array([0, 1, 2], dtype=np.int64)
        with obs_metrics.REGISTRY.isolated() as box:
            region = compute_optimal_region(quad, cover, cs, score=3.0)
        assert box["counters"]["region_grows"] == 1
        assert box["counters"]["phase2_clips"] == region.clipping_count
