"""Tests for repro.core.scoring (region-semantics local scores)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (neighborhood_cover, neighborhood_score,
                                pointwise_score)
from repro.geometry.circle import Circle
from repro.index.circleset import CircleSet


def circle_set(circles, scores=None):
    return CircleSet.from_circles(circles, scores=scores)


class TestStrictInterior:
    def test_point_strictly_inside_all(self):
        cs = circle_set([Circle(0, 0, 1), Circle(0.5, 0, 1)],
                        scores=[1.0, 2.0])
        assert neighborhood_score(cs, 0.25, 0.0, tol=1e-9) == 3.0

    def test_point_outside_all(self):
        cs = circle_set([Circle(0, 0, 1)])
        assert neighborhood_score(cs, 5.0, 5.0, tol=1e-9) == 0.0

    def test_matches_pointwise_away_from_boundaries(self, rng):
        circles = [Circle(float(rng.random()), float(rng.random()),
                          float(rng.uniform(0.1, 0.5)))
                   for _ in range(20)]
        cs = circle_set(circles)
        for _ in range(50):
            x, y = rng.random(2)
            # Skip probes that are near any circumference.
            near = any(abs(math.hypot(x - c.cx, y - c.cy) - c.r) < 1e-3
                       for c in circles)
            if near:
                continue
            assert neighborhood_score(cs, float(x), float(y),
                                      tol=1e-9) == pytest.approx(
                pointwise_score(cs, float(x), float(y)))


class TestThroughCircles:
    def test_single_through_circle_counts(self):
        # One circle through the point: a neighbourhood on the inner side
        # gets its score.
        cs = circle_set([Circle(0, 0, 1)], scores=[2.0])
        assert neighborhood_score(cs, 1.0, 0.0, tol=1e-9) == 2.0

    def test_two_opposed_through_circles_dont_stack(self):
        # Two circles tangent internally... use two circles through the
        # origin with opposite centres: no direction is inside both.
        cs = circle_set([Circle(1, 0, 1), Circle(-1, 0, 1)],
                        scores=[1.0, 1.0])
        # Directions within pi/2 of +x get circle 1; within pi/2 of -x
        # get circle 2; no direction gets both (open half-circles).
        assert neighborhood_score(cs, 0.0, 0.0, tol=1e-9) == 1.0

    def test_three_spread_circles_best_pair(self):
        # Three circles through the origin, centres spread by 120°: any
        # direction lies inside at most two.
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2 * math.pi / 3, 4 * math.pi / 3)]
        cs = circle_set(circles, scores=[1.0, 1.0, 1.0])
        assert neighborhood_score(cs, 0.0, 0.0, tol=1e-9) == pytest.approx(
            2.0)

    def test_aligned_through_circles_stack(self):
        # Two circles through origin with nearby centres: directions
        # between them are inside both.
        cs = circle_set([Circle(1, 0.1, math.hypot(1, 0.1)),
                         Circle(1, -0.1, math.hypot(1, -0.1))],
                        scores=[1.0, 3.0])
        assert neighborhood_score(cs, 0.0, 0.0, tol=1e-9) == pytest.approx(
            4.0)

    def test_pointwise_overcounts_at_coincidence(self):
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2.1, 4.2)]
        cs = circle_set(circles)
        assert pointwise_score(cs, 0.0, 0.0, tol=1e-9) == 3.0
        assert neighborhood_score(cs, 0.0, 0.0, tol=1e-9) < 3.0

    def test_zero_radius_circle_ignored(self):
        # A zero-radius NLC (customer on a site) has empty interior.
        cs = circle_set([Circle(0, 0, 0.0)], scores=[5.0])
        assert neighborhood_score(cs, 0.0, 0.0, tol=1e-9) == 0.0

    def test_base_plus_through(self):
        cs = circle_set([Circle(0, 0, 2.0), Circle(1, 0, 1.0)],
                        scores=[1.5, 2.5])
        # (0, 0): strictly inside the big disk, on the small circle.
        assert neighborhood_score(cs, 0.0, 0.0, tol=1e-9) == pytest.approx(
            4.0)


class TestNeighborhoodCover:
    def test_cover_inside(self):
        cs = circle_set([Circle(0, 0, 1), Circle(0.2, 0, 1)])
        value, cover = neighborhood_cover(cs, 0.1, 0.0, tol=1e-9)
        assert value == 2.0
        assert sorted(cover.tolist()) == [0, 1]

    def test_cover_selects_winning_sector(self):
        circles = [Circle(math.cos(t), math.sin(t), 1.0)
                   for t in (0.0, 2 * math.pi / 3, 4 * math.pi / 3)]
        cs = circle_set(circles, scores=[1.0, 1.0, 4.0])
        value, cover = neighborhood_cover(cs, 0.0, 0.0, tol=1e-9)
        # Best sector pairs the heavy circle with one light one.
        assert value == pytest.approx(5.0)
        assert 2 in cover.tolist()
        assert len(cover) == 2

    def test_cover_value_consistent_with_score(self, rng):
        circles = [Circle(float(rng.uniform(-0.3, 0.3)),
                          float(rng.uniform(-0.3, 0.3)),
                          float(rng.uniform(0.3, 1.2)))
                   for _ in range(12)]
        scores = rng.uniform(0.1, 2.0, 12)
        cs = circle_set(circles, scores=scores.tolist())
        for _ in range(25):
            x, y = rng.uniform(-1, 1, 2)
            value, cover = neighborhood_cover(cs, float(x), float(y),
                                              tol=1e-9)
            assert value == pytest.approx(neighborhood_score(
                cs, float(x), float(y), tol=1e-9))
            assert value == pytest.approx(float(scores[cover].sum()))

    def test_candidates_restriction(self):
        cs = circle_set([Circle(0, 0, 1), Circle(0, 0, 2)])
        value, cover = neighborhood_cover(
            cs, 0.0, 0.0, tol=1e-9,
            candidates=np.array([1], dtype=np.int64))
        assert value == 1.0
        assert cover.tolist() == [1]


class TestScoringProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_neighborhood_bounded_by_pointwise(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 15))
        cs = CircleSet(rng.uniform(-1, 1, n), rng.uniform(-1, 1, n),
                       rng.uniform(0.05, 1.0, n), rng.uniform(0.1, 1.0, n))
        x, y = rng.uniform(-1.5, 1.5, 2)
        tol = 1e-9
        nb = neighborhood_score(cs, float(x), float(y), tol=tol)
        pw = pointwise_score(cs, float(x), float(y), tol=tol)
        assert nb <= pw + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_neighborhood_witnessed_by_nearby_point(self, seed):
        """The neighbourhood score is (approximately) achieved by an
        actual nearby location under strict containment."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 10))
        cs = CircleSet(rng.uniform(-1, 1, n), rng.uniform(-1, 1, n),
                       rng.uniform(0.2, 1.0, n), rng.uniform(0.1, 1.0, n))
        x, y = rng.uniform(-0.5, 0.5, 2)
        nb = neighborhood_score(cs, float(x), float(y), tol=1e-9)
        best = 0.0
        for ang in np.linspace(0, 2 * math.pi, 720, endpoint=False):
            px = x + 1e-7 * math.cos(ang)
            py = y + 1e-7 * math.sin(ang)
            d2 = (cs.cx - px) ** 2 + (cs.cy - py) ** 2
            best = max(best, float(cs.scores[d2 < cs.r * cs.r].sum()))
        # The directional probe can only miss razor-thin sectors.
        assert nb >= best - 1e-9
