"""Tests for repro.core.problem."""

import numpy as np
import pytest

from repro.core.probability import ProbabilityModel
from repro.core.problem import MaxBRkNNProblem
from repro.geometry.rect import Rect


class TestValidation:
    def test_minimal(self):
        p = MaxBRkNNProblem([(0, 0)], [(1, 1)])
        assert p.n_customers == 1
        assert p.n_sites == 1
        assert p.k == 1

    def test_list_input_converted(self):
        p = MaxBRkNNProblem([(0, 0), (1, 1)], [(2, 2)])
        assert isinstance(p.customers, np.ndarray)
        assert p.customers.dtype == np.float64

    def test_empty_customers_raises(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem(np.zeros((0, 2)), [(0, 0)])

    def test_empty_sites_raises(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], np.zeros((0, 2)))

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem(np.zeros((3, 3)), [(0, 0)])

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, np.nan)], [(0, 0)])
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(np.inf, 0)])

    def test_k_validation(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], k=0)
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], k=2)  # only 1 site
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], k=1.5)

    def test_weights_default_ones(self):
        p = MaxBRkNNProblem([(0, 0), (1, 1)], [(2, 2)])
        assert p.weights.tolist() == [1.0, 1.0]

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], weights=[-1.0])
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1)], weights=[np.nan])

    def test_zero_weight_allowed(self):
        p = MaxBRkNNProblem([(0, 0)], [(1, 1)], weights=[0.0])
        assert p.weights[0] == 0.0


class TestProbabilityIntegration:
    def test_default_uniform(self):
        p = MaxBRkNNProblem([(0, 0)], [(1, 1), (2, 2)], k=2)
        assert p.has_uniform_probability
        assert p.models[0].probs == (0.5, 0.5)

    def test_sequence_model(self):
        p = MaxBRkNNProblem([(0, 0)], [(1, 1), (2, 2)], k=2,
                            probability=[0.8, 0.2])
        assert not p.has_uniform_probability
        assert p.models[0].probs == (0.8, 0.2)

    def test_per_object_models(self):
        models = [ProbabilityModel.of(0.8, 0.2),
                  ProbabilityModel.uniform(2)]
        p = MaxBRkNNProblem([(0, 0), (1, 0)], [(1, 1), (2, 2)], k=2,
                            probability=models)
        assert p.models == models
        assert not p.has_uniform_probability

    def test_model_size_must_match_k(self):
        with pytest.raises(ValueError):
            MaxBRkNNProblem([(0, 0)], [(1, 1), (2, 2)], k=2,
                            probability=[1.0])


class TestDataBounds:
    def test_bounds_cover_both_sets(self):
        p = MaxBRkNNProblem([(0, 0), (2, 5)], [(-1, 3)])
        assert p.data_bounds() == Rect(-1.0, 0.0, 2.0, 5.0)
