"""Tests for repro.core.api and repro.core.result."""

import pytest

import repro
from repro.core.api import find_optimal_location, find_optimal_regions
from repro.geometry.point import Point


class TestFindOptimalRegions:
    def test_docstring_example(self):
        result = find_optimal_regions([(0, 0), (1, 0)],
                                      [(4, 4), (-4, 4)])
        assert result.score == pytest.approx(2.0)

    def test_solver_options_forwarded(self):
        result = find_optimal_regions([(0, 0)], [(2, 0)], m_threshold=8,
                                      backend="rtree")
        assert result.score == pytest.approx(1.0)

    def test_invalid_option_raises(self):
        with pytest.raises(TypeError):
            find_optimal_regions([(0, 0)], [(2, 0)], bogus_option=1)

    def test_probability_and_weights(self):
        result = find_optimal_regions(
            [(0, 0), (10, 0)], [(1, 0), (11, 0), (-50, 0)], k=2,
            weights=[1.0, 3.0], probability=[0.8, 0.2])
        # Inside the heavy customer's first NLC (weight 3 at 80%), which
        # also lies within the light customer's second NLC (radius 11
        # around the origin): 3*0.8 + 1*0.2.
        assert result.score == pytest.approx(3.0 * 0.8 + 1.0 * 0.2)

    def test_public_reexports(self):
        # The package root exposes the documented public API.
        for name in ("MaxFirst", "MaxOverlap", "MaxBRkNNProblem",
                     "ProbabilityModel", "InfluenceEvaluator",
                     "find_optimal_regions", "find_optimal_location",
                     "reference_solve", "grid_search", "build_nlcs"):
            assert hasattr(repro, name), name


class TestFindOptimalLocation:
    def test_returns_point_in_best_region(self):
        location = find_optimal_location([(0, 0), (1, 0)],
                                         [(4, 4), (-4, 4)])
        assert isinstance(location, Point)
        result = find_optimal_regions([(0, 0), (1, 0)], [(4, 4), (-4, 4)])
        assert any(r.contains_point(location.x, location.y)
                   for r in result.regions)


class TestResult:
    def test_summary_mentions_score_and_stats(self, small_uniform_problem):
        result = repro.MaxFirst().solve(small_uniform_problem)
        text = result.summary()
        assert "score" in text
        assert "quadrants" in text
        assert "region 0" in text

    def test_best_region_empty_raises(self, small_uniform_problem):
        result = repro.MaxFirst().solve(small_uniform_problem)
        trimmed = repro.MaxBRkNNResult(
            score=result.score, regions=(), nlcs=result.nlcs,
            space=result.space)
        with pytest.raises(ValueError):
            trimmed.best_region

    def test_total_time(self, small_uniform_problem):
        result = repro.MaxFirst().solve(small_uniform_problem)
        assert result.total_time == pytest.approx(
            sum(result.timings.values()))
