"""Manhattan-metric siting: a walk-in clinic on a street grid.

In a gridded downtown, travel is city-block (L1) distance, the metric of
Du et al.'s original optimal-location problem.  This example sites a new
walk-in clinic among existing ones: the L1 solver computes the exact
optimal region (a 45°-rotated rectangle), and we contrast it with what
the Euclidean solver would have recommended.

Run:  python examples/manhattan_clinic.py
"""

import numpy as np

import repro
from repro.datasets import clustered_points, uniform_points
from repro.l1 import solve_l1


def main() -> None:
    rng = np.random.default_rng(8)
    # Households snap to a street grid (tenth-of-a-mile blocks).
    households = np.round(
        clustered_points(1_500, clusters=6, seed=8) * 60) / 60
    weights = rng.uniform(1.0, 4.0, households.shape[0])
    clinics = np.round(uniform_points(12, seed=9) * 60) / 60

    problem = repro.MaxBRkNNProblem(
        customers=households, sites=clinics, k=2, weights=weights,
        probability=[0.7, 0.3])

    l1 = solve_l1(problem)
    x1, y1 = l1.best_region.representative_point()
    print(f"households: {households.shape[0]} "
          f"(total weight {weights.sum():,.0f}), "
          f"existing clinics: {clinics.shape[0]}")
    print()
    print(f"L1 (city-block) optimum: {l1.score:,.1f} weighted visits")
    print(f"  open near ({x1:.4f}, {y1:.4f})")
    print(f"  optimal region area: {l1.best_region.area:.2e} "
          f"(a 45°-rotated rectangle)")
    print(f"  corners: "
          f"{[(round(x, 3), round(y, 3)) for x, y in l1.best_region.polygon_xy]}")
    print(f"  exact sweep over {l1.cell_count:,} grid cells in "
          f"{l1.timings['sweep']:.3f}s")
    print()

    l2 = repro.MaxFirst().solve(problem)
    p2 = l2.optimal_location()
    print(f"Euclidean optimum (for contrast): {l2.score:,.1f} at "
          f"({p2.x:.4f}, {p2.y:.4f})")
    d_l1 = abs(x1 - p2.x) + abs(y1 - p2.y)
    print(f"the two recommendations are {d_l1:.3f} city-blocks apart; "
          f"scores differ because walking distance, not straight-line "
          f"distance, decides which clinic is 'nearest'")

    # Sanity: the L1 location evaluated under the L1 model beats the L2
    # location evaluated under the L1 model.
    uv = lambda x, y: np.array([[x + y, x - y]])  # noqa: E731
    at = lambda x, y: float(  # noqa: E731
        l1.nlcs.cover_scores_at_points(uv(x, y), strict=True)[0])
    assert at(x1, y1) >= at(p2.x, p2.y) - 1e-9
    print(f"\nunder L1, the L1 pick attracts {at(x1, y1):,.1f} vs "
          f"{at(p2.x, p2.y):,.1f} for the Euclidean pick")


if __name__ == "__main__":
    main()
