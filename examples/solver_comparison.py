"""MaxFirst vs MaxOverlap: the paper's headline comparison, in miniature.

Runs both solvers over a growing customer set (Figure 10's experiment at
a laptop-friendly scale), verifies they return the same optimum, and
prints the runtime table plus a log-scale ASCII chart.  Expect the gap to
widen super-linearly — MaxOverlap's intersection-point count grows
quadratically with the number of customers.

Run:  python examples/solver_comparison.py
"""

import time

import repro
from repro.bench.report import ascii_chart, format_table, speedup_summary
from repro.datasets import synthetic_instance


def main() -> None:
    sizes = (500, 1_000, 2_000, 4_000)
    n_sites = 50
    rows = []
    for n in sizes:
        customers, sites = synthetic_instance(n, n_sites, "uniform",
                                              seed=11)
        problem = repro.MaxBRkNNProblem(customers, sites, k=1)

        start = time.perf_counter()
        mf = repro.MaxFirst().solve(problem)
        t_mf = time.perf_counter() - start

        start = time.perf_counter()
        mo = repro.MaxOverlap().solve(problem)
        t_mo = time.perf_counter() - start

        assert abs(mf.score - mo.score) < 1e-9 * max(1.0, mf.score), \
            "solvers disagree"
        rows.append({
            "n_customers": n,
            "maxfirst_s": t_mf,
            "maxoverlap_s": t_mo,
            "score": mf.score,
            "nlc_pairs": mo.overlap_stats.intersecting_pairs,
        })
        print(f"n={n:>5}: maxfirst {t_mf:.3f}s, maxoverlap {t_mo:.3f}s, "
              f"same optimum {mf.score:g}")

    print()
    print(format_table(rows))
    print()
    print(speedup_summary(rows, "maxfirst_s", "maxoverlap_s"))
    print()
    print(ascii_chart(
        [row["n_customers"] for row in rows],
        {"maxfirst": [row["maxfirst_s"] for row in rows],
         "maxoverlap": [row["maxoverlap_s"] for row in rows]},
        title="runtime vs |O| (seconds, log scale) — cf. paper Fig. 10(a)"))


if __name__ == "__main__":
    main()
