"""Retail expansion: where should the next store go?

A grocery chain models its metro area with weighted demand points —
shopping malls count for many shoppers, residential blocks for few — and
the competitor stores already in place.  Shoppers realistically patronise
their two nearest stores, favouring the closest (model {0.7, 0.3}).

The script:

1. builds a weighted MaxBRkNN instance over clustered demand,
2. finds the optimal region for a new store with MaxFirst,
3. audits the answer against a shortlist of available lots using the
   influence evaluator (the optimum must beat every lot),
4. shows how the answer shifts if shoppers were single-store loyal (k=1).

Run:  python examples/store_placement.py
"""

import numpy as np

import repro
from repro.datasets import clustered_points, uniform_points


def build_market(seed: int = 42):
    """Weighted demand points and competitor stores for one metro area."""
    rng = np.random.default_rng(seed)
    # 1200 residential blocks (weight ~ households) in neighbourhoods.
    blocks = clustered_points(1200, clusters=10, seed=seed,
                              cluster_spread=0.05)
    block_weights = rng.uniform(20.0, 80.0, blocks.shape[0])
    # 15 malls: few, heavy.
    malls = uniform_points(15, seed=seed + 1)
    mall_weights = rng.uniform(500.0, 1500.0, malls.shape[0])

    customers = np.vstack((blocks, malls))
    weights = np.concatenate((block_weights, mall_weights))
    competitors = uniform_points(25, seed=seed + 2)
    return customers, weights, competitors


def main() -> None:
    customers, weights, competitors = build_market()
    problem = repro.MaxBRkNNProblem(
        customers=customers, sites=competitors, k=2, weights=weights,
        probability=[0.7, 0.3])

    result = repro.MaxFirst().solve(problem)
    best = result.optimal_location()
    print(f"demand points: {problem.n_customers}  "
          f"(total weight {weights.sum():,.0f})")
    print(f"competitor stores: {problem.n_sites}")
    print()
    print(f"optimal influence: {result.score:,.1f} weighted shoppers")
    print(f"open the store near ({best.x:.4f}, {best.y:.4f}); any point "
          f"of the optimal region does equally well")
    print(f"region area: {result.best_region.area:.2e} "
          f"({len(result.best_region.cover)} demand circles define it)")
    print()

    # Audit against a shortlist of actually-available lots.
    lots = uniform_points(8, seed=7)
    evaluator = repro.InfluenceEvaluator(problem, nlcs=result.nlcs)
    print("available lots, ranked:")
    for rank, breakdown in enumerate(evaluator.rank_candidates(lots), 1):
        print(f"  {rank}. ({breakdown.x:.3f}, {breakdown.y:.3f})  "
              f"influence {breakdown.total:,.1f}  "
              f"({breakdown.customer_count} demand points)")
    top_lot = evaluator.rank_candidates(lots)[0]
    assert top_lot.total <= result.score + 1e-9, \
        "no lot can beat the optimal region"
    print(f"\nbest lot captures {top_lot.total / result.score:.0%} of the "
          f"theoretical optimum")

    # Sensitivity: single-store-loyal shoppers.
    loyal = repro.MaxBRkNNProblem(customers=customers, sites=competitors,
                                  k=1, weights=weights)
    loyal_result = repro.MaxFirst().solve(loyal)
    loc = loyal_result.optimal_location()
    print(f"\nif shoppers only ever used their nearest store (k=1):")
    print(f"  optimal influence {loyal_result.score:,.1f} near "
          f"({loc.x:.4f}, {loc.y:.4f})")


if __name__ == "__main__":
    main()
