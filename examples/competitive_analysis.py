"""Competitive analysis: who loses when the new site opens?

Finds the optimal location for a market entrant, then quantifies the
fallout: which incumbent sites lose how much influence, which customers
defect at what rate — plus an SVG map of the instance and the optimal
region, and a JSON archive of the solve.

Run:  python examples/competitive_analysis.py
"""

from pathlib import Path

import repro
from repro.core.queries import impact_of_new_site, site_influence
from repro.datasets import synthetic_instance
from repro.io import save_result
from repro.viz import render_result


def main() -> None:
    customers, sites = synthetic_instance(2_000, 30, "clustered", seed=12)
    problem = repro.MaxBRkNNProblem(customers, sites, k=2,
                                    probability=[0.75, 0.25])

    result = repro.MaxFirst().solve(problem)
    entry = result.optimal_location()
    print(f"market: {problem.n_customers} customers, "
          f"{problem.n_sites} incumbent sites")
    print(f"optimal entry point: ({entry.x:.4f}, {entry.y:.4f}) with "
          f"influence {result.score:.2f}")
    print()

    before = site_influence(problem)
    impact = impact_of_new_site(problem, entry.x, entry.y)
    print(f"customers won (any visiting probability): "
          f"{impact.customers_won}")
    print(f"entrant's gain: {impact.gain:.2f}")
    print(f"total incumbent loss: {impact.total_incumbent_loss():.2f}")
    print()

    print("hardest-hit incumbents:")
    ranked = sorted(impact.incumbent_losses.items(),
                    key=lambda kv: -kv[1])[:5]
    for site_idx, loss in ranked:
        share = loss / before[site_idx] if before[site_idx] else 0.0
        x, y = problem.sites[site_idx]
        print(f"  site {site_idx} at ({x:.3f}, {y:.3f}): "
              f"-{loss:.2f} influence ({share:.0%} of its base "
              f"{before[site_idx]:.2f})")

    # Artifacts: an SVG map and a JSON archive of the full result.
    out_dir = Path("examples_output")
    out_dir.mkdir(exist_ok=True)
    svg_path = out_dir / "competitive_analysis.svg"
    render_result(problem, result).save(svg_path)
    json_path = out_dir / "competitive_analysis.json"
    save_result(json_path, result)
    print()
    print(f"map written to {svg_path}")
    print(f"solve archived to {json_path}")


if __name__ == "__main__":
    main()
