"""Quickstart: the paper's running example, end to end.

Three customers, four existing service sites, k = 2.  Depending on how
likely customers are to visit their second-nearest site, the best place
for a new site changes — exactly the motivating example of the paper
(Figures 1-3): with probabilities {0.8, 0.2} the optimum serves two
customers at 80% (influence 1.6); with {0.5, 0.5} it serves three at 50%
(influence 1.5), and MaxFirst agrees with MaxOverlap.

Run:  python examples/quickstart.py
"""

import repro
from repro.bench.worked_example import CUSTOMERS, SITES


def main() -> None:
    print("Customers:", CUSTOMERS.tolist())
    print("Sites:    ", SITES.tolist())
    print()

    for model in ([0.8, 0.2], [0.5, 0.5]):
        result = repro.find_optimal_regions(
            CUSTOMERS, SITES, k=2, probability=model)
        location = result.optimal_location()
        print(f"probability model {model}:")
        print(f"  maximum influence: {result.score:.3f}")
        print(f"  optimal regions:   {len(result.regions)}")
        print(f"  example location:  ({location.x:.3f}, {location.y:.3f})")
        region = result.best_region
        print(f"  region area:       {region.area:.4f}")

        # Which customers does the optimum win, and how strongly?
        problem = repro.MaxBRkNNProblem(CUSTOMERS, SITES, k=2,
                                        probability=model)
        breakdown = repro.influence_at(problem, location.x, location.y)
        for customer, share in sorted(breakdown.customers.items()):
            print(f"    customer o{customer + 1}: {share:.0%} of visits")
        print()

    # The same query through the baseline solver — same optimum.
    problem = repro.MaxBRkNNProblem(CUSTOMERS, SITES, k=2,
                                    probability=[0.5, 0.5])
    baseline = repro.MaxOverlap().solve(problem)
    print(f"MaxOverlap (baseline) agrees: influence {baseline.score:.3f}")


if __name__ == "__main__":
    main()
