"""Influence heat map: where would a new site be strong, everywhere?

A solve answers "where is the optimum"; a heat map answers the broader
planning question "how good is *every* part of the map".  This demo
builds the fig11-style tiny instance the serve workload uses (800
uniform customers, 40 sites, k = 2), materialises MaxFirst's Phase I
tessellation into a 48x48 tile grid — each tile carrying a *proven
lower* influence bound (attained somewhere inside the tile) and a
*certified upper* bound — and renders it as an SVG: white (weak) →
gold → crimson (strong), with the tiles whose ceiling ties the global
optimum outlined (every optimal location lives in one of them).

The same field is one request away from a running daemon
(``repro query --kind heatmap --nx 48 --ny 48 --svg out.svg``), where
repeats are answered from the serve result cache.

Run:  PYTHONPATH=src python examples/influence_heatmap.py
      (writes influence_heatmap.svg next to this script)
"""

import os

from repro.core.heatmap import build_heatmap
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs, nlc_space
from repro.serve.workload import tiny_problem
from repro.viz import render_heatmap


def main() -> None:
    problem = tiny_problem()
    nlcs = build_nlcs(problem)
    space = nlc_space(nlcs)

    heatmap = build_heatmap(nlcs, space, 48, 48)
    _accepted, score, _stats = MaxFirst().run_phase1(nlcs, space)

    lower_best = float(heatmap.lower.max())
    upper_best = float(heatmap.upper.max())
    candidates = int((heatmap.upper >= upper_best * (1 - 1e-9)).sum())
    print(f"instance: {problem.n_customers} customers, "
          f"{problem.n_sites} sites, k={problem.k}")
    print(f"exact optimum (Phase I):        {score:.4f}")
    print(f"best proven tile lower bound:   {lower_best:.4f}")
    print(f"best certified tile ceiling:    {upper_best:.4f}")
    print(f"tiles that may hold an optimum: {candidates} "
          f"of {heatmap.nx * heatmap.ny}")
    assert lower_best <= score <= upper_best

    out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "influence_heatmap.svg")
    render_heatmap(heatmap, problem=problem).save(out)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
