"""Base-station planning: top-3 candidate zones for a new cell tower.

The paper's introductory application: subscribers connect to nearby base
stations, and an operator wants the zone where one new station would reach
the most subscribers.  Handsets in practice attach to any of their three
nearest stations, preferring closer ones — the harmonic (M2) model from
the paper's experiments.

This example also exercises the ``top_t`` extension: the operator wants
the three best *distinct* zones, because land acquisition may fall
through in the best one.

Run:  python examples/base_station_planning.py
"""

import repro
from repro.core.probability import ProbabilityModel
from repro.datasets import make_ux, split_sites


def main() -> None:
    # A scaled sample of the UX dataset stand-in: populated places with
    # many small clusters, the paper's Figure 14 workload.
    points = make_ux(2_500)
    subscribers, stations = split_sites(points, n_sites=50, seed=3)

    model = ProbabilityModel.harmonic(3)
    print(f"subscriber points: {subscribers.shape[0]}")
    print(f"existing stations: {stations.shape[0]}")
    print(f"attachment model (M2): "
          f"{[round(p, 3) for p in model.probs]}")
    print()

    problem = repro.MaxBRkNNProblem(
        customers=subscribers, sites=stations, k=3, probability=model)
    result = repro.MaxFirst(top_t=3).solve(problem)

    # top_t returns guaranteed-score tiers: every location in zone i
    # reaches at least that zone's score.  Nearby tiers can be adjacent
    # plateaus around the same hot spot — still useful when the best lot
    # is unavailable.
    print(f"found {len(result.regions)} candidate zone(s) in the top 3 "
          f"score tiers")
    for rank, region in enumerate(result.regions, 1):
        p = region.representative_point()
        print(f"  zone {rank}: expected reach {region.score:.2f} "
              f"subscribers, e.g. at ({p.x:.3f}, {p.y:.3f}), "
              f"area {region.area:.3e}")
    print()

    stats = result.stats
    print("search effort (Phase I):")
    print(f"  quadrants generated: {stats.generated}")
    print(f"  quadrants split:     {stats.splits} "
          f"({stats.splits / subscribers.shape[0]:.1%} of subscribers)")
    print(f"  pruned by Theorem 2: {stats.pruned_theorem2}")
    print(f"  pruned by Theorem 3: {stats.pruned_theorem3}")
    print(f"  total time:          {result.total_time:.3f}s")


if __name__ == "__main__":
    main()
