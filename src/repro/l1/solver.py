"""Exact L1 optimal-region solver by compressed-grid sweep.

The influence field of square NLCs is piecewise constant on the grid
spanned by the squares' edges.  Under region semantics (open squares —
a new site exactly on a square's edge only ties the incumbent) the value
of every *open grid cell* is constant and every full-dimensional optimal
region is a union of such cells, so:

1. compress the u/v edge coordinates into a ``(#u-1) x (#v-1)`` cell
   grid;
2. add every square to a 2-D difference array over that grid (its score
   lands on exactly the cells its open interior covers);
3. prefix-sum; the maximum cell value is the optimum, and the maximal
   connected blocks of maximum cells are the optimal regions.

This is exact — no search, no tolerance management — at the price of a
``O(n^2)`` cell grid, which is perfectly practical at the scales L1
city-block analyses run at (thousands of customers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import MaxBRkNNProblem
from repro.geometry.rect import Rect
from repro.l1.squares import SquareSet, build_l1_nlcs, from_chebyshev

# Guard against accidentally feeding a paper-scale instance to the
# quadratic-memory sweep (50K customers -> 1e10 cells).
MAX_GRID_CELLS = 200_000_000


@dataclass(frozen=True)
class L1Region:
    """One optimal region of an L1 instance.

    ``rect_uv`` is the region in the rotated frame (axis-aligned there);
    ``polygon_xy`` is its footprint in the original frame — a 45°-rotated
    rectangle, listed as four CCW corners.
    """

    score: float
    rect_uv: Rect
    polygon_xy: tuple[tuple[float, float], ...]

    @property
    def area(self) -> float:
        """Area in the ORIGINAL frame (the rotation halves areas)."""
        return self.rect_uv.area / 2.0

    def representative_point(self) -> tuple[float, float]:
        """An optimal location in the original frame."""
        c = self.rect_uv.center
        x, y = from_chebyshev(np.array([[c.x, c.y]]))[0]
        return (float(x), float(y))

    def contains_point(self, x: float, y: float) -> bool:
        """Closed-region membership of an original-frame point."""
        u = x + y
        v = x - y
        return self.rect_uv.contains_point(u, v)


@dataclass(frozen=True)
class L1Result:
    """Outcome of an L1 optimal-region query."""

    score: float
    regions: tuple[L1Region, ...]
    nlcs: SquareSet
    cell_count: int
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def best_region(self) -> L1Region:
        if not self.regions:
            raise ValueError("result has no regions")
        return self.regions[0]


def solve_l1(problem: MaxBRkNNProblem, max_regions: int = 16,
             keep_zero_score: bool = False) -> L1Result:
    """Solve the generalized MaxBRkNN problem under the L1 metric.

    Returns the exact optimum and up to ``max_regions`` maximal optimal
    regions (rectangles in the rotated frame).  Raises ``ValueError``
    when the compressed grid would exceed :data:`MAX_GRID_CELLS`.
    """
    t0 = time.perf_counter()
    nlcs = build_l1_nlcs(problem, keep_zero_score=keep_zero_score)
    t1 = time.perf_counter()
    if len(nlcs) == 0:
        # Legal degenerate instance (e.g. all weights zero).
        return L1Result(score=0.0, regions=(), nlcs=nlcs, cell_count=0,
                        timings={"nlc": t1 - t0, "sweep": 0.0})
    result = solve_l1_nlcs(nlcs, max_regions=max_regions)
    result.timings["nlc"] = t1 - t0
    return result


def solve_l1_nlcs(nlcs: SquareSet, max_regions: int = 16,
                  resolution_fraction: float = 1e-12) -> L1Result:
    """Sweep solve over an explicit square set.

    ``resolution_fraction`` sets the geometric resolution: edge
    coordinates closer than this fraction of the data extent are merged
    and squares snap to the merged grid, so hairline cells (ulp-scale
    slivers between nearly-identical edges) cannot masquerade as
    full-dimensional optimal regions.
    """
    if len(nlcs) == 0:
        raise ValueError("cannot solve over an empty square set")
    t0 = time.perf_counter()
    us, vs = nlcs.edges()
    extent = max(us[-1] - us[0], vs[-1] - vs[0], 1e-300)
    tol = extent * resolution_fraction
    us = _merge_close(us, tol)
    vs = _merge_close(vs, tol)
    n_u = us.shape[0] - 1
    n_v = vs.shape[0] - 1
    if n_u < 1 or n_v < 1:
        # All squares degenerate (zero radius): no full-dim region exists;
        # region semantics yields score 0 anywhere else.
        return L1Result(score=0.0, regions=(), nlcs=nlcs, cell_count=0,
                        timings={"sweep": 0.0})
    if n_u * n_v > MAX_GRID_CELLS:
        raise ValueError(
            f"compressed grid needs {n_u * n_v} cells "
            f"(> {MAX_GRID_CELLS}); the L1 sweep is quadratic in the "
            "instance size — subsample or use the L2 solver")

    # Difference array over cells; square covers cell columns
    # [lo_u, hi_u) where lo/hi are its edge indices.
    diff = np.zeros((n_u + 1, n_v + 1), dtype=np.float64)
    lo_u = _snap(us, nlcs.cu - nlcs.half)
    hi_u = _snap(us, nlcs.cu + nlcs.half)
    lo_v = _snap(vs, nlcs.cv - nlcs.half)
    hi_v = _snap(vs, nlcs.cv + nlcs.half)
    # Zero-radius squares cover no open cell (lo == hi): harmless below.
    np.add.at(diff, (lo_u, lo_v), nlcs.scores)
    np.add.at(diff, (lo_u, hi_v), -nlcs.scores)
    np.add.at(diff, (hi_u, lo_v), -nlcs.scores)
    np.add.at(diff, (hi_u, hi_v), nlcs.scores)
    cells = diff.cumsum(axis=0).cumsum(axis=1)[:n_u, :n_v]

    best = float(cells.max())
    tie = 1e-9 * max(1.0, abs(best))
    mask = cells >= best - tie
    regions = _extract_regions(mask, us, vs, best, max_regions)
    t1 = time.perf_counter()
    return L1Result(score=best, regions=tuple(regions), nlcs=nlcs,
                    cell_count=n_u * n_v, timings={"sweep": t1 - t0})


def _merge_close(edges: np.ndarray, tol: float) -> np.ndarray:
    """Drop edges within ``tol`` of their predecessor (keep the first)."""
    if edges.shape[0] <= 1 or tol <= 0.0:
        return edges
    keep = np.empty(edges.shape[0], dtype=bool)
    keep[0] = True
    np.greater(np.diff(edges), tol, out=keep[1:])
    return edges[keep]


def _snap(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Index of the merged edge nearest to each value."""
    idx = np.searchsorted(edges, values)
    idx = np.clip(idx, 0, edges.shape[0] - 1)
    prev = np.clip(idx - 1, 0, edges.shape[0] - 1)
    use_prev = (np.abs(values - edges[prev])
                <= np.abs(edges[idx] - values))
    return np.where(use_prev, prev, idx)


def _extract_regions(mask: np.ndarray, us: np.ndarray, vs: np.ndarray,
                     score: float, max_regions: int) -> list[L1Region]:
    """Greedy maximal rectangles over the optimum-cell mask.

    Optimal regions are unions of maximum cells; we report each connected
    block as maximal axis-aligned rectangles (greedy row-expansion — the
    blocks are almost always single rectangles: intersections of
    squares).
    """
    mask = mask.copy()
    out: list[L1Region] = []
    while mask.any() and len(out) < max_regions:
        iu, iv = np.unravel_index(int(mask.argmax()), mask.shape)
        # Grow right along v, then down along u, keeping a full rectangle.
        hi_v = iv
        while hi_v + 1 < mask.shape[1] and mask[iu, hi_v + 1]:
            hi_v += 1
        hi_u = iu
        while (hi_u + 1 < mask.shape[0]
               and mask[hi_u + 1, iv:hi_v + 1].all()):
            hi_u += 1
        mask[iu:hi_u + 1, iv:hi_v + 1] = False
        rect_uv = Rect(float(us[iu]), float(vs[iv]),
                       float(us[hi_u + 1]), float(vs[hi_v + 1]))
        corners_uv = np.array([
            (rect_uv.xmin, rect_uv.ymin), (rect_uv.xmax, rect_uv.ymin),
            (rect_uv.xmax, rect_uv.ymax), (rect_uv.xmin, rect_uv.ymax)])
        polygon = tuple((float(x), float(y))
                        for x, y in from_chebyshev(corners_uv))
        out.append(L1Region(score=score, rect_uv=rect_uv,
                            polygon_xy=polygon))
    return out
