"""Square NLCs: the L1 metric's nearest location regions.

Everything here works in the *rotated frame* ``(u, v) = (x + y, x - y)``
where the L1 ball is an axis-aligned square.  ``to_chebyshev`` /
``from_chebyshev`` convert between frames (the map doubles lengths:
``L1(x, y) == Chebyshev(u, v)`` exactly, no scaling correction needed).
"""

from __future__ import annotations

import numpy as np

from repro.core.nlc import _BRUTE_CHUNK  # same chunking policy
from repro.core.problem import MaxBRkNNProblem


def to_chebyshev(points: np.ndarray) -> np.ndarray:
    """Rotate ``(x, y)`` points into the ``(u, v)`` frame."""
    pts = np.asarray(points, dtype=np.float64)
    return np.column_stack((pts[:, 0] + pts[:, 1],
                            pts[:, 0] - pts[:, 1]))


def from_chebyshev(points: np.ndarray) -> np.ndarray:
    """Rotate ``(u, v)`` points back into the ``(x, y)`` frame."""
    pts = np.asarray(points, dtype=np.float64)
    return np.column_stack(((pts[:, 0] + pts[:, 1]) / 2.0,
                            (pts[:, 0] - pts[:, 1]) / 2.0))


def l1_knn_distances(queries: np.ndarray, points: np.ndarray,
                     k: int) -> np.ndarray:
    """Distances from each query to its ``k`` nearest points under L1."""
    queries = np.asarray(queries, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if k < 1 or k > points.shape[0]:
        raise ValueError(f"k={k} out of range for {points.shape[0]} points")
    out = np.empty((queries.shape[0], k), dtype=np.float64)
    px = points[:, 0]
    py = points[:, 1]
    for start in range(0, queries.shape[0], _BRUTE_CHUNK):
        chunk = queries[start:start + _BRUTE_CHUNK]
        d = (np.abs(chunk[:, 0:1] - px[None, :])
             + np.abs(chunk[:, 1:2] - py[None, :]))
        if k < points.shape[0]:
            part = np.partition(d, k - 1, axis=1)[:, :k]
        else:
            part = d
        part.sort(axis=1)
        out[start:start + _BRUTE_CHUNK] = part
    return out


class SquareSet:
    """Structure-of-arrays store of scored axis-aligned squares
    (rotated-frame NLCs).

    ``cu, cv`` are centres in the rotated frame; ``half`` the half-widths
    (= the L1 radii); ``scores`` the Definition 2 scores.
    """

    __slots__ = ("cu", "cv", "half", "scores", "owners", "levels")

    def __init__(self, cu: np.ndarray, cv: np.ndarray, half: np.ndarray,
                 scores: np.ndarray, owners: np.ndarray | None = None,
                 levels: np.ndarray | None = None) -> None:
        self.cu = np.ascontiguousarray(cu, dtype=np.float64)
        self.cv = np.ascontiguousarray(cv, dtype=np.float64)
        self.half = np.ascontiguousarray(half, dtype=np.float64)
        self.scores = np.ascontiguousarray(scores, dtype=np.float64)
        n = self.cu.shape[0]
        if not (self.cv.shape[0] == self.half.shape[0]
                == self.scores.shape[0] == n):
            raise ValueError("SquareSet arrays must have equal length")
        if n and float(self.half.min()) < 0:
            raise ValueError("negative half-width in SquareSet")
        self.owners = (np.full(n, -1, dtype=np.int64) if owners is None
                       else np.ascontiguousarray(owners, dtype=np.int64))
        self.levels = (np.zeros(n, dtype=np.int64) if levels is None
                       else np.ascontiguousarray(levels, dtype=np.int64))

    def __len__(self) -> int:
        return int(self.cu.shape[0])

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted unique u-edges and v-edges of all squares."""
        us = np.concatenate((self.cu - self.half, self.cu + self.half))
        vs = np.concatenate((self.cv - self.half, self.cv + self.half))
        return np.unique(us), np.unique(vs)

    def cover_scores_at_points(self, points_uv: np.ndarray,
                               strict: bool = True) -> np.ndarray:
        """Total score at rotated-frame points (open squares when
        ``strict`` — region semantics)."""
        pts = np.asarray(points_uv, dtype=np.float64)
        du = np.abs(pts[:, 0:1] - self.cu[None, :])
        dv = np.abs(pts[:, 1:2] - self.cv[None, :])
        inside = np.maximum(du, dv)
        mask = (inside < self.half[None, :] if strict
                else inside <= self.half[None, :])
        return mask @ self.scores


def build_l1_nlcs(problem: MaxBRkNNProblem,
                  keep_zero_score: bool = False) -> SquareSet:
    """L1 NLCs (squares in the rotated frame) for every customer.

    Mirrors :func:`repro.core.nlc.build_nlcs` with L1 radii.
    """
    dists = l1_knn_distances(problem.customers, problem.sites, problem.k)
    n = problem.n_customers
    k = problem.k

    score_rows = np.empty((n, k), dtype=np.float64)
    cache: dict[tuple, np.ndarray] = {}
    for i, model in enumerate(problem.models):
        base = cache.get(model.probs)
        if base is None:
            base = np.array(model.scores(1.0), dtype=np.float64)
            cache[model.probs] = base
        score_rows[i] = base
    score_rows *= problem.weights[:, None]

    centers_uv = to_chebyshev(problem.customers)
    cu = np.repeat(centers_uv[:, 0], k)
    cv = np.repeat(centers_uv[:, 1], k)
    half = dists.reshape(-1)
    scores = score_rows.reshape(-1)
    owners = np.repeat(np.arange(n, dtype=np.int64), k)
    levels = np.tile(np.arange(1, k + 1, dtype=np.int64), n)

    if not keep_zero_score:
        keep = scores > 0.0
        cu, cv = cu[keep], cv[keep]
        half, scores = half[keep], scores[keep]
        owners, levels = owners[keep], levels[keep]
    return SquareSet(cu, cv, half, scores, owners=owners, levels=levels)
