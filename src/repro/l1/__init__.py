"""The L1 (Manhattan) metric variant of the optimal-location problem.

Du et al.'s optimal-location query — the lineage the paper builds on —
is posed in the L1 metric.  Under the rotation ``u = x + y, v = x - y``
the L1 ball of radius ``r`` becomes an axis-aligned square of half-width
``r`` in ``(u, v)`` (the Chebyshev ball), so the whole problem turns
rectilinear: NLCs are squares, optimal regions are axis-aligned
rectangles in the rotated frame (45°-rotated rectangles in the original
frame), and the influence field is piecewise constant on the grid spanned
by the squares' edges.

That structure admits an *exact* sweep solver
(:func:`~repro.l1.solver.solve_l1`): compress the edge coordinates, add
each square to a 2-D difference array, prefix-sum, and read off the best
cell.  It needs ``O(n^2)`` cells, which is exact and fast at the scales
where an L1 variant is typically used (city-block queries over thousands
of points); DESIGN.md notes the quadtree generalisation as future work.
"""

from repro.l1.solver import L1Region, L1Result, solve_l1
from repro.l1.squares import (SquareSet, build_l1_nlcs, from_chebyshev,
                              l1_knn_distances, to_chebyshev)

__all__ = [
    "L1Region",
    "L1Result",
    "SquareSet",
    "build_l1_nlcs",
    "from_chebyshev",
    "l1_knn_distances",
    "solve_l1",
    "to_chebyshev",
]
