"""Seeded substitutes for the paper's real-world datasets (Table III).

The paper downloads two point sets from ``rtreeportal.org`` (now defunct):

* **UX** — 19,499 populated places and cultural landmarks in the US and
  Mexico: a continental-scale extent with many small population clusters
  and diffuse rural background.
* **NE** — 123,593 geographic locations in north-east America: far denser
  and dominated by metropolitan agglomerations.

With the originals unavailable offline we generate substitutes with the
same cardinalities and the qualitative structure above (DESIGN.md §4).
The Figure 14 experiments depend on cardinality and *clusteredness* (which
sets the skew of NLC density), both preserved here.  Generators are
deterministic per seed.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import clustered_points
from repro.geometry.rect import Rect

UX_CARDINALITY = 19_499
NE_CARDINALITY = 123_593

# Rough projected extents (degrees): US+Mexico for UX, the north-eastern
# seaboard for NE.  Only the aspect ratio matters to the algorithms.
UX_BOUNDS = Rect(-125.0, 14.0, -66.0, 50.0)
NE_BOUNDS = Rect(-80.0, 38.0, -66.0, 48.0)


def make_ux(n: int | None = None, seed: int = 20110411) -> np.ndarray:
    """The UX substitute: sparse, many small clusters, wide extent.

    ``n`` defaults to the genuine cardinality; pass a smaller value for
    scaled-down runs (sampling keeps the distribution).
    """
    full = clustered_points(
        UX_CARDINALITY, clusters=60, seed=seed, bounds=UX_BOUNDS,
        cluster_spread=0.02, background_fraction=0.35)
    return _maybe_subsample(full, n, seed)


def make_ne(n: int | None = None, seed: int = 20110412) -> np.ndarray:
    """The NE substitute: dense metropolitan clusters, small extent."""
    full = clustered_points(
        NE_CARDINALITY, clusters=25, seed=seed, bounds=NE_BOUNDS,
        cluster_spread=0.035, background_fraction=0.15)
    return _maybe_subsample(full, n, seed)


def split_sites(points: np.ndarray, n_sites: int,
                seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """The paper's Figure 14 protocol: randomly pick ``n_sites`` points as
    service sites; the remaining points become the customer objects.

    Returns ``(customers, sites)``.
    """
    points = np.asarray(points, dtype=np.float64)
    if not 0 < n_sites < points.shape[0]:
        raise ValueError(
            f"n_sites={n_sites} must be in (0, {points.shape[0]})")
    rng = np.random.default_rng(seed)
    order = rng.permutation(points.shape[0])
    sites = points[order[:n_sites]]
    customers = points[order[n_sites:]]
    return customers, sites


def _maybe_subsample(points: np.ndarray, n: int | None,
                     seed: int) -> np.ndarray:
    if n is None or n >= points.shape[0]:
        return points
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed + 1)
    idx = rng.choice(points.shape[0], size=n, replace=False)
    return points[np.sort(idx)]
