"""Synthetic workload generators (Section VI, Table II).

The paper evaluates on synthetic customer/site sets drawn from a uniform
or a normal distribution over the unit square, with both sets sharing one
distribution per experiment.  Every generator takes a seed and is fully
deterministic, so experiments and tests are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.geometry.rect import Rect

UNIT_SQUARE = Rect(0.0, 0.0, 1.0, 1.0)


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_points(n: int, seed: int | np.random.Generator | None = 0,
                   bounds: Rect = UNIT_SQUARE) -> np.ndarray:
    """``n`` points uniformly distributed over ``bounds``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = _rng(seed)
    pts = rng.random((n, 2))
    pts[:, 0] = bounds.xmin + pts[:, 0] * bounds.width
    pts[:, 1] = bounds.ymin + pts[:, 1] * bounds.height
    return pts


def normal_points(n: int, seed: int | np.random.Generator | None = 0,
                  bounds: Rect = UNIT_SQUARE,
                  spread: float = 0.15) -> np.ndarray:
    """``n`` points from a normal distribution centred in ``bounds``.

    ``spread`` is the standard deviation as a fraction of the bounds'
    extent.  Samples are clipped to the bounds (the paper's data space is
    finite); with the default spread, clipping affects well under 1% of
    points, so the density skew — the property the paper's "normal
    distribution" experiments probe — is preserved.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if spread <= 0:
        raise ValueError("spread must be positive")
    rng = _rng(seed)
    center = bounds.center
    pts = rng.normal(
        loc=(center.x, center.y),
        scale=(spread * bounds.width, spread * bounds.height),
        size=(n, 2))
    np.clip(pts[:, 0], bounds.xmin, bounds.xmax, out=pts[:, 0])
    np.clip(pts[:, 1], bounds.ymin, bounds.ymax, out=pts[:, 1])
    return pts


def clustered_points(n: int, clusters: int = 8,
                     seed: int | np.random.Generator | None = 0,
                     bounds: Rect = UNIT_SQUARE,
                     cluster_spread: float = 0.03,
                     background_fraction: float = 0.1) -> np.ndarray:
    """``n`` points in Gaussian clusters plus uniform background noise.

    A multi-modal skew generator: real geographic point sets (the paper's
    UX/NE data) are clustered around many population centres rather than
    one normal bump.  ``background_fraction`` of the points are uniform
    noise; the rest split evenly across ``clusters`` Gaussian blobs with
    per-axis deviation ``cluster_spread`` times the bounds' extent.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if clusters < 1:
        raise ValueError("clusters must be positive")
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must be within [0, 1]")
    rng = _rng(seed)
    n_background = int(round(n * background_fraction))
    n_clustered = n - n_background

    centers = uniform_points(clusters, rng, bounds)
    assignment = rng.integers(0, clusters, size=n_clustered)
    offsets = rng.normal(scale=(cluster_spread * bounds.width,
                                cluster_spread * bounds.height),
                         size=(n_clustered, 2))
    clustered = centers[assignment] + offsets
    np.clip(clustered[:, 0], bounds.xmin, bounds.xmax, out=clustered[:, 0])
    np.clip(clustered[:, 1], bounds.ymin, bounds.ymax, out=clustered[:, 1])

    background = uniform_points(n_background, rng, bounds)
    pts = np.vstack((clustered, background))
    rng.shuffle(pts, axis=0)
    return pts


def uniform_points_chunks(n: int, chunk_size: int,
                          seed: int | np.random.Generator | None = 0,
                          bounds: Rect = UNIT_SQUARE
                          ) -> Iterator[np.ndarray]:
    """Yield :func:`uniform_points`\\ (n) in ``chunk_size`` slices.

    The Generator draws its variates sequentially, so chunked draws
    concatenate **bit-identically** to the one-shot array — the
    streaming NLC build can consume customers without ever holding all
    ``n`` points (peak RAM O(chunk_size)).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    rng = _rng(seed)
    for start in range(0, n, chunk_size):
        yield uniform_points(min(chunk_size, n - start), rng, bounds)


def normal_points_chunks(n: int, chunk_size: int,
                         seed: int | np.random.Generator | None = 0,
                         bounds: Rect = UNIT_SQUARE,
                         spread: float = 0.15) -> Iterator[np.ndarray]:
    """Chunked :func:`normal_points` (bit-identical concatenation, like
    :func:`uniform_points_chunks`)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    rng = _rng(seed)
    for start in range(0, n, chunk_size):
        yield normal_points(min(chunk_size, n - start), rng, bounds,
                            spread=spread)


def striped_uniform_chunks(n: int, strips: int, seed: int = 0,
                           bounds: Rect = UNIT_SQUARE
                           ) -> Iterator[np.ndarray]:
    """Yield ``strips`` chunks, chunk ``j`` uniform over the ``j``-th
    vertical strip of ``bounds`` — a *spatially ordered* customer stream
    for the out-of-core tier.

    Stream position tracks x, so the NLC store's row order is spatial
    and an x-aligned tile's candidate disks land in a tight row range —
    exactly what makes per-tile ``attach_slice`` windows small in
    ``benchmarks/bench_scale.py``.  Each strip draws from its own
    spawned substream (``default_rng([seed, j])``), so any strip is
    regenerable independently of the rest.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if strips < 1:
        raise ValueError("strips must be positive")
    base = n // strips
    extra = n % strips
    x0 = bounds.xmin
    for j in range(strips):
        m = base + (1 if j < extra else 0)
        x1 = bounds.xmin + bounds.width * (j + 1) / strips
        strip = Rect(x0, bounds.ymin, x1, bounds.ymax)
        yield uniform_points(m, np.random.default_rng([seed, j]), strip)
        x0 = x1


def synthetic_instance(n_customers: int, n_sites: int,
                       distribution: str = "uniform",
                       seed: int = 0,
                       bounds: Rect = UNIT_SQUARE
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Customer and site sets sharing one distribution (paper protocol).

    ``distribution`` is ``"uniform"``, ``"normal"`` or ``"clustered"``;
    the two sets use independent substreams of the same seed.
    """
    rng = _rng(seed)
    makers = {
        "uniform": uniform_points,
        "normal": normal_points,
        "clustered": clustered_points,
    }
    try:
        maker = makers[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(makers)}") from None
    customers = maker(n_customers, seed=rng, bounds=bounds)
    sites = maker(n_sites, seed=rng, bounds=bounds)
    return customers, sites
