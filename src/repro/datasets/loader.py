"""CSV save/load for planar point sets.

The format is the two-column ``x,y`` CSV that spatial tool chains exchange;
an optional header row is detected on load.  Kept dependency-free (no
pandas in this environment).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np


def save_points_csv(path: str | Path, points: np.ndarray,
                    header: bool = True) -> None:
    """Write an ``(n, 2)`` point array as CSV."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got shape {pts.shape}")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["x", "y"])
        writer.writerows(pts.tolist())


def load_points_csv(path: str | Path) -> np.ndarray:
    """Read a two-column CSV of points; tolerates a header row."""
    rows: list[tuple[float, float]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for lineno, row in enumerate(reader):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) < 2:
                raise ValueError(
                    f"{path}: line {lineno + 1} has {len(row)} column(s), "
                    "expected 2")
            try:
                rows.append((float(row[0]), float(row[1])))
            except ValueError:
                if lineno == 0:
                    continue  # header row
                raise ValueError(
                    f"{path}: line {lineno + 1} is not numeric: {row!r}"
                ) from None
    if not rows:
        raise ValueError(f"{path}: no points found")
    return np.array(rows, dtype=np.float64)
