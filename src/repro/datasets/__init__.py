"""Workload generators and dataset IO.

* :mod:`~repro.datasets.synthetic` — the paper's synthetic workloads:
  uniformly and normally distributed customer/site sets, plus a clustered
  generator.
* :mod:`~repro.datasets.realworld` — seeded substitutes for the paper's
  UX and NE real-world datasets (rtreeportal.org is long gone; DESIGN.md
  §4 records the substitution).
* :mod:`~repro.datasets.loader` — CSV save/load for point sets.
"""

from repro.datasets.loader import load_points_csv, save_points_csv
from repro.datasets.realworld import (NE_CARDINALITY, UX_CARDINALITY,
                                      make_ne, make_ux, split_sites)
from repro.datasets.synthetic import (clustered_points, normal_points,
                                      synthetic_instance, uniform_points)

__all__ = [
    "NE_CARDINALITY",
    "UX_CARDINALITY",
    "clustered_points",
    "load_points_csv",
    "make_ne",
    "make_ux",
    "normal_points",
    "save_points_csv",
    "split_sites",
    "synthetic_instance",
    "uniform_points",
]
