"""Published instances: the registry behind the query service.

Publishing an instance is the expensive, once-per-dataset step; every
request after it runs against what publish produced:

* the NLC SoA, copied **once** into a :mod:`repro.store` backend — the
  parent and every pool worker attach read-only views by handle, so no
  request ever copies NLC bytes;
* the site kd-tree (:func:`repro.core.nlc.build_knn_tree`), built once
  and fed to the NLC build;
* the customer→site rank matrix (:func:`repro.core.queries.knn_sites`),
  the shared precomputation of every query operator;
* the Theorem-2/3 registry: after the first *exact* solve completes,
  the certified optimum seeds ``MaxMin`` of every later solve on the
  instance, and the accepted covers seed its Theorem 3 registry — the
  cross-request analogue of cross-tile seeding in the sharded engine,
  sound for the same reason (the seeding solve's regions are merged
  back into every seeded solve's answer).

The registry is keyed by the store handle's key string, so an instance
id doubles as the attachment key a worker rotates its cache around.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterator

import numpy as np

from repro.core.nlc import build_knn_tree, build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.queries import knn_sites
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet

__all__ = ["InstanceRegistry", "ServedInstance", "problem_from_payload"]

#: ``(cover, score, rect_tuple)`` — one accepted region of a completed
#: exact solve, in the shape the Theorem-3 seeding and the region merge
#: both consume.
SeedEntry = tuple[tuple[int, ...], float, tuple[float, float, float, float]]


def problem_from_payload(payload: tuple) -> MaxBRkNNProblem:
    """Rebuild a problem from a :meth:`ServedInstance.payload` tuple.

    Runs inside pool workers (their first batch for an instance); the
    payload ships the exact float64 arrays, so the rebuilt problem's
    operators answer bit-identically to the parent's.
    """
    from repro.core.probability import ProbabilityModel

    customers, sites, k, weights, probs = payload
    models = [ProbabilityModel.from_sequence(row) for row in probs]
    return MaxBRkNNProblem(customers=customers, sites=sites, k=int(k),
                           weights=weights, probability=models)


class ServedInstance:
    """One published instance and everything requests share.

    Construction is the publish step; it is done by
    :meth:`InstanceRegistry.publish`, never directly.
    """

    def __init__(self, instance_id: str, problem: MaxBRkNNProblem,
                 owner: Any, nlcs: CircleSet, space: Rect,
                 tree: Any, store: str) -> None:
        self.instance_id = instance_id
        self.problem = problem
        self.owner = owner          # NLCStore; None for a 0-NLC instance
        self.nlcs = nlcs            # attached read-only views
        self.space = space
        self.tree = tree
        self.store = store
        self.ranks: np.ndarray = knn_sites(problem)
        # Theorem-2/3 registry, populated by the first completed exact
        # solve (service layer).  Guarded by a lock: the HTTP front end
        # serves batches from worker threads.
        self._lock = threading.Lock()
        self.certified_bound: float | None = None
        self.seed_entries: tuple[SeedEntry, ...] = ()
        # Cache epoch: the result cache stamps every stored entry with
        # the epoch current at solve time, so bumping it (future
        # dynamics — site churn, customer updates) atomically hides
        # every cached answer for this instance without touching the
        # cache itself.
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Current cache epoch (monotonic; see :meth:`bump_epoch`)."""
        with self._lock:
            return self._epoch

    def bump_epoch(self) -> int:
        """Invalidate every cached result of this instance by moving to
        a fresh epoch; returns the new epoch.  The hook dynamic updates
        (ROADMAP item 3) will call after mutating the instance."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    @property
    def handle(self) -> Any:
        """The store handle workers attach by (``None`` without NLCs)."""
        return None if self.owner is None else self.owner.handle

    def payload(self) -> tuple:
        """The worker-transport problem payload (NLC-free; see
        :func:`problem_from_payload`)."""
        problem = self.problem
        probs = np.asarray([model.probs for model in problem.models],
                           dtype=np.float64)
        return (problem.customers, problem.sites, int(problem.k),
                problem.weights, probs)

    def certificate(self) -> tuple[float, tuple[SeedEntry, ...]]:
        """The current Theorem-2/3 registry: ``(bound, seed_entries)``.

        ``bound`` is 0.0 until an exact solve completes — seeding a zero
        bound is a no-op, so callers can always pass the pair through.
        """
        with self._lock:
            return (self.certified_bound or 0.0, self.seed_entries)

    def record_certificate(self, bound: float,
                           entries: tuple[SeedEntry, ...]) -> None:
        """Install an exact solve's certificate (first writer wins — the
        instance is immutable, so every exact solve proves the same
        optimum and the first one to finish is as good as any)."""
        with self._lock:
            if self.certified_bound is None:
                self.certified_bound = float(bound)
                self.seed_entries = tuple(entries)

    def close(self, *, keep: tuple[str, ...] = ()) -> None:
        """Release the store (idempotent): drop this process's attached
        views (``keep`` preserves sibling instances' attachments), then
        close the owner.  The instance is unusable afterwards."""
        from repro import store as nlc_store

        owner, self.owner = self.owner, None
        if owner is not None:
            # Drop the view references first so the mapping has no
            # exported buffers left when the backend closes it.
            self.nlcs = None  # type: ignore[assignment]
            nlc_store.detach(keep=keep)
            owner.close()


class InstanceRegistry:
    """Published instances by id; the service's source of truth.

    ``store`` picks the NLC backend for every publish
    (:func:`repro.store.resolve_store_name` semantics: explicit >
    ``REPRO_STORE`` env > ``ram``).
    """

    def __init__(self, store: str | None = None) -> None:
        self._store = store
        self._instances: dict[str, ServedInstance] = {}
        self._lock = threading.Lock()
        self._fallback_ids = itertools.count(1)

    def publish(self, problem: MaxBRkNNProblem, *,
                store: str | None = None,
                nlc_method: str = "auto") -> ServedInstance:
        """Publish ``problem``: build its NLC set once, copy it into the
        storage backend, and precompute the shared query state."""
        from repro import store as nlc_store

        backend = nlc_store.resolve_store_name(store or self._store)
        tree = build_knn_tree(problem.sites)
        nlcs = build_nlcs(problem, method=nlc_method, tree=tree)
        if len(nlcs) == 0:
            # Degenerate (all-zero-weight) instance: nothing to store,
            # but the query operators still answer — register it with a
            # synthetic id and no owner.
            instance = ServedInstance(
                instance_id=f"inst-{next(self._fallback_ids)}",
                problem=problem, owner=None, nlcs=nlcs,
                space=problem.data_bounds(), tree=tree, store=backend)
        else:
            owner = nlc_store.publish(nlcs, backend)
            attached = nlc_store.attach(owner.handle)
            instance = ServedInstance(
                instance_id=str(owner.handle[1]), problem=problem,
                owner=owner, nlcs=attached, space=nlc_space(attached),
                tree=tree, store=backend)
        with self._lock:
            self._instances[instance.instance_id] = instance
        return instance

    def get(self, instance_id: str) -> ServedInstance:
        with self._lock:
            instance = self._instances.get(instance_id)
        if instance is None:
            raise ValueError(f"unknown instance {instance_id!r} "
                             "(publish it first)")
        return instance

    def ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instances))

    def __iter__(self) -> Iterator[ServedInstance]:
        with self._lock:
            instances = list(self._instances.values())
        return iter(instances)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instances)

    def retire(self, instance_id: str) -> None:
        """Drop one instance and release its store (keeping the
        attachments of every instance still registered)."""
        with self._lock:
            instance = self._instances.pop(instance_id, None)
            keep = tuple(self._instances)
        if instance is not None:
            instance.close(keep=keep)

    def close(self) -> None:
        """Release every instance (idempotent)."""
        with self._lock:
            instances = list(self._instances.values())
            self._instances.clear()
        for instance in instances:
            instance.close()
