"""Stdlib HTTP front end for the query service.

``ServeDaemon`` wraps a :class:`~repro.serve.service.QueryService` and a
:class:`~repro.serve.batching.BatchScheduler` behind a
``ThreadingHTTPServer`` (loopback by default; ``port=0`` binds an
ephemeral port).  The surface is four JSON endpoints:

=========================  ===========================================
``POST /publish``          publish an instance; body carries the
                           problem (``customers``/``sites``/``k`` plus
                           optional ``weights``/``probability``/
                           ``store``), returns ``{"instance": id,
                           "nlcs": n, "store": backend}``.
``POST /query``            ``{"requests": [...]}`` — each entry a
                           :mod:`repro.serve.protocol` request doc;
                           returns ``{"responses": [...]}``
                           positionally.  All requests of one POST
                           enter the batch scheduler together, so they
                           coalesce (with any concurrent callers') into
                           shared service batches.
``GET  /health``           liveness + published instance ids.
``GET  /metrics``          counters/gauges snapshot of the registry.
``POST /shutdown``         graceful stop.
=========================  ===========================================

Errors follow the protocol's split: per-request problems come back as
``error``-kind response docs (HTTP 200 — the batch succeeded), while a
malformed envelope (bad JSON, unknown path) is an HTTP 4xx with
``{"error": ...}``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from repro.core.probability import ProbabilityModel
from repro.core.problem import MaxBRkNNProblem
from repro.obs import metrics as _obs_metrics
from repro.serve.batching import BatchScheduler
from repro.serve.cache import DEFAULT_CACHE_BYTES
from repro.serve.protocol import decode_request, encode_response
from repro.serve.service import QueryService

__all__ = ["ServeDaemon", "problem_from_doc"]

_NAMED_MODELS = {
    "uniform": ProbabilityModel.uniform,
    "linear": ProbabilityModel.linear,
    "harmonic": ProbabilityModel.harmonic,
}


def problem_from_doc(doc: dict[str, Any]) -> MaxBRkNNProblem:
    """Build a problem from a ``/publish`` JSON body.

    ``probability`` may be omitted (uniform), one of the named models
    (``uniform``/``linear``/``harmonic``), a flat probability sequence,
    or a per-customer list of sequences.
    """
    try:
        customers = doc["customers"]
        sites = doc["sites"]
        k = int(doc["k"])
    except KeyError as exc:
        raise ValueError(
            f"publish body is missing field {exc.args[0]!r}") from exc
    probability: Any = doc.get("probability")
    if isinstance(probability, str):
        factory = _NAMED_MODELS.get(probability)
        if factory is None:
            raise ValueError(
                f"unknown probability model {probability!r} (choose "
                f"from {', '.join(sorted(_NAMED_MODELS))})")
        probability = factory(k)
    elif (isinstance(probability, list) and probability
          and isinstance(probability[0], list)):
        probability = [ProbabilityModel.from_sequence(row)
                       for row in probability]
    weights = doc.get("weights")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
    return MaxBRkNNProblem(customers=customers, sites=sites, k=k,
                           weights=weights, probability=probability)


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the daemon installs itself as ``server.daemon``."""

    # HTTP/1.1 keeps the connection alive between requests (every
    # response already carries Content-Length), so a persistent
    # ServeClient pays TCP setup once instead of once per POST — the
    # bulk of the former socket-vs-in-process overhead.
    protocol_version = "HTTP/1.1"

    # On a persistent connection the headers and the JSON body go out
    # as separate small writes; without TCP_NODELAY, Nagle holds the
    # second write until the first is ACKed and a ~40ms delayed-ACK
    # stall lands on every response.  (HTTP/1.0 never saw this — the
    # per-request close flushed the stream.)
    disable_nagle_algorithm = True

    # Quiet by default — the smoke/CI logs only want the daemon's own
    # lines, not one access-log line per request.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing ------------------------------------------------------- #

    def _send_json(self, status: int, doc: dict[str, Any]) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    # -- routes --------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        daemon: "ServeDaemon" = self.server.daemon  # type: ignore[attr-defined]
        if self.path == "/health":
            self._send_json(200, {
                "status": "ok",
                "instances": list(daemon.service.registry.ids())})
        elif self.path == "/metrics":
            self._send_json(200, {
                "counters": _obs_metrics.REGISTRY.snapshot(),
                "gauges": _obs_metrics.REGISTRY.gauges_snapshot()})
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        daemon: "ServeDaemon" = self.server.daemon  # type: ignore[attr-defined]
        try:
            if self.path == "/publish":
                doc = self._read_json()
                problem = problem_from_doc(doc)
                instance = daemon.service.publish(
                    problem, store=doc.get("store"))
                self._send_json(200, {
                    "instance": instance.instance_id,
                    "nlcs": len(instance.nlcs),
                    "store": instance.store})
            elif self.path == "/query":
                doc = self._read_json()
                request_docs = doc.get("requests")
                if not isinstance(request_docs, list):
                    raise ValueError(
                        "query body needs a 'requests' list")
                requests = [decode_request(d) for d in request_docs]
                tickets = [daemon.scheduler.submit(r) for r in requests]
                responses = [t.result(timeout=daemon.request_timeout)
                             for t in tickets]
                self._send_json(200, {
                    "responses": [encode_response(r)
                                  for r in responses]})
            elif self.path == "/shutdown":
                self._send_json(200, {"status": "stopping"})
                daemon.request_shutdown()
            else:
                self._send_json(404,
                                {"error": f"unknown path {self.path}"})
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})


class ServeDaemon:
    """The persistent server process body (``repro serve`` runs one).

    Composes service + scheduler + HTTP server; ``serve_forever()``
    blocks until a ``/shutdown`` POST (or :meth:`request_shutdown`),
    then tears everything down — scheduler first (flushing), then the
    service (pool and published stores).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 store: str | None = None, workers: int | None = None,
                 linger: float = 0.005,
                 request_timeout: float = 300.0,
                 cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.service = QueryService(store=store, workers=workers,
                                    cache_bytes=cache_bytes)
        self.scheduler = BatchScheduler(self.service, linger=linger)
        self.request_timeout = float(request_timeout)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon = self  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — authoritative under ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    def request_shutdown(self) -> None:
        """Ask ``serve_forever`` to return (safe from handler threads)."""
        import threading

        threading.Thread(target=self._httpd.shutdown,
                         daemon=True).start()

    def serve_forever(self) -> None:
        """Run until shutdown; always releases service resources."""
        self.scheduler.start()
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self.close()

    def close(self) -> None:
        """Tear down HTTP server, scheduler, and service (idempotent)."""
        self._httpd.server_close()
        self.scheduler.stop()
        self.service.close()
