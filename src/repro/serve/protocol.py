"""Request/response dataclasses and JSON codecs for the query service.

One request *kind* per operation the service exposes (``REQUEST_KINDS``
is the registry the RPR005 serve drift check cross-references against
docs, CLI, and tests):

* ``brknn`` — the BRkNN influence set of an existing site
  (:func:`repro.core.queries.brknn_of_site`);
* ``site_influence`` — per-site influence scores
  (:func:`repro.core.queries.site_influence`);
* ``impact`` — the new-site what-if
  (:func:`repro.core.queries.impact_of_new_site`);
* ``solve`` — a full (or top-t) MaxFirst solve over the published NLC
  store;
* ``solve_anytime`` — the epsilon-bounded anytime solve: stops at a
  certified ``1/(1+epsilon)`` approximation and reports the engine's
  upper bound alongside the score;
* ``heatmap`` — the influence heat map: the Phase I quadrant
  tessellation rasterised onto an ``nx`` × ``ny`` tile grid
  (:mod:`repro.core.heatmap`), lower and upper influence bounds per
  tile.

Canonical request keys
----------------------
:func:`request_key` renders a request as its encoded JSON document with
sorted keys and no whitespace.  Because the codec already canonicalises
every field (``int()``/``float()``) and ``json`` emits shortest-
round-trip float reprs, two requests get the same key exactly when they
are field-for-field bit-identical — the property the serve-path result
cache (:mod:`repro.serve.cache`) and the batch scheduler's
single-flight coalescing both rely on.

The wire format is deliberately dumb JSON: every request/response is a
flat object with a ``kind`` tag, encoded by :func:`encode_request` /
:func:`encode_response` and decoded by their ``decode_*`` duals.  The
codecs are lossless for the result payloads (Python's ``json`` emits
shortest-round-trip float reprs), which is what lets the benchmark and
the smoke job assert **bit-identity** between served answers and direct
in-process :mod:`repro.core.queries` calls even across the socket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "MAX_HEATMAP_EDGE",
    "REQUEST_KINDS",
    "BrknnRequest",
    "SiteInfluenceRequest",
    "ImpactRequest",
    "SolveRequest",
    "AnytimeSolveRequest",
    "HeatmapRequest",
    "BrknnResponse",
    "SiteInfluenceResponse",
    "ImpactResponse",
    "RegionSummary",
    "SolveResponse",
    "HeatmapResponse",
    "ErrorResponse",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "request_key",
]

#: Every request kind the service understands, in documentation order.
#: The serve drift check (``repro.analysis.project_rules
#: .check_serve_drift``) holds this tuple, the ``docs/api.md`` request
#: table, the CLI ``--kind`` choices, the scripted workload
#: (``repro.serve.workload``), and ``tests/serve/`` in sync.
REQUEST_KINDS: tuple[str, ...] = (
    "brknn", "site_influence", "impact", "solve", "solve_anytime",
    "heatmap")

#: Largest tile-grid edge a ``heatmap`` request may ask for.  A
#: 512 × 512 float64 pair of fields is ~4 MB on the wire — plenty for a
#: display surface, small enough that one request cannot balloon the
#: daemon or the result cache.
MAX_HEATMAP_EDGE = 512


# ---------------------------------------------------------------------- #
# Requests
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class BrknnRequest:
    """Influence set of existing site ``site`` of instance ``instance``."""

    instance: str
    site: int
    kind: str = field(default="brknn", init=False)


@dataclass(frozen=True)
class SiteInfluenceRequest:
    """Influence of every existing site of ``instance``."""

    instance: str
    kind: str = field(default="site_influence", init=False)


@dataclass(frozen=True)
class ImpactRequest:
    """What-if: open a new site at ``(x, y)`` on ``instance``."""

    instance: str
    x: float
    y: float
    kind: str = field(default="impact", init=False)


@dataclass(frozen=True)
class SolveRequest:
    """Full (or top-t) MaxFirst solve over ``instance``'s NLC store."""

    instance: str
    top_t: int = 1
    kind: str = field(default="solve", init=False)


@dataclass(frozen=True)
class AnytimeSolveRequest:
    """Epsilon-bounded anytime solve: certified 1/(1+eps) approximation."""

    instance: str
    epsilon: float
    kind: str = field(default="solve_anytime", init=False)


@dataclass(frozen=True)
class HeatmapRequest:
    """Influence heat map of ``instance`` on an ``nx`` × ``ny`` grid."""

    instance: str
    nx: int = 32
    ny: int = 32
    kind: str = field(default="heatmap", init=False)


Request = (BrknnRequest | SiteInfluenceRequest | ImpactRequest
           | SolveRequest | AnytimeSolveRequest | HeatmapRequest)

_REQUEST_TYPES: dict[str, type] = {
    "brknn": BrknnRequest,
    "site_influence": SiteInfluenceRequest,
    "impact": ImpactRequest,
    "solve": SolveRequest,
    "solve_anytime": AnytimeSolveRequest,
    "heatmap": HeatmapRequest,
}


# ---------------------------------------------------------------------- #
# Responses
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class BrknnResponse:
    """Served dual of :class:`repro.core.queries.InfluenceSet`."""

    site: int
    members: dict[int, int]
    influence: float
    kind: str = field(default="brknn", init=False)


@dataclass(frozen=True)
class SiteInfluenceResponse:
    """Per-site influence values, index-aligned with the site array."""

    influence: tuple[float, ...]
    kind: str = field(default="site_influence", init=False)


@dataclass(frozen=True)
class ImpactResponse:
    """Served dual of :class:`repro.core.queries.NewSiteImpact`."""

    x: float
    y: float
    gain: float
    customer_ranks: dict[int, int]
    incumbent_losses: dict[int, float]
    kind: str = field(default="impact", init=False)


@dataclass(frozen=True)
class RegionSummary:
    """One optimal region, reduced to its servable facts.

    ``x``/``y`` is a representative interior point (a valid site
    location attaining ``score``); ``cover`` is the covering NLC index
    set — enough for a client to rank, place, or re-derive the region
    against its own copy of the instance.
    """

    score: float
    area: float
    x: float
    y: float
    cover: tuple[int, ...]


@dataclass(frozen=True)
class SolveResponse:
    """Result of a ``solve`` / ``solve_anytime`` request.

    ``score`` is the proven lower bound (the exact optimum when
    ``upper_bound == score``); ``upper_bound`` is the engine's certified
    global upper bound, so ``score >= upper_bound / (1 + epsilon)``
    always holds for the epsilon the request asked for.
    """

    score: float
    upper_bound: float
    regions: tuple[RegionSummary, ...]
    kind: str = field(default="solve", init=False)


@dataclass(frozen=True)
class HeatmapResponse:
    """The influence field as two row-major tile grids.

    ``lower[j * nx + i]`` is a *proven* influence score attained
    somewhere in tile ``(i, j)`` (column ``i`` from ``xmin``, row ``j``
    from ``ymin``); ``upper`` bounds the influence of every location in
    the tile.  ``bounds`` is the solved space ``(xmin, ymin, xmax,
    ymax)`` the grid tessellates.  The two fields bracket the exact
    influence surface: where the Phase I tessellation resolved a tile
    to a consistent quadrant, ``lower == upper``.
    """

    nx: int
    ny: int
    bounds: tuple[float, float, float, float]
    lower: tuple[float, ...]
    upper: tuple[float, ...]
    kind: str = field(default="heatmap", init=False)


@dataclass(frozen=True)
class ErrorResponse:
    """Per-request failure (bad arguments, unknown instance)."""

    message: str
    kind: str = field(default="error", init=False)


Response = (BrknnResponse | SiteInfluenceResponse | ImpactResponse
            | SolveResponse | HeatmapResponse | ErrorResponse)


# ---------------------------------------------------------------------- #
# Codecs
# ---------------------------------------------------------------------- #


def encode_request(request: Request) -> dict[str, Any]:
    """Request → JSON-ready dict (the inverse of :func:`decode_request`)."""
    if isinstance(request, BrknnRequest):
        return {"kind": "brknn", "instance": request.instance,
                "site": int(request.site)}
    if isinstance(request, SiteInfluenceRequest):
        return {"kind": "site_influence", "instance": request.instance}
    if isinstance(request, ImpactRequest):
        return {"kind": "impact", "instance": request.instance,
                "x": float(request.x), "y": float(request.y)}
    if isinstance(request, SolveRequest):
        return {"kind": "solve", "instance": request.instance,
                "top_t": int(request.top_t)}
    if isinstance(request, AnytimeSolveRequest):
        return {"kind": "solve_anytime", "instance": request.instance,
                "epsilon": float(request.epsilon)}
    if isinstance(request, HeatmapRequest):
        return {"kind": "heatmap", "instance": request.instance,
                "nx": int(request.nx), "ny": int(request.ny)}
    raise TypeError(f"not a serve request: {request!r}")


def request_key(request: Request) -> str:
    """Canonical cache/coalescing key: the encoded request, serialised
    with sorted keys and no whitespace.

    Every field passes through the codec's ``int()``/``float()``
    canonicalisation and ``json``'s shortest-round-trip float repr, so
    the key is deterministic and two requests collide exactly when they
    are bit-identical field for field.
    """
    return json.dumps(encode_request(request), sort_keys=True,
                      separators=(",", ":"))


def decode_request(doc: Mapping[str, Any]) -> Request:
    """JSON dict → request dataclass; raises ``ValueError`` on bad input."""
    kind = doc.get("kind")
    cls = _REQUEST_TYPES.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(
            f"unknown request kind {kind!r} "
            f"(choose from {', '.join(REQUEST_KINDS)})")
    instance = doc.get("instance")
    if not isinstance(instance, str) or not instance:
        raise ValueError(f"{kind} request needs a non-empty 'instance'")
    try:
        if cls is BrknnRequest:
            return BrknnRequest(instance=instance, site=int(doc["site"]))
        if cls is SiteInfluenceRequest:
            return SiteInfluenceRequest(instance=instance)
        if cls is ImpactRequest:
            return ImpactRequest(instance=instance, x=float(doc["x"]),
                                 y=float(doc["y"]))
        if cls is SolveRequest:
            return SolveRequest(instance=instance,
                                top_t=int(doc.get("top_t", 1)))
        if cls is HeatmapRequest:
            nx = int(doc.get("nx", 32))
            ny = int(doc.get("ny", 32))
            if not (1 <= nx <= MAX_HEATMAP_EDGE
                    and 1 <= ny <= MAX_HEATMAP_EDGE):
                raise ValueError(
                    f"heatmap grid {nx}x{ny} outside "
                    f"[1, {MAX_HEATMAP_EDGE}]^2")
            return HeatmapRequest(instance=instance, nx=nx, ny=ny)
        return AnytimeSolveRequest(instance=instance,
                                   epsilon=float(doc["epsilon"]))
    except KeyError as exc:
        raise ValueError(
            f"{kind} request is missing field {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad {kind} request field: {exc}") from exc


def encode_response(response: Response) -> dict[str, Any]:
    """Response → JSON-ready dict.

    Integer dict keys become JSON strings on the wire;
    :func:`decode_response` converts them back, so a decoded response
    compares equal (``==``, hence bit-identical floats) to the original.
    """
    if isinstance(response, BrknnResponse):
        return {"kind": "brknn", "site": response.site,
                "members": {str(c): r
                            for c, r in response.members.items()},
                "influence": response.influence}
    if isinstance(response, SiteInfluenceResponse):
        return {"kind": "site_influence",
                "influence": list(response.influence)}
    if isinstance(response, ImpactResponse):
        return {"kind": "impact", "x": response.x, "y": response.y,
                "gain": response.gain,
                "customer_ranks": {str(c): r for c, r
                                   in response.customer_ranks.items()},
                "incumbent_losses": {str(j): v for j, v
                                     in response.incumbent_losses.items()}}
    if isinstance(response, SolveResponse):
        return {"kind": "solve", "score": response.score,
                "upper_bound": response.upper_bound,
                "regions": [
                    {"score": r.score, "area": r.area, "x": r.x,
                     "y": r.y, "cover": list(r.cover)}
                    for r in response.regions]}
    if isinstance(response, HeatmapResponse):
        return {"kind": "heatmap", "nx": response.nx, "ny": response.ny,
                "bounds": list(response.bounds),
                "lower": list(response.lower),
                "upper": list(response.upper)}
    if isinstance(response, ErrorResponse):
        return {"kind": "error", "message": response.message}
    raise TypeError(f"not a serve response: {response!r}")


def decode_response(doc: Mapping[str, Any]) -> Response:
    """JSON dict → response dataclass (exact inverse of the encoder)."""
    kind = doc.get("kind")
    if kind == "brknn":
        return BrknnResponse(
            site=int(doc["site"]),
            members={int(c): int(r)
                     for c, r in doc["members"].items()},
            influence=float(doc["influence"]))
    if kind == "site_influence":
        return SiteInfluenceResponse(
            influence=tuple(float(v) for v in doc["influence"]))
    if kind == "impact":
        return ImpactResponse(
            x=float(doc["x"]), y=float(doc["y"]),
            gain=float(doc["gain"]),
            customer_ranks={int(c): int(r) for c, r
                            in doc["customer_ranks"].items()},
            incumbent_losses={int(j): float(v) for j, v
                              in doc["incumbent_losses"].items()})
    if kind == "solve":
        return SolveResponse(
            score=float(doc["score"]),
            upper_bound=float(doc["upper_bound"]),
            regions=tuple(
                RegionSummary(score=float(r["score"]),
                              area=float(r["area"]),
                              x=float(r["x"]), y=float(r["y"]),
                              cover=tuple(int(i) for i in r["cover"]))
                for r in doc["regions"]))
    if kind == "heatmap":
        xmin, ymin, xmax, ymax = (float(v) for v in doc["bounds"])
        return HeatmapResponse(
            nx=int(doc["nx"]), ny=int(doc["ny"]),
            bounds=(xmin, ymin, xmax, ymax),
            lower=tuple(float(v) for v in doc["lower"]),
            upper=tuple(float(v) for v in doc["upper"]))
    if kind == "error":
        return ErrorResponse(message=str(doc["message"]))
    raise ValueError(f"unknown response kind {kind!r}")
