"""The scripted serve workload shared by benchmark, gate, and smoke.

One fixed instance (the fig11 ``tiny``-profile point: 800 uniform
customers, 40 sites, ``k=2``, seed 11) and one fixed request script.
Three consumers replay it:

* ``benchmarks/bench_serve.py`` — the queries/sec headline plus
  result-identity assertions;
* :func:`repro.obs.gate.collect_serve_counters` — the serve counters
  the perf gate pins;
* ``python -m repro.serve.smoke`` — the CI socket round trip.

Keeping the script in one place is what makes "the gate baseline, the
benchmark, and the smoke answered the same workload" true by
construction.
"""

from __future__ import annotations

from typing import Any

from repro.core.problem import MaxBRkNNProblem
from repro.datasets.synthetic import synthetic_instance
from repro.serve.protocol import (AnytimeSolveRequest, BrknnRequest,
                                  HeatmapRequest, ImpactRequest,
                                  Request, SiteInfluenceRequest,
                                  SolveRequest)

__all__ = ["tiny_problem", "scripted_batches", "publish_doc"]

_N_CUSTOMERS = 800
_N_SITES = 40
_K = 2
_SEED = 11


def tiny_problem() -> MaxBRkNNProblem:
    """The workload instance (fig11 tiny point, ``k=2`` so rank shifts
    and anytime pruning are both exercised)."""
    customers, sites = synthetic_instance(_N_CUSTOMERS, _N_SITES,
                                          "uniform", seed=_SEED)
    return MaxBRkNNProblem(customers, sites, k=_K)


def scripted_batches(instance_id: str) -> list[list[Request]]:
    """The fixed request script against a published instance.

    Six batches: a BRkNN sweep, a what-if grid, the mixed batch with
    the exact solve (which installs the instance's certificate), a
    post-certificate batch (its repeated solve is the script's first
    cache hit; the new epsilon keeps a certificate-seeded solve
    executing), the heat-map phase, and the repeated-request phase —
    exact repeats of earlier requests plus an in-batch duplicate pair,
    so replaying the script pins deterministic ``serve_cache_hits`` /
    ``serve_cache_misses`` / ``heatmap_tiles_filled`` counts for the
    perf gate.
    """
    heat = HeatmapRequest(instance_id, nx=24, ny=24)
    return [
        [BrknnRequest(instance_id, j) for j in range(0, _N_SITES, 5)],
        [ImpactRequest(instance_id, 10.0 * i, 10.0 * j)
         for i in range(1, 4) for j in range(1, 4)],
        [SiteInfluenceRequest(instance_id),
         SolveRequest(instance_id),
         AnytimeSolveRequest(instance_id, epsilon=0.25)],
        [SolveRequest(instance_id),
         AnytimeSolveRequest(instance_id, epsilon=0.1),
         BrknnRequest(instance_id, 7),
         ImpactRequest(instance_id, 55.0, 45.0)],
        [heat, HeatmapRequest(instance_id, nx=8, ny=8)],
        [BrknnRequest(instance_id, 0), BrknnRequest(instance_id, 0),
         ImpactRequest(instance_id, 10.0, 10.0),
         SiteInfluenceRequest(instance_id),
         heat],
    ]


def publish_doc(store: str | None = None) -> dict[str, Any]:
    """The instance as a ``/publish`` JSON body (socket consumers)."""
    problem = tiny_problem()
    doc: dict[str, Any] = {
        "customers": problem.customers.tolist(),
        "sites": problem.sites.tolist(),
        "k": _K,
    }
    if store is not None:
        doc["store"] = store
    return doc
