"""The query service: batched request execution over published instances.

:class:`QueryService` is the in-process core the HTTP daemon and the
CLI wrap.  One ``execute()`` call handles one *batch* of requests: the
batch is grouped by instance, and each group runs either directly in
this process (``workers=None``) or as **one job** through a persistent
:class:`repro.engine.pool.PersistentPool` (``workers=N``) — the job
ships the tiny problem payload and the NLC store *handle*, never NLC
bytes, so a worker serves every request against its zero-copy mapped
view of the published store.

Both paths funnel into :func:`execute_requests`, so pooled and
in-process answers are bit-identical by construction (the codecs are
lossless; ``tests/serve/test_pool_service.py`` asserts it).

Counters (``repro.obs``): ``serve_requests`` and ``serve_batches``
count what arrived, ``serve_pool_submissions`` counts instance-group
jobs dispatched to the pool (zero for an in-process service; the count
depends only on the batch composition, not on how many workers drain
the queue, so a fixed scripted workload gates deterministically).
Spans: ``serve/batch`` per ``execute()``, ``serve/request`` per
request, ``serve/solve`` around each MaxFirst run.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.heatmap import build_heatmap, empty_heatmap
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.core.queries import (brknn_of_site, impact_of_new_site,
                                site_influence)
from repro.core.region import compute_optimal_region
from repro.geometry.rect import Rect
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import TRACER, span
from repro.serve.cache import DEFAULT_CACHE_BYTES, ResultCache
from repro.serve.instance import (InstanceRegistry, SeedEntry,
                                  ServedInstance)
from repro.serve.protocol import (MAX_HEATMAP_EDGE, AnytimeSolveRequest,
                                  BrknnRequest, BrknnResponse,
                                  ErrorResponse, HeatmapRequest,
                                  HeatmapResponse, ImpactRequest,
                                  ImpactResponse, RegionSummary,
                                  SiteInfluenceRequest,
                                  SiteInfluenceResponse, SolveRequest,
                                  SolveResponse, request_key)

__all__ = ["QueryService", "execute_requests"]

_SERVE_REQUESTS = _obs_metrics.counter("serve_requests")
_SERVE_BATCHES = _obs_metrics.counter("serve_batches")
_SERVE_POOL_SUBMISSIONS = _obs_metrics.counter("serve_pool_submissions")

#: ``(bound, seed_entries)`` — the Theorem-2/3 registry snapshot a batch
#: executes under (see :meth:`repro.serve.instance.ServedInstance
#: .certificate`).
Certificate = tuple[float, tuple[SeedEntry, ...]]


def _rect_tuple(rect: Rect) -> tuple[float, float, float, float]:
    return (rect.xmin, rect.ymin, rect.xmax, rect.ymax)


def _solve_instance(nlcs: Any, space: Rect, top_t: int, epsilon: float,
                    certificate: Certificate
                    ) -> tuple[SolveResponse, Certificate | None]:
    """Run one MaxFirst solve against the attached store views.

    Returns the response plus a fresh certificate to install when this
    was the instance's first completed *exact* top-1 solve (``None``
    otherwise).  A ``top_t == 1`` solve is seeded with the certificate:
    ``bound`` enters as ``initial_bound`` (Theorem 2 prunes against the
    proven optimum from the first pop) and the recorded covers enter
    the Theorem 3 registry — quadrants of already-found regions prune
    immediately, and the regions themselves are merged back from the
    seed entries below, exactly as the sharded engine re-reports covers
    seeded across tiles.
    """
    if nlcs is None or len(nlcs) == 0:
        # Degenerate instance: nothing scores anywhere.
        return SolveResponse(score=0.0, upper_bound=0.0, regions=()), None

    solver = MaxFirst(top_t=top_t, epsilon=epsilon)
    if top_t != 1:
        accepted, max_min, _stats = solver.run_phase1(nlcs, space)
        regions = solver.build_regions(accepted, max_min, nlcs)
        summaries = []
        for region in regions:
            p = region.representative_point()
            summaries.append(RegionSummary(
                score=region.score, area=region.area, x=p.x, y=p.y,
                cover=tuple(int(i) for i in region.cover)))
        return SolveResponse(score=max_min,
                             upper_bound=solver.last_upper_bound,
                             regions=tuple(summaries)), None

    bound, seeds = certificate
    seed_covers = (tuple((cover, score) for cover, score, _rect in seeds)
                   or None)
    accepted, max_min, _stats = solver.run_phase1(
        nlcs, space, initial_bound=bound, seed_covers=seed_covers)
    upper = solver.last_upper_bound
    tol = solver.tie_tol * max(1.0, abs(max_min))

    # Accepted covers of this run plus every seeded cover, deduplicated
    # by cover identity.  Seeding makes the search *skip* regions the
    # certificate already proved, so those regions must come back from
    # the seed entries — dropping this merge would under-report exactly
    # the regions the speedup avoided re-tessellating.
    entries: dict[tuple[int, ...], tuple[float, tuple]] = {}
    all_entries: list[SeedEntry] = []
    for quad in accepted:
        key = quad.cover_key()
        rect = _rect_tuple(quad.rect)
        all_entries.append((key, float(quad.min_hat), rect))
        if quad.min_hat >= max_min - tol and key not in entries:
            entries[key] = (float(quad.min_hat), rect)
    for cover, score, rect in seeds:
        all_entries.append((cover, score, rect))
        if score >= max_min - tol and cover not in entries:
            entries[cover] = (score, rect)

    regions = [
        compute_optimal_region(Rect(*rect),
                               np.asarray(cover, dtype=np.int64), nlcs,
                               score=score)
        for cover, (score, rect) in entries.items()
    ]
    regions.sort(key=lambda r: -r.score)
    summaries = []
    for region in regions:
        p = region.representative_point()
        summaries.append(RegionSummary(
            score=region.score, area=region.area, x=p.x, y=p.y,
            cover=tuple(int(i) for i in region.cover)))
    response = SolveResponse(score=max_min, upper_bound=upper,
                             regions=tuple(summaries))
    new_certificate: Certificate | None = None
    # repro: float-eq(epsilon is a user-supplied mode flag, not a
    # computed value: exactly 0.0 selects the exact solve, anything
    # else the anytime mode — no arithmetic ever produces it)
    if epsilon == 0.0:
        # Exact completion: the score is the proven optimum and every
        # accepted cover (this run's and the inherited seeds') is a
        # sound Theorem 3 seed for later solves on this instance.
        new_certificate = (float(max_min), tuple(all_entries))
    return response, new_certificate


def execute_requests(problem: MaxBRkNNProblem, ranks: np.ndarray,
                     nlcs: Any, space: Rect, requests: Sequence[Any],
                     certificate: Certificate
                     ) -> tuple[list[Any], Certificate | None]:
    """Execute one instance-group of requests; the shared core of the
    in-process and pool-worker paths (both answer bit-identically
    because both run exactly this code against the same arrays).

    Per-request failures (bad site index, invalid epsilon) come back as
    :class:`ErrorResponse` entries; only infrastructure failures raise.
    Returns ``(responses, new_certificate)`` — the certificate from the
    first exact solve in the batch, or ``None``.
    """
    responses: list[Any] = []
    new_certificate: Certificate | None = None
    for request in requests:
        with span("serve/request", kind=request.kind):
            try:
                if isinstance(request, BrknnRequest):
                    found = brknn_of_site(problem, request.site,
                                          ranks=ranks)
                    responses.append(BrknnResponse(
                        site=found.site, members=dict(found.members),
                        influence=found.influence))
                elif isinstance(request, SiteInfluenceRequest):
                    values = site_influence(problem, ranks=ranks)
                    responses.append(SiteInfluenceResponse(
                        influence=tuple(float(v) for v in values)))
                elif isinstance(request, ImpactRequest):
                    impact = impact_of_new_site(problem, request.x,
                                                request.y, ranks=ranks)
                    responses.append(ImpactResponse(
                        x=impact.x, y=impact.y, gain=impact.gain,
                        customer_ranks=dict(impact.customer_ranks),
                        incumbent_losses=dict(impact.incumbent_losses)))
                elif isinstance(request, HeatmapRequest):
                    nx, ny = int(request.nx), int(request.ny)
                    if not (1 <= nx <= MAX_HEATMAP_EDGE
                            and 1 <= ny <= MAX_HEATMAP_EDGE):
                        raise ValueError(
                            f"heatmap grid {nx}x{ny} outside "
                            f"[1, {MAX_HEATMAP_EDGE}]^2")
                    # Always a fresh unseeded Phase I — certificate
                    # seeding coarsens the captured tessellation (see
                    # repro.core.heatmap), and the heat map must be a
                    # pure function of the instance for the result
                    # cache's bit-identity guarantee.
                    with span("serve/heatmap", nx=nx, ny=ny):
                        if nlcs is None or len(nlcs) == 0:
                            hm = empty_heatmap(space, nx, ny)
                        else:
                            hm = build_heatmap(nlcs, space, nx, ny)
                    responses.append(HeatmapResponse(
                        nx=hm.nx, ny=hm.ny, bounds=hm.bounds,
                        lower=tuple(float(v)
                                    for v in hm.lower.ravel()),
                        upper=tuple(float(v)
                                    for v in hm.upper.ravel())))
                elif isinstance(request, (SolveRequest,
                                          AnytimeSolveRequest)):
                    top_t = getattr(request, "top_t", 1)
                    epsilon = getattr(request, "epsilon", 0.0)
                    # Later solves in the batch see an earlier exact
                    # solve's certificate immediately.
                    active = (new_certificate if new_certificate
                              is not None else certificate)
                    with span("serve/solve", top_t=top_t,
                              epsilon=epsilon):
                        response, fresh = _solve_instance(
                            nlcs, space, top_t, epsilon, active)
                    responses.append(response)
                    if fresh is not None and new_certificate is None:
                        new_certificate = fresh
                else:
                    responses.append(ErrorResponse(
                        message=f"unhandled request {request!r}"))
            except ValueError as exc:
                responses.append(ErrorResponse(message=str(exc)))
    return responses, new_certificate


class QueryService:
    """Batched request execution over an :class:`InstanceRegistry`.

    Parameters
    ----------
    registry:
        An existing registry to serve; default builds a fresh one.
    store:
        NLC storage backend for publishes through this service
        (``resolve_store_name`` semantics).
    workers:
        ``None`` (default) executes every batch in-process.  A positive
        integer routes each batch's instance groups through a persistent
        worker pool of that size as single jobs
        (:func:`repro.engine.pool.serve_query_batch`); a broken pool
        degrades to the in-process path with a ``RuntimeWarning``.
    cache_bytes:
        Byte budget for the per-instance result cache
        (:class:`repro.serve.cache.ResultCache`; default 64 MiB).
        Before a request reaches the solver it is looked up under its
        canonical key (:func:`repro.serve.protocol.request_key`) and
        the instance's current epoch; hits return the stored response
        object — bit-identical to a fresh solve because every solver
        is deterministic.  Identical requests *within* one batch
        collapse to one computation the same way.  ``0`` disables
        caching (the benchmark's cold arm).
    """

    def __init__(self, registry: InstanceRegistry | None = None, *,
                 store: str | None = None, workers: int | None = None,
                 start_method: str | None = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive (or None)")
        self.registry = (InstanceRegistry(store=store)
                         if registry is None else registry)
        self.workers = workers
        self.start_method = start_method
        self.cache = ResultCache(max_bytes=cache_bytes)
        self._pool: Any = None

    # -- lifecycle ----------------------------------------------------- #

    def publish(self, problem: MaxBRkNNProblem, *,
                store: str | None = None) -> ServedInstance:
        """Publish an instance through the registry (see
        :meth:`InstanceRegistry.publish`)."""
        return self.registry.publish(problem, store=store)

    def close(self) -> None:
        """Shut the pool down and release every instance (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        self.registry.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ----------------------------------------------------- #

    def execute(self, requests: Sequence[Any]) -> list[Any]:
        """Execute one batch; responses align with ``requests``.

        Each request is first looked up in the result cache under its
        canonical key and the instance's current epoch; only cache
        misses reach the solver, with identical misses *within* the
        batch collapsed to one execution.  Stored responses are frozen
        dataclasses, so a hit is the original computed object —
        bit-identity with a fresh solve is structural.
        """
        _SERVE_BATCHES.add(1)
        _SERVE_REQUESTS.add(len(requests))
        responses: list[Any] = [None] * len(requests)
        with span("serve/batch", requests=len(requests)):
            groups: dict[str, list[int]] = {}
            for i, request in enumerate(requests):
                groups.setdefault(request.instance, []).append(i)
            for instance_id, positions in groups.items():
                try:
                    instance = self.registry.get(instance_id)
                except ValueError as exc:
                    for i in positions:
                        responses[i] = ErrorResponse(message=str(exc))
                    continue
                # The epoch is read once per group: a concurrent bump
                # makes this group's stores land under the old epoch,
                # where the next lookup treats them as stale — never
                # served across an invalidation.
                epoch = instance.epoch
                miss_keys: list[str] = []
                targets: dict[str, list[int]] = {}
                for i in positions:
                    key = request_key(requests[i])
                    if key in targets:
                        targets[key].append(i)  # in-batch duplicate
                        continue
                    cached = self.cache.get(instance_id, key, epoch)
                    if cached is not None:
                        responses[i] = cached
                        continue
                    targets[key] = [i]
                    miss_keys.append(key)
                if miss_keys:
                    group = [requests[targets[key][0]]
                             for key in miss_keys]
                    answers = self._execute_group(instance, group)
                    for key, answer in zip(miss_keys, answers):
                        if not isinstance(answer, ErrorResponse):
                            self.cache.put(instance_id, key, epoch,
                                           answer)
                        for i in targets[key]:
                            responses[i] = answer
        return responses

    def _execute_group(self, instance: ServedInstance,
                       group: list[Any]) -> list[Any]:
        if self.workers is not None:
            answers = self._execute_group_pooled(instance, group)
            if answers is not None:
                return answers
        answers, fresh = execute_requests(
            instance.problem, instance.ranks, instance.nlcs,
            instance.space, group, instance.certificate())
        if fresh is not None:
            instance.record_certificate(*fresh)
        return answers

    def _execute_group_pooled(self, instance: ServedInstance,
                              group: list[Any]) -> list[Any] | None:
        """One pool job for the whole group, or ``None`` to fall back.

        The job ships request docs, the tiny problem payload, and the
        store *handle* — a worker's first job for an instance rebuilds
        the problem and rank matrix once and maps the store zero-copy;
        every later job is a pure cache hit (see
        :func:`repro.engine.pool.serve_query_batch`).
        """
        import pickle
        import warnings
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine.pool import (PersistentPool, serve_query_batch)
        from repro.serve.protocol import decode_response, encode_request

        pool = self._pool
        if not isinstance(pool, PersistentPool):
            pool = PersistentPool(max_workers=int(self.workers or 1),
                                  start_method=self.start_method)
            self._pool = pool
        trace_enabled = TRACER.enabled
        job = (instance.instance_id, instance.payload(), instance.handle,
               _rect_tuple(instance.space),
               tuple(encode_request(r) for r in group),
               instance.certificate(), trace_enabled)
        _SERVE_POOL_SUBMISSIONS.add(1)
        launch_ts = TRACER.now() if trace_enabled else 0.0
        try:
            future = pool.submit_call(serve_query_batch, job)
            docs, fresh, counters, gauges, spans = future.result()
        # A dead worker or an unpicklable payload must not take the
        # service down: drop the executor and answer in-process —
        # identical responses, just without the pool.
        except (BrokenProcessPool, pickle.PicklingError) as exc:
            # repro: fallback(pooled serve batches degrade to the
            # in-process execution path on worker/pickling failure)
            warnings.warn(
                f"serve pool failed ({exc!r}); answering in-process "
                "(identical results, no pool)",
                RuntimeWarning, stacklevel=2)
            pool.discard()
            self._pool = None
            return None
        _obs_metrics.REGISTRY.merge_counts(counters)
        _obs_metrics.REGISTRY.merge_gauges_max(gauges)
        if trace_enabled:
            TRACER.ingest(spans, pid=1, ts_offset=launch_ts)
        if fresh is not None:
            instance.record_certificate(*fresh)
        return [decode_response(doc) for doc in docs]
