"""Request coalescing for the query service.

The daemon answers each HTTP request from its own handler thread, but
the service is most efficient when compatible requests ride one batch:
one ``serve/batch`` span, one pool job per instance group.
:class:`BatchScheduler` sits between the two — callers
:meth:`~BatchScheduler.submit` a request and get a :class:`Ticket`;
a flush drains everything queued into **one**
:meth:`QueryService.execute` call and fulfils the tickets positionally.

Flushing is either explicit (:meth:`~BatchScheduler.flush`, which unit
tests use for determinism) or driven by the dispatcher thread
(:meth:`~BatchScheduler.start`), which wakes on the first queued
request, then sleeps ``linger`` seconds so near-simultaneous requests
coalesce before the batch goes out.

Flushes are additionally **single-flight**: requests in one drained
batch with the same canonical key (:func:`repro.serve.protocol
.request_key`) collapse to one entry of the executed batch, and the
single computed response fans out to every waiting ticket.  Under a
thundering herd of identical reads the solver runs once per flush, not
once per caller — and since the service's result cache stores that one
response, every later flush answers from cache.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.serve.protocol import ErrorResponse, request_key
from repro.serve.service import QueryService

__all__ = ["BatchScheduler", "Ticket"]


class Ticket:
    """One submitted request's pending result."""

    __slots__ = ("_event", "_response")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Any = None

    def _fulfil(self, response: Any) -> None:
        self._response = response
        self._event.set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until the batch carrying this request executed."""
        if not self._event.wait(timeout):
            raise TimeoutError("serve batch did not complete in time")
        return self._response


class BatchScheduler:
    """Coalesce submitted requests into single service batches."""

    def __init__(self, service: QueryService, *,
                 linger: float = 0.005) -> None:
        self.service = service
        self.linger = float(linger)
        self._lock = threading.Lock()
        self._pending: list[tuple[Any, Ticket]] = []
        self._wakeup = threading.Event()
        self._thread: threading.Thread | None = None
        self._stopping = False

    # -- submission ---------------------------------------------------- #

    def submit(self, request: Any) -> Ticket:
        """Queue one request; the ticket resolves at the next flush."""
        ticket = Ticket()
        with self._lock:
            self._pending.append((request, ticket))
        self._wakeup.set()
        return ticket

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def flush(self) -> int:
        """Drain the queue into one batch; returns the batch size.

        Identical requests collapse single-flight: the executed batch
        holds one entry per distinct canonical key, in first-submission
        order, and its response fans out to every ticket that submitted
        that key.  Tickets are always fulfilled — a batch-level failure
        (anything ``execute`` raises) turns into an
        :class:`ErrorResponse` per ticket rather than deadlocking
        waiters.
        """
        with self._lock:
            batch, self._pending = self._pending, []
        if not batch:
            return 0
        try:
            slot_of: dict[str, int] = {}
            requests: list[Any] = []
            slots: list[int] = []
            for index, (request, _ticket) in enumerate(batch):
                try:
                    key = request_key(request)
                # repro: fallback(an unkeyable object — not a protocol
                # request, e.g. a test stand-in — passes through without
                # coalescing; the service decides what it means)
                except Exception:
                    key = f"\x00unkeyed:{index}"
                slot = slot_of.get(key)
                if slot is None:
                    slot = slot_of[key] = len(requests)
                    requests.append(request)
                slots.append(slot)
            responses = self.service.execute(requests)
        # repro: fallback(a batch-level failure resolves every waiting
        # ticket with an ErrorResponse instead of deadlocking the
        # daemon's handler threads; the error text is preserved)
        except Exception as exc:
            for _request, ticket in batch:
                ticket._fulfil(ErrorResponse(message=repr(exc)))
            return len(batch)
        for (_request, ticket), slot in zip(batch, slots):
            ticket._fulfil(responses[slot])
        return len(batch)

    # -- dispatcher thread --------------------------------------------- #

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._thread is not None:
            return
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the dispatcher, flushing whatever is still queued."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stopping = True
        self._wakeup.set()
        thread.join()
        self.flush()

    def _run(self) -> None:
        while True:
            self._wakeup.wait()
            if self._stopping:
                return
            # Linger briefly so requests arriving together share the
            # batch; clear-before-flush keeps the wakeup level-triggered
            # (a submit during the flush sets it again).
            if self.linger > 0.0 and not self._stopping:
                time.sleep(self.linger)
            self._wakeup.clear()
            self.flush()
