"""End-to-end serve smoke: real daemon, real socket, identity-checked.

``python -m repro.serve.smoke --out DIR`` boots ``repro serve`` as a
subprocess on an ephemeral port, publishes the scripted workload
instance over the socket, replays the scripted batches through
:class:`~repro.serve.client.ServeClient`, and asserts every served
answer is **bit-identical** to a direct in-process
:mod:`repro.core.queries` / :class:`~repro.core.maxfirst.MaxFirst` /
:mod:`repro.core.heatmap` computation on the same problem.  The whole
script is then replayed a second time — the warm pass — and every
response must come back byte-identical, with the daemon's
``serve_cache_hits`` counter proving the repeats answered from the
result cache.  A graceful ``/shutdown`` then makes the daemon write
its Chrome trace and metrics.json into ``DIR`` (the CI serve-smoke job
uploads both).

Exit status 0 means every assertion held and the daemon exited cleanly.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

from repro.core.queries import (brknn_of_site, impact_of_new_site,
                                knn_sites, site_influence)
from repro.serve.client import ServeClient
from repro.serve.protocol import (AnytimeSolveRequest, BrknnRequest,
                                  BrknnResponse, HeatmapRequest,
                                  HeatmapResponse, ImpactRequest,
                                  ImpactResponse, SiteInfluenceRequest,
                                  SiteInfluenceResponse, SolveRequest,
                                  SolveResponse, encode_response,
                                  request_key)
from repro.serve.workload import publish_doc, scripted_batches, tiny_problem


def _boot_daemon(out_dir: str, store: str, workers: int | None,
                 cache_bytes: int | None = None
                 ) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro serve`` on an ephemeral port; return (proc, host,
    port) once the bound-address line appears."""
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--store", store,
           "--trace", os.path.join(out_dir, "serve_trace.json"),
           "--metrics", os.path.join(out_dir, "metrics.json")]
    if workers is not None:
        cmd += ["--workers", str(workers)]
    if cache_bytes is not None:
        cmd += ["--cache-bytes", str(cache_bytes)]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src),
                    env.get("PYTHONPATH", "")) if p)
    # repro: unguarded-load(the daemon subprocess inherits the full
    # environment, REPRO_NO_CKERNEL included, so the numpy-fallback arm
    # exercises the numpy path end to end without this module gating
    # anything itself)
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=env)
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    if not line.startswith("serving on "):
        proc.kill()
        raise RuntimeError(f"daemon did not announce itself: {line!r}")
    host, _, port = line.removeprefix("serving on ").rpartition(":")
    return proc, host, int(port)


def _canonical(response) -> str:
    """Byte-stable response encoding for warm/cold identity checks."""
    return json.dumps(encode_response(response), sort_keys=True,
                      separators=(",", ":"))


def _check_batch(requests, responses, problem, ranks, solve_reference,
                 heatmap_reference) -> int:
    """Assert served answers equal direct in-process computation."""
    checked = 0
    for request, response in zip(requests, responses):
        if isinstance(request, BrknnRequest):
            direct = brknn_of_site(problem, request.site, ranks=ranks)
            assert isinstance(response, BrknnResponse)
            assert response.members == direct.members
            assert response.influence == direct.influence
        elif isinstance(request, SiteInfluenceRequest):
            direct = site_influence(problem, ranks=ranks)
            assert isinstance(response, SiteInfluenceResponse)
            assert list(response.influence) == direct.tolist()
        elif isinstance(request, ImpactRequest):
            direct = impact_of_new_site(problem, request.x, request.y,
                                        ranks=ranks)
            assert isinstance(response, ImpactResponse)
            assert response.gain == direct.gain
            assert response.customer_ranks == direct.customer_ranks
            assert response.incumbent_losses == direct.incumbent_losses
        elif isinstance(request, SolveRequest):
            assert isinstance(response, SolveResponse)
            assert response.score == solve_reference.score
            assert response.upper_bound == response.score
            assert ({r.cover for r in response.regions}
                    == {r.cover for r in solve_reference.regions})
        elif isinstance(request, AnytimeSolveRequest):
            assert isinstance(response, SolveResponse)
            assert response.upper_bound >= response.score > 0.0
            assert (response.score * (1.0 + request.epsilon) + 1e-9
                    >= response.upper_bound)
            assert response.score <= solve_reference.score + 1e-9
        elif isinstance(request, HeatmapRequest):
            assert isinstance(response, HeatmapResponse)
            direct = heatmap_reference[(request.nx, request.ny)]
            assert (response.nx, response.ny) == (direct.nx, direct.ny)
            assert response.bounds == direct.bounds
            assert list(response.lower) == direct.lower.ravel().tolist()
            assert list(response.upper) == direct.upper.ravel().tolist()
        else:  # pragma: no cover - script only uses the kinds above
            raise AssertionError(f"unchecked request {request!r}")
        checked += 1
    return checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="serve-smoke-artifacts",
                        help="artifact directory (trace + metrics)")
    parser.add_argument("--store", default="shm",
                        choices=("ram", "shm", "memmap"))
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    problem = tiny_problem()
    ranks = knn_sites(problem)
    # In-process exact reference for the solve requests.
    from repro.serve.instance import InstanceRegistry
    from repro.serve.service import execute_requests

    registry = InstanceRegistry(store="ram")
    local = registry.publish(problem)
    (solve_reference,), _cert = execute_requests(
        local.problem, local.ranks, local.nlcs, local.space,
        [SolveRequest(local.instance_id)], local.certificate())
    # In-process exact reference for the heat-map requests: one fresh
    # (unseeded) build per grid size the script asks for.
    from repro.core.heatmap import build_heatmap

    grids = {(request.nx, request.ny)
             for batch in scripted_batches("grid-probe")
             for request in batch if isinstance(request, HeatmapRequest)}
    heatmap_reference = {
        grid: build_heatmap(local.nlcs, local.space, *grid)
        for grid in sorted(grids)}
    registry.close()

    proc, host, port = _boot_daemon(args.out, args.store, args.workers)
    checked = 0
    try:
        with ServeClient(host, port) as client:
            health = client.health()
            assert health["status"] == "ok", health
            instance_id = client.publish(publish_doc(args.store))
            print(f"published {instance_id} on {host}:{port}")
            batches = scripted_batches(instance_id)
            first_pass: list[list[str]] = []
            for batch in batches:
                responses = client.query(batch)
                checked += _check_batch(batch, responses, problem,
                                        ranks, solve_reference,
                                        heatmap_reference)
                first_pass.append([_canonical(r) for r in responses])
            # Warm repeat: the same script again, byte-identical answers
            # this time served from the daemon's result cache.
            for batch, blessed in zip(batches, first_pass):
                warm = [_canonical(r) for r in client.query(batch)]
                assert warm == blessed, "warm repeat diverged"
            metrics = client.metrics()
            counters = metrics["counters"]
            served = counters.get("serve_requests", 0)
            # The scheduler single-flights duplicate keys inside a
            # flush, so the daemon logs at least the unique keys of
            # each pass (and at most every submitted request).
            unique = sum(len({request_key(r) for r in batch})
                         for batch in batches)
            assert served >= 2 * unique, (served, unique)
            assert counters.get("serve_cache_hits", 0) > 0, counters
            client.shutdown()
        returncode = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    output = proc.stdout.read() if proc.stdout else ""
    if returncode != 0:
        print(output)
        print(f"daemon exited with {returncode}", file=sys.stderr)
        return 1
    for name in ("serve_trace.json", "metrics.json"):
        path = os.path.join(args.out, name)
        if not os.path.exists(path):
            print(f"missing artifact {path}", file=sys.stderr)
            return 1
        with open(path, "r", encoding="utf-8") as fh:
            json.load(fh)  # must be valid JSON
    print(f"serve smoke OK: {checked} served answers bit-identical to "
          f"in-process computation, warm repeat byte-identical from "
          f"cache; artifacts in {args.out}")
    return 0


if __name__ == "__main__":
    t0 = time.perf_counter()
    status = main()
    print(f"({time.perf_counter() - t0:.1f}s)")
    sys.exit(status)
