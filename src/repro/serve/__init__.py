"""Persistent query service over the shared NLC store.

Publish a MaxBRkNN instance once — NLC SoA into a :mod:`repro.store`
backend, site kd-tree, customer→site rank matrix, Theorem-2/3
certificate registry — then serve batched requests against the mapped
store with zero NLC copies per request.  Layers, bottom up:

* :mod:`~repro.serve.protocol` — request/response dataclasses, the
  lossless JSON codecs (``REQUEST_KINDS`` is the drift-checked
  registry), and :func:`request_key` canonical keys;
* :mod:`~repro.serve.cache` — :class:`ResultCache`, the epoch-stamped
  per-instance LRU the service answers repeat reads from;
* :mod:`~repro.serve.instance` — :class:`InstanceRegistry` /
  :class:`ServedInstance`, the publish step and per-instance shared
  state;
* :mod:`~repro.serve.service` — :class:`QueryService`, batch execution
  in-process or through ``serve_query_batch`` pool workers, fronted by
  the result cache;
* :mod:`~repro.serve.batching` — :class:`BatchScheduler`, request
  coalescing (single-flight per canonical key) for concurrent
  front-end callers;
* :mod:`~repro.serve.daemon` / :mod:`~repro.serve.client` — the stdlib
  HTTP/1.1 keep-alive socket front end (``repro serve`` /
  ``repro query``).
"""

from repro.serve.batching import BatchScheduler, Ticket
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon, problem_from_doc
from repro.serve.instance import (InstanceRegistry, ServedInstance,
                                  problem_from_payload)
from repro.serve.protocol import (REQUEST_KINDS, AnytimeSolveRequest,
                                  BrknnRequest, BrknnResponse,
                                  ErrorResponse, HeatmapRequest,
                                  HeatmapResponse, ImpactRequest,
                                  ImpactResponse, RegionSummary,
                                  SiteInfluenceRequest,
                                  SiteInfluenceResponse, SolveRequest,
                                  SolveResponse, decode_request,
                                  decode_response, encode_request,
                                  encode_response, request_key)
from repro.serve.service import QueryService, execute_requests

__all__ = [
    "REQUEST_KINDS",
    "AnytimeSolveRequest",
    "BatchScheduler",
    "BrknnRequest",
    "BrknnResponse",
    "ErrorResponse",
    "HeatmapRequest",
    "HeatmapResponse",
    "ImpactRequest",
    "ImpactResponse",
    "InstanceRegistry",
    "QueryService",
    "RegionSummary",
    "ResultCache",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServedInstance",
    "SiteInfluenceRequest",
    "SiteInfluenceResponse",
    "SolveRequest",
    "SolveResponse",
    "Ticket",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "execute_requests",
    "problem_from_doc",
    "problem_from_payload",
    "request_key",
]
