"""Thin stdlib HTTP client for a running serve daemon.

:class:`ServeClient` speaks the daemon's JSON surface and hands back
decoded :mod:`repro.serve.protocol` dataclasses — since the codecs are
lossless, a response received here compares equal (bit-identical
floats) to the response the service produced in the daemon process.
The benchmark, the smoke job, and ``repro query`` are all built on it.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection
from typing import Any, Sequence

from repro.serve.protocol import (Request, Response, decode_response,
                                  encode_request)

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An envelope-level failure (HTTP 4xx/5xx from the daemon)."""


class ServeClient:
    """Client for one daemon at ``host:port``.

    Keeps a single persistent connection — the daemon speaks HTTP/1.1,
    so every request after the first rides the same TCP stream
    (reconnecting transparently if the daemon dropped it); not
    thread-safe — use one client per thread.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: HTTPConnection | None = None

    # -- transport ------------------------------------------------------ #

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        payload = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        headers = ({"Content-Type": "application/json"}
                   if payload is not None else {})
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = HTTPConnection(self.host, self.port,
                                            timeout=self.timeout)
            try:
                if self._conn.sock is None:
                    # Connect eagerly so TCP_NODELAY covers the very
                    # first request: the header and body writes are
                    # separate small sends, and on a keep-alive stream
                    # Nagle would stall the second one ~40ms per
                    # round trip waiting on a delayed ACK.
                    self._conn.connect()
                    self._conn.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._conn.request(method, path, body=payload,
                                   headers=headers)
                response = self._conn.getresponse()
                break
            except (ConnectionError, OSError):
                # Stale keep-alive connection: reconnect once.
                self.close()
                if attempt:
                    raise
        doc = json.loads(response.read().decode("utf-8"))
        if response.will_close:
            # The server opted out of keep-alive for this exchange
            # (e.g. a proxy downgraded to HTTP/1.0): drop the
            # connection now so the next request reconnects cleanly
            # instead of tripping the stale-socket retry.
            self.close()
        if response.status != 200:
            raise ServeError(
                doc.get("error", f"HTTP {response.status}"))
        return doc

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- surface -------------------------------------------------------- #

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def publish(self, doc: dict[str, Any]) -> str:
        """Publish an instance from a ``/publish`` body; returns its id."""
        return str(self._request("POST", "/publish", doc)["instance"])

    def query(self, requests: Sequence[Request]) -> list[Response]:
        """Send one batch of requests; responses align positionally."""
        doc = self._request("POST", "/query", {
            "requests": [encode_request(r) for r in requests]})
        return [decode_response(d) for d in doc["responses"]]

    def shutdown(self) -> None:
        self._request("POST", "/shutdown")
        self.close()
