"""Deterministic per-instance result cache for the serve path.

The cache sits in front of :class:`repro.serve.service.QueryService`:
before a request reaches the solver, the service looks it up under its
canonical key (:func:`repro.serve.protocol.request_key`) and the
publishing instance's *epoch*.  Because every solver in this repo is
bit-deterministic, a cached response is not an approximation of a fresh
solve — it **is** the fresh solve, byte for byte, and
``tests/serve/test_cache.py`` plus ``benchmarks/bench_serve.py`` assert
exactly that before any timing happens.

Design points:

* **Keys.** ``(instance_id, request_key)``.  The request key is the
  codec-canonicalised JSON of the request (shortest-repr floats), so
  two requests share an entry exactly when they are field-for-field
  bit-identical.
* **Epochs.** Each entry is stamped with the instance's epoch at store
  time.  Dynamics (ROADMAP item 3) invalidate by bumping the epoch on
  the served instance — a lookup whose stamped epoch no longer matches
  is treated as a miss and the stale entry dropped.  ``invalidate()``
  exists for eager eviction (e.g. instance close).
* **Budget.** Plain LRU over a byte budget.  An entry is charged the
  UTF-8 length of its encoded-response JSON (the wire cost of a hit),
  plus a small fixed overhead per entry.  ``max_bytes <= 0`` disables
  the cache entirely — the "cold arm" configuration the benchmark uses.
* **Observability.** ``serve_cache_hits`` / ``serve_cache_misses`` /
  ``serve_cache_evictions`` counters and the ``serve_cache_bytes``
  gauge (see docs/observability.md).

Thread safety: one lock around every operation.  The critical sections
are dict moves, far cheaper than any solve; the daemon's handler
threads and the batch scheduler's flush thread share one instance.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict

from ..obs import metrics as _obs_metrics
from .protocol import Response, encode_response

__all__ = ["DEFAULT_CACHE_BYTES", "ENTRY_OVERHEAD_BYTES", "ResultCache"]

#: Default byte budget for a :class:`ResultCache` (64 MiB).  At the
#: benchmark's typical ~100-byte responses this is room for hundreds of
#: thousands of distinct hot reads per daemon.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

#: Flat per-entry surcharge covering the key strings and OrderedDict
#: node, so a flood of tiny responses cannot blow past the budget on
#: bookkeeping alone.
ENTRY_OVERHEAD_BYTES = 256


class ResultCache:
    """Epoch-stamped LRU over encoded-response byte cost.

    ``get``/``put`` take the owning instance's *current* epoch; entries
    stamped under an older epoch are invisible (and are dropped on
    touch).  Responses are frozen dataclasses, so a hit hands back the
    stored object itself — bit-identity with the original solve is
    structural, not re-derived.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        # (instance_id, request_key) -> (epoch, response, charged_bytes)
        self._entries: "OrderedDict[tuple[str, str], tuple[int, Response, int]]" = OrderedDict()
        self._bytes = 0
        self._hits = _obs_metrics.counter("serve_cache_hits")
        self._misses = _obs_metrics.counter("serve_cache_misses")
        self._evictions = _obs_metrics.counter("serve_cache_evictions")
        self._bytes_gauge = _obs_metrics.gauge("serve_cache_bytes")

    @property
    def enabled(self) -> bool:
        """Whether this cache can ever store anything."""
        return self.max_bytes > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Charged bytes currently resident (entries + overhead)."""
        with self._lock:
            return self._bytes

    def get(self, instance_id: str, key: str, epoch: int) -> Response | None:
        """Return the cached response, or ``None`` on miss/stale."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get((instance_id, key))
            if entry is None:
                self._misses.add(1)
                return None
            stored_epoch, response, nbytes = entry
            if stored_epoch != epoch:
                del self._entries[(instance_id, key)]
                self._bytes -= nbytes
                self._set_gauge()
                self._misses.add(1)
                return None
            self._entries.move_to_end((instance_id, key))
            self._hits.add(1)
            return response

    def put(self, instance_id: str, key: str, epoch: int,
            response: Response) -> None:
        """Store ``response``; evicts LRU entries past the byte budget."""
        if not self.enabled:
            return
        encoded = json.dumps(encode_response(response),
                             separators=(",", ":"))
        nbytes = len(encoded.encode("utf-8")) + ENTRY_OVERHEAD_BYTES
        if nbytes > self.max_bytes:
            return  # would evict the whole cache for one oversized entry
        with self._lock:
            old = self._entries.pop((instance_id, key), None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[(instance_id, key)] = (epoch, response, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, (_, _, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self._evictions.add(1)
            self._set_gauge()

    def invalidate(self, instance_id: str) -> int:
        """Eagerly drop every entry of ``instance_id``; returns count."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == instance_id]
            for k in doomed:
                self._bytes -= self._entries.pop(k)[2]
            if doomed:
                self._set_gauge()
            return len(doomed)

    def clear(self) -> None:
        """Drop everything (test helper)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._set_gauge()

    def _set_gauge(self) -> None:
        # Called with the lock held.
        self._bytes_gauge.set(float(self._bytes))
