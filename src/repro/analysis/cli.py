"""``python -m repro.analysis`` — the exactness linter's command line.

Exit codes: ``0`` clean (every finding grandfathered, baseline not
stale), ``1`` new findings or stale baseline entries or a failed
mypy/ruff gate, ``2`` tool errors — usage errors, unparsable files,
crashed rules.  Tool errors are reported per file and the run
*continues* (one broken file does not hide findings in the rest), but
they always force exit 2 and never enter baseline arithmetic.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_against_baseline,
    write_baseline,
)
from repro.analysis.gates import run_mypy_gate, run_ruff_gate
from repro.analysis.linter import lint_paths
from repro.analysis.project_rules import find_repo_root
from repro.analysis.rules import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Exactness linter: this codebase's correctness "
                    "invariants as mechanical AST rules (RPR001–RPR007 "
                    "module-local, RPR101–RPR106 with call-graph "
                    "context).")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files/directories to lint "
                             "(default: src tests)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: lint-baseline.txt "
                             "at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from this run "
                             "(shrink-only policy: review the diff)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--json-report", default=None, metavar="FILE",
                        help="also write the JSON report to FILE "
                             "(independent of --format; CI uploads it "
                             "as an artifact)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--typing", action="store_true",
                        help="also run the mypy --strict and ruff gates "
                             "(skipped when not installed)")
    return parser


def _split_codes(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    codes = tuple(code.strip().upper() for code in raw.split(",")
                  if code.strip())
    known = {rule.code for rule in all_rules()} | {"RPR000", "RPR005"}
    unknown = [code for code in codes if code not in known]
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}")
    return codes


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    root = find_repo_root(Path.cwd())
    if root is not None:
        return root / DEFAULT_BASELINE_NAME
    return None


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print("RPR000 internal        parse failures and malformed "
              "`# repro:` pragmas")
        for rule in all_rules():
            print(f"{rule.code} {rule.name:<22} {rule.summary}")
        print("RPR005 registry-drift         registry/obs/store vs "
              "docs, CLI choices, and test coverage")
        return 0

    try:
        select = _split_codes(args.select)
        ignore = _split_codes(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    try:
        findings = lint_paths(args.paths, select=select, ignore=ignore)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Tool errors (unparsable file, crashed rule) never enter baseline
    # arithmetic: a broken file must fail the run even if someone tries
    # to grandfather it.
    errors = [f for f in findings if f.kind == "error"]
    lints = [f for f in findings if f.kind != "error"]

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        if baseline_path is None:
            print("error: no baseline path (pass --baseline FILE)",
                  file=sys.stderr)
            return 2
        if errors:
            for finding in errors:
                print(finding.render(), file=sys.stderr)
            print("error: refusing to write a baseline while the run "
                  "has tool errors", file=sys.stderr)
            return 2
        write_baseline(baseline_path, lints)
        print(f"baseline written: {baseline_path} "
              f"({len(lints)} finding(s))")
        return 0

    baseline = load_baseline(baseline_path)
    new, grandfathered, stale = split_against_baseline(lints, baseline)

    payload = {
        "new": [vars(f) for f in new],
        "grandfathered": [vars(f) for f in grandfathered],
        "stale_baseline": stale,
        "errors": [vars(f) for f in errors],
    }
    if args.json_report:
        Path(args.json_report).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for finding in errors:
            print(finding.render())
        for finding in new:
            print(finding.render())
        for key in stale:
            print(f"stale baseline entry (finding fixed — delete it, "
                  f"see --write-baseline): {key}")
        summary = (f"{len(new)} new finding(s), "
                   f"{len(grandfathered)} grandfathered, "
                   f"{len(stale)} stale baseline entr(y/ies), "
                   f"{len(errors)} tool error(s)")
        print(summary, file=sys.stderr)

    failed = bool(new or stale)

    if args.typing:
        gates = [run_mypy_gate(), run_ruff_gate(args.paths)]
        for gate in gates:
            status = ("skipped" if gate.skipped
                      else "ok" if gate.ok else "FAILED")
            print(f"[{gate.name}] {status}", file=sys.stderr)
            if gate.output and not gate.ok:
                print(gate.output)
            failed = failed or not gate.ok

    if errors:
        return 2
    return 1 if failed else 0
