"""``python -m repro.analysis`` — the exactness linter's command line.

Exit codes: ``0`` clean (every finding grandfathered, baseline not
stale), ``1`` new findings or stale baseline entries or a failed
mypy/ruff gate, ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_against_baseline,
    write_baseline,
)
from repro.analysis.gates import run_mypy_gate, run_ruff_gate
from repro.analysis.linter import lint_paths
from repro.analysis.project_rules import find_repo_root
from repro.analysis.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Exactness linter: this codebase's correctness "
                    "invariants as mechanical AST rules (RPR001–RPR007).")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files/directories to lint "
                             "(default: src tests)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file (default: lint-baseline.txt "
                             "at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from this run "
                             "(shrink-only policy: review the diff)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--typing", action="store_true",
                        help="also run the mypy --strict and ruff gates "
                             "(skipped when not installed)")
    return parser


def _split_codes(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    codes = tuple(code.strip().upper() for code in raw.split(",")
                  if code.strip())
    known = {rule.code for rule in ALL_RULES} | {"RPR000", "RPR005"}
    unknown = [code for code in codes if code not in known]
    if unknown:
        raise SystemExit(
            f"error: unknown rule code(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}")
    return codes


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    root = find_repo_root(Path.cwd())
    if root is not None:
        return root / DEFAULT_BASELINE_NAME
    return None


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print("RPR000 internal        parse failures and malformed "
              "`# repro:` pragmas")
        for rule in ALL_RULES:
            print(f"{rule.code} {rule.name:<22} {rule.summary}")
        print("RPR005 registry-drift         registry vs docs/api.md, "
              "CLI --solver, and test coverage")
        return 0

    try:
        select = _split_codes(args.select)
        ignore = _split_codes(args.ignore)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    try:
        findings = lint_paths(args.paths, select=select, ignore=ignore)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        if baseline_path is None:
            print("error: no baseline path (pass --baseline FILE)",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, findings)
        print(f"baseline written: {baseline_path} "
              f"({len(findings)} finding(s))")
        return 0

    baseline = load_baseline(baseline_path)
    new, grandfathered, stale = split_against_baseline(findings, baseline)

    if args.format == "json":
        print(json.dumps({
            "new": [vars(f) for f in new],
            "grandfathered": [vars(f) for f in grandfathered],
            "stale_baseline": stale,
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        for key in stale:
            print(f"stale baseline entry (finding fixed — delete it, "
                  f"see --write-baseline): {key}")
        summary = (f"{len(new)} new finding(s), "
                   f"{len(grandfathered)} grandfathered, "
                   f"{len(stale)} stale baseline entr(y/ies)")
        print(summary, file=sys.stderr)

    failed = bool(new or stale)

    if args.typing:
        gates = [run_mypy_gate(), run_ruff_gate(args.paths)]
        for gate in gates:
            status = ("skipped" if gate.skipped
                      else "ok" if gate.ok else "FAILED")
            print(f"[{gate.name}] {status}", file=sys.stderr)
            if gate.output and not gate.ok:
                print(gate.output)
            failed = failed or not gate.ok

    return 1 if failed else 0
