"""RPR005 — registry/docs drift: the project-level cross-check.

Unlike the per-module AST rules, this rule sees the whole repository: it
loads the live solver registry (:mod:`repro.engine.registry`) and
cross-checks it against the documentation, the CLI, and the test suite.
The sharded-grid bug shipped in PR 2 precisely because a behavioural
contract (every requested shard covered) lived only in prose; this rule
makes the *name-level* contracts mechanical:

* every registered solver is documented in ``docs/api.md``;
* every registered solver is offered by the CLI ``--solver`` choices;
* every registered solver name appears somewhere in ``tests/`` (a solver
  nobody exercises has undeclared capabilities);
* declared capabilities match what tests exercise: ``exact=True``
  requires the cross-solver agreement suite (it selects on
  ``exact_only=True``), and ``supports_top_t=True`` requires a test that
  names the solver *and* mentions ``top_t``.

The checks are name-level heuristics on purpose — they catch drift, not
semantics; the agreement tests themselves prove the semantics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding

REGISTRY_REL = "src/repro/engine/registry.py"


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    for candidate in (start, *start.resolve().parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _registration_line(registry_source: str, name: str) -> int:
    """Best-effort line of ``name``'s registration for finding anchors."""
    needle = f'"{name}"'
    for lineno, line in enumerate(registry_source.splitlines(), start=1):
        if needle in line and "register_solver" in registry_source:
            return lineno
    return 1


def _cli_solver_choices() -> tuple[str, ...] | None:
    """The ``--solver`` choices the CLI actually offers, or None."""
    from repro.cli import _build_parser

    parser = _build_parser()
    for action in parser._actions:  # noqa: SLF001 — argparse introspection
        if not hasattr(action, "choices") or not isinstance(
                action.choices, dict):
            continue
        solve = action.choices.get("solve")
        if solve is None:
            continue
        for sub_action in solve._actions:
            if "--solver" in getattr(sub_action, "option_strings", ()):
                choices = sub_action.choices
                return tuple(choices) if choices is not None else None
    return None


def check_registry_drift(
        repo_root: Path, *,
        api_doc: Path | None = None,
        tests_dir: Path | None = None) -> Iterator[Finding]:
    """Run the RPR005 cross-checks rooted at ``repo_root``.

    ``api_doc`` and ``tests_dir`` exist so drift tests can point the
    check at synthetic fixtures; production use passes only the root.
    """
    registry_path = repo_root / REGISTRY_REL
    if not registry_path.is_file():
        return  # not this repository's layout — rule does not apply
    api_doc = api_doc or repo_root / "docs" / "api.md"
    tests_dir = tests_dir or repo_root / "tests"
    relpath = REGISTRY_REL
    registry_source = registry_path.read_text(encoding="utf-8")

    from repro.engine.registry import get_solver_spec, solver_names

    names = solver_names()
    doc_text = (api_doc.read_text(encoding="utf-8")
                if api_doc.is_file() else "")

    test_texts: dict[str, str] = {}
    if tests_dir.is_dir():
        for test_file in sorted(tests_dir.rglob("*.py")):
            if "fixtures" in test_file.parts:
                continue
            test_texts[str(test_file)] = test_file.read_text(
                encoding="utf-8", errors="replace")
    all_tests = "\n".join(test_texts.values())

    cli_choices = _cli_solver_choices()

    for name in names:
        spec = get_solver_spec(name)
        line = _registration_line(registry_source, name)

        if name not in doc_text:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"solver '{name}' is registered but absent from "
                         f"docs/api.md — document it (name, capabilities,"
                         " options)"))

        if cli_choices is not None and name not in cli_choices:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"solver '{name}' is registered but missing "
                         "from the CLI --solver choices"))

        if name not in all_tests:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"solver '{name}' is registered but never named "
                         "in tests/ — declared capabilities are "
                         "unexercised"))
            continue  # the capability checks below would double-report

        caps = spec.capabilities
        if caps.exact and "exact_only=True" not in all_tests:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"solver '{name}' declares exact=True but no "
                         "test selects solver_names(exact_only=True) — "
                         "the cross-solver agreement suite is the "
                         "mechanical witness for exactness"))
        if caps.supports_top_t and not any(
                name in text and "top_t" in text
                for text in test_texts.values()):
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"solver '{name}' declares supports_top_t=True "
                         "but no test exercises top_t with it"))

    if cli_choices is None:
        yield Finding(
            path=relpath, line=1, col=1, code="RPR005",
            message=("could not introspect the CLI --solver choices "
                     "(argparse layout changed?) — RPR005 cannot verify "
                     "the CLI surface"))


METRICS_REL = "src/repro/obs/metrics.py"
OBS_DOC_REL = "docs/observability.md"
GATE_BASELINE_REL = "bench-baselines/counters_tiny.json"


def _key_line(source: str, key: str) -> int:
    """Best-effort line where ``key`` is declared, for finding anchors."""
    needle = f'"{key}"'
    for lineno, line in enumerate(source.splitlines(), start=1):
        if needle in line:
            return lineno
    return 1


def check_obs_drift(repo_root: Path, *,
                    obs_doc: Path | None = None,
                    tests_dir: Path | None = None) -> Iterator[Finding]:
    """RPR005 for the observability layer: counters ↔ docs ↔ CLI ↔ gate.

    The counter glossary in ``docs/observability.md`` is the contract the
    perf gate's ±band diffs are read against; a counter nobody documents
    (or a gated counter nobody emits) silently erodes the gate.  Checks:

    * every ``repro.obs.metrics`` counter and gauge key is documented in
      ``docs/observability.md``;
    * the CLI still offers ``--trace`` / ``--trace-format`` (the doc's
      Perfetto how-to depends on them);
    * ``repro.obs`` is exercised somewhere in ``tests/``;
    * the checked-in gate baseline parses and gates only known counters.
    """
    metrics_path = repo_root / METRICS_REL
    if not metrics_path.is_file():
        return  # not this repository's layout — rule does not apply
    obs_doc = obs_doc or repo_root / OBS_DOC_REL
    tests_dir = tests_dir or repo_root / "tests"
    relpath = METRICS_REL
    metrics_source = metrics_path.read_text(encoding="utf-8")

    from repro.obs.gate import GATED_COUNTERS, SERVE_GATED_COUNTERS
    from repro.obs.metrics import COUNTER_KEYS, GAUGE_KEYS

    doc_text = (obs_doc.read_text(encoding="utf-8")
                if obs_doc.is_file() else "")
    if not doc_text:
        yield Finding(
            path=relpath, line=1, col=1, code="RPR005",
            message=(f"{OBS_DOC_REL} is missing — the counter glossary "
                     "and gate docs are the contract for repro.obs"))
    for key in (*COUNTER_KEYS, *GAUGE_KEYS):
        if doc_text and key not in doc_text:
            yield Finding(
                path=relpath, line=_key_line(metrics_source, key),
                col=1, code="RPR005",
                message=(f"metric '{key}' is registered in repro.obs but "
                         f"absent from {OBS_DOC_REL} — add it to the "
                         "counter glossary"))

    cli_path = repo_root / "src" / "repro" / "cli.py"
    cli_source = (cli_path.read_text(encoding="utf-8")
                  if cli_path.is_file() else "")
    for flag in ("--trace", "--trace-format"):
        if f'"{flag}"' not in cli_source:
            yield Finding(
                path=relpath, line=1, col=1, code="RPR005",
                message=(f"the CLI no longer offers {flag} — the "
                         f"{OBS_DOC_REL} trace how-to depends on it"))

    if tests_dir.is_dir():
        exercised = any("repro.obs" in test_file.read_text(
                            encoding="utf-8", errors="replace")
                        for test_file in sorted(tests_dir.rglob("*.py"))
                        if "fixtures" not in test_file.parts)
        if not exercised:
            yield Finding(
                path=relpath, line=1, col=1, code="RPR005",
                message=("repro.obs is never imported in tests/ — the "
                         "tracer/metrics/gate contracts are unexercised"))

    baseline_path = repo_root / GATE_BASELINE_REL
    if baseline_path.is_file():
        import json

        try:
            counters = json.loads(
                baseline_path.read_text(encoding="utf-8"))["counters"]
        except (json.JSONDecodeError, KeyError, TypeError):
            yield Finding(
                path=relpath, line=1, col=1, code="RPR005",
                message=(f"{GATE_BASELINE_REL} does not parse as a gate "
                         "baseline ({'counters': {...}}) — regenerate "
                         "with python -m repro.obs.gate --write-baseline"))
        else:
            gated = set(GATED_COUNTERS) | set(SERVE_GATED_COUNTERS)
            for flat_key in counters:
                name = flat_key.rpartition("/")[2]
                if name not in gated:
                    yield Finding(
                        path=relpath, line=1, col=1, code="RPR005",
                        message=(f"baseline key '{flat_key}' gates "
                                 f"unknown counter '{name}' — not in "
                                 "repro.obs.gate.GATED_COUNTERS or "
                                 "SERVE_GATED_COUNTERS"))


STORE_REL = "src/repro/store/__init__.py"


def _cli_store_choices() -> tuple[str, ...] | None:
    """The ``--store`` choices the CLI actually offers, or None."""
    from repro.cli import _build_parser

    parser = _build_parser()
    for action in parser._actions:  # noqa: SLF001 — argparse introspection
        if not hasattr(action, "choices") or not isinstance(
                action.choices, dict):
            continue
        solve = action.choices.get("solve")
        if solve is None:
            continue
        for sub_action in solve._actions:
            if "--store" in getattr(sub_action, "option_strings", ()):
                choices = sub_action.choices
                return tuple(choices) if choices is not None else None
    return None


def check_store_drift(repo_root: Path, *,
                      api_doc: Path | None = None,
                      tests_dir: Path | None = None) -> Iterator[Finding]:
    """RPR005 for the store layer: backends ↔ docs ↔ CLI ↔ tests.

    The same name-level triangle the solver registry gets: every backend
    in ``repro.store.STORE_NAMES`` must be documented in ``docs/api.md``,
    offered by the CLI ``--store`` choices, and named somewhere under
    ``tests/store/`` — a backend nobody exercises has an unproven
    lifecycle, which for shm means a potential segment leak.
    """
    store_path = repo_root / STORE_REL
    if not store_path.is_file():
        return  # not this repository's layout — rule does not apply
    api_doc = api_doc or repo_root / "docs" / "api.md"
    tests_dir = tests_dir or repo_root / "tests" / "store"
    relpath = STORE_REL
    store_source = store_path.read_text(encoding="utf-8")

    from repro.store import STORE_NAMES

    doc_text = (api_doc.read_text(encoding="utf-8")
                if api_doc.is_file() else "")
    test_text = ""
    if tests_dir.is_dir():
        test_text = "\n".join(
            test_file.read_text(encoding="utf-8", errors="replace")
            for test_file in sorted(tests_dir.rglob("*.py"))
            if "fixtures" not in test_file.parts)

    cli_choices = _cli_store_choices()

    for name in STORE_NAMES:
        line = _key_line(store_source, name)
        if name not in doc_text:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"store backend '{name}' is registered but "
                         "absent from docs/api.md — document it "
                         "(lifecycle, process model, when to pick it)"))
        if cli_choices is not None and name not in cli_choices:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"store backend '{name}' is registered but "
                         "missing from the CLI --store choices"))
        if f'"{name}"' not in test_text:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"store backend '{name}' is never named in "
                         "tests/store/ — its handle lifecycle is "
                         "unexercised"))

    if cli_choices is None:
        yield Finding(
            path=relpath, line=1, col=1, code="RPR005",
            message=("could not introspect the CLI --store choices "
                     "(argparse layout changed?) — RPR005 cannot verify "
                     "the store CLI surface"))


SERVE_PROTOCOL_REL = "src/repro/serve/protocol.py"
SERVE_WORKLOAD_REL = "src/repro/serve/workload.py"


def _cli_query_kind_choices() -> tuple[str, ...] | None:
    """The ``query --kind`` choices the CLI actually offers, or None."""
    from repro.cli import _build_parser

    parser = _build_parser()
    for action in parser._actions:  # noqa: SLF001 — argparse introspection
        if not hasattr(action, "choices") or not isinstance(
                action.choices, dict):
            continue
        query = action.choices.get("query")
        if query is None:
            continue
        for sub_action in query._actions:
            if "--kind" in getattr(sub_action, "option_strings", ()):
                choices = sub_action.choices
                return tuple(choices) if choices is not None else None
    return None


def check_serve_drift(repo_root: Path, *,
                      api_doc: Path | None = None,
                      tests_dir: Path | None = None,
                      workload_path: Path | None = None
                      ) -> Iterator[Finding]:
    """RPR005 for the serve layer: kinds ↔ docs ↔ CLI ↔ tests ↔ workload.

    ``repro.serve.protocol.REQUEST_KINDS`` is the service's registry;
    every kind must be documented in ``docs/api.md`` (the request-kind
    table), offered by the CLI ``query --kind`` choices, named
    somewhere under ``tests/serve/`` — a request kind nobody exercises
    means an untested wire codec and an untested executor branch — and
    built by the scripted workload (its request class must appear in
    ``src/repro/serve/workload.py``), so the serve smoke and the
    counter gate replay every kind end to end.
    """
    protocol_path = repo_root / SERVE_PROTOCOL_REL
    if not protocol_path.is_file():
        return  # not this repository's layout — rule does not apply
    api_doc = api_doc or repo_root / "docs" / "api.md"
    tests_dir = tests_dir or repo_root / "tests" / "serve"
    relpath = SERVE_PROTOCOL_REL
    protocol_source = protocol_path.read_text(encoding="utf-8")

    from repro.serve.protocol import _REQUEST_TYPES, REQUEST_KINDS

    doc_text = (api_doc.read_text(encoding="utf-8")
                if api_doc.is_file() else "")
    workload_path = workload_path or repo_root / SERVE_WORKLOAD_REL
    workload_text = (workload_path.read_text(encoding="utf-8")
                     if workload_path.is_file() else "")
    test_text = ""
    if tests_dir.is_dir():
        test_text = "\n".join(
            test_file.read_text(encoding="utf-8", errors="replace")
            for test_file in sorted(tests_dir.rglob("*.py"))
            if "fixtures" not in test_file.parts)

    cli_choices = _cli_query_kind_choices()

    for kind in REQUEST_KINDS:
        line = _key_line(protocol_source, kind)
        if kind not in doc_text:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"serve request kind '{kind}' is registered "
                         "but absent from docs/api.md — add it to the "
                         "request-kind table"))
        if cli_choices is not None and kind not in cli_choices:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"serve request kind '{kind}' is registered "
                         "but missing from the CLI query --kind "
                         "choices"))
        if f'"{kind}"' not in test_text:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"serve request kind '{kind}' is never named "
                         "in tests/serve/ — its codec and executor "
                         "branch are unexercised"))
        request_cls = _REQUEST_TYPES[kind].__name__
        if request_cls not in workload_text:
            yield Finding(
                path=relpath, line=line, col=1, code="RPR005",
                message=(f"serve request kind '{kind}' "
                         f"({request_cls}) is missing from the "
                         f"scripted workload ({SERVE_WORKLOAD_REL}) — "
                         "the serve smoke and the counter gate never "
                         "replay it"))

    if cli_choices is None:
        yield Finding(
            path=relpath, line=1, col=1, code="RPR005",
            message=("could not introspect the CLI query --kind choices "
                     "(argparse layout changed?) — RPR005 cannot verify "
                     "the serve CLI surface"))
