"""Finding records produced by the exactness linter.

A :class:`Finding` pins a rule violation to a file and line.  Its
:meth:`Finding.baseline_key` deliberately *excludes* the line and column:
grandfathered findings must survive unrelated edits that shift lines, so
the baseline matches on ``(code, path, message)`` only.  Rule authors
therefore keep messages stable — no line numbers or volatile values
inside the message text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one site.

    ``kind`` separates lint findings (rule violations — CLI exit 1)
    from tool errors (unparsable file, crashed rule — CLI exit 2).
    Errors never participate in baseline arithmetic: a broken file must
    fail the run even if someone tries to grandfather it.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    kind: str = "lint"  # "lint" | "error"

    def baseline_key(self) -> str:
        """Line-insensitive identity used for baseline matching."""
        return f"{self.code}\t{self.path}\t{self.message}"

    def render(self) -> str:
        """``path:line:col: CODE message`` — the one-line text format."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
