"""The linter driver: files → contexts → rules → findings.

:func:`lint_paths` is the programmatic entry point (the CLI and the test
suite both call it): it walks the requested paths, runs every applicable
per-module rule plus the project-level registry cross-check, and returns
the findings sorted by location.  Baseline arithmetic is the caller's
job (:mod:`repro.analysis.baseline`), so library users can inspect raw
findings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.loader import iter_python_files, load_module
from repro.analysis.project_rules import (check_obs_drift,
                                          check_registry_drift,
                                          find_repo_root)
from repro.analysis.rules import rules_for_module


def lint_file(path: Path | str, *, relpath: str | None = None,
              is_test: bool | None = None,
              select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file with the per-module rules (no project checks)."""
    path = Path(path)
    try:
        module = load_module(path, relpath=relpath, is_test=is_test)
    except SyntaxError as exc:
        shown = relpath or path.as_posix()
        return [Finding(path=shown, line=exc.lineno or 1, col=1,
                        code="RPR000",
                        message=f"file does not parse: {exc.msg}")]
    findings = list(module.pragma_findings())
    for rule in rules_for_module(module, select=select, ignore=ignore):
        findings.extend(rule.check(module))
    return findings


def lint_paths(paths: Sequence[Path | str], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               project_checks: bool = True) -> list[Finding]:
    """Lint every python file under ``paths``; sorted findings.

    ``project_checks=False`` restricts the run to per-module rules —
    fixture tests use it to keep runs hermetic.
    """
    select = tuple(select) if select else None
    ignore = tuple(ignore) if ignore else None
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select, ignore=ignore))

    if project_checks and _code_enabled("RPR005", select, ignore):
        roots = {find_repo_root(Path(p)) for p in paths}
        roots.discard(None)
        for root in sorted(roots, key=str):
            assert root is not None
            findings.extend(check_registry_drift(root))
            findings.extend(check_obs_drift(root))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _code_enabled(code: str, select: tuple[str, ...] | None,
                  ignore: tuple[str, ...] | None) -> bool:
    if select is not None and code not in select:
        return False
    return not (ignore and code in ignore)
