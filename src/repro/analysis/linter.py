"""The linter driver: files → contexts → call graph → rules → findings.

:func:`lint_paths` is the programmatic entry point (the CLI and the test
suite both call it): it loads every requested file first, builds the
run's :class:`~repro.analysis.callgraph.CallGraph` over the modules that
parsed, then runs every applicable rule — module-local RPR0xx rules and
context RPR1xx rules, which receive the graph — plus the project-level
drift cross-checks, returning findings sorted by location.

Failure isolation is part of the contract: a syntax error in one file
becomes an ``RPR000`` *error* finding for that file and the run
continues; a rule that crashes on one module likewise becomes an error
finding naming the rule instead of aborting the run.  Error findings
(``Finding.kind == "error"``) are the CLI's exit-2 signal and never
enter baseline arithmetic.

Baseline arithmetic is the caller's job (:mod:`repro.analysis.baseline`),
so library users can inspect raw findings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.callgraph import CallGraph
from repro.analysis.concurrency_rules import CONTEXT_RULES, ContextRule
from repro.analysis.findings import Finding
from repro.analysis.loader import (ModuleContext, iter_python_files,
                                   load_module)
from repro.analysis.project_rules import (check_obs_drift,
                                          check_registry_drift,
                                          check_serve_drift,
                                          check_store_drift,
                                          find_repo_root)
from repro.analysis.rules import all_rules, rules_for_module


def _syntax_finding(shown: str, exc: SyntaxError) -> Finding:
    return Finding(path=shown, line=exc.lineno or 1, col=1,
                   code="RPR000", kind="error",
                   message=f"file does not parse: {exc.msg}")


def _run_rules(module: ModuleContext, graph: CallGraph, *,
               select: Iterable[str] | None,
               ignore: Iterable[str] | None) -> list[Finding]:
    findings = list(module.pragma_findings())
    for rule in rules_for_module(module, select=select, ignore=ignore,
                                 rules=all_rules()):
        try:
            if isinstance(rule, ContextRule):
                findings.extend(rule.check(module, graph))
            else:
                findings.extend(rule.check(module))
        except Exception as exc:  # repro: fallback(the crash is not
            # swallowed — it becomes an RPR000 error finding that
            # forces exit 2; isolating it keeps one broken rule from
            # hiding every other rule's findings)
            findings.append(Finding(
                path=module.relpath, line=1, col=1, code="RPR000",
                kind="error",
                message=(f"rule {rule.code} ({rule.name}) crashed on "
                         f"this file: {type(exc).__name__}: {exc}")))
    return findings


def lint_file(path: Path | str, *, relpath: str | None = None,
              is_test: bool | None = None,
              select: Iterable[str] | None = None,
              ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file with the per-module rules (no project checks).

    Context rules see a call graph built from this file alone, so
    worker-reachability comes from the file's own
    ``WORKER_ENTRY_POINTS`` declaration or submit calls — which is how
    the fixture tests drive the RPR1xx rules hermetically.
    """
    path = Path(path)
    try:
        module = load_module(path, relpath=relpath, is_test=is_test)
    except SyntaxError as exc:
        return [_syntax_finding(relpath or path.as_posix(), exc)]
    graph = CallGraph.build([module])
    return _run_rules(module, graph, select=select, ignore=ignore)


def lint_paths(paths: Sequence[Path | str], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               project_checks: bool = True) -> list[Finding]:
    """Lint every python file under ``paths``; sorted findings.

    ``project_checks=False`` restricts the run to per-module rules —
    fixture tests use it to keep runs hermetic.
    """
    select = tuple(select) if select else None
    ignore = tuple(ignore) if ignore else None
    findings: list[Finding] = []
    modules: list[ModuleContext] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            findings.append(_syntax_finding(path.as_posix(), exc))

    graph = CallGraph.build(modules)
    for module in modules:
        findings.extend(_run_rules(module, graph,
                                   select=select, ignore=ignore))

    if project_checks:
        roots = {find_repo_root(Path(p)) for p in paths}
        roots.discard(None)
        for root in sorted(roots, key=str):
            assert root is not None
            if _code_enabled("RPR005", select, ignore):
                findings.extend(check_registry_drift(root))
                findings.extend(check_obs_drift(root))
                findings.extend(check_store_drift(root))
                findings.extend(check_serve_drift(root))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _code_enabled(code: str, select: tuple[str, ...] | None,
                  ignore: tuple[str, ...] | None) -> bool:
    if select is not None and code not in select:
        return False
    return not (ignore and code in ignore)
