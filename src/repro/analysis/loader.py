"""File discovery and per-module analysis context.

The linter operates on :class:`ModuleContext` objects: parsed source plus
the metadata rules key off — display path, pragma table, and whether the
module is test code (some rules exempt tests; see each rule's docstring).

Directory traversal skips ``fixtures`` directories by default: the rule
fixtures under ``tests/analysis/fixtures`` contain *deliberate*
violations.  Explicitly passing a fixture file still lints it — that is
how the fixture tests drive the rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_TAGS, Pragma, parse_pragmas

#: Directory names never descended into during traversal.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", "build", "dist",
    ".mypy_cache", ".ruff_cache", ".pytest_cache", "fixtures",
})


@dataclass
class ModuleContext:
    """Everything a per-module rule needs to know about one file."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: list[str]
    pragmas: list[Pragma] = field(default_factory=list)
    is_test: bool = False

    def suppressed(self, line: int, tag: str) -> bool:
        """True when a matching pragma covers ``line``.

        A pragma covers the line it sits on and the line below; a
        pragma written as a comment line of its own also covers the
        next *code* line across any intervening comment lines, so long
        reasons may wrap over several comment lines.  A malformed
        pragma (empty reason) never suppresses — it is reported via
        :meth:`pragma_findings` instead.
        """
        for p in self.pragmas:
            if p.tag != tag or not p.reason:
                continue
            if p.line in (line, line - 1):
                return True
            if p.line < line - 1 and self._comment_only(p.line) and all(
                    self._comment_only(n) for n in range(p.line + 1, line)):
                return True
        return False

    def _comment_only(self, line: int) -> bool:
        """Is 1-based ``line`` a comment-only source line?"""
        if not 1 <= line <= len(self.lines):
            return False
        return self.lines[line - 1].lstrip().startswith("#")

    def pragma_findings(self) -> Iterator[Finding]:
        """Malformed pragmas: unknown tag or missing reason (RPR000)."""
        for p in self.pragmas:
            if p.malformed:
                yield Finding(
                    path=self.relpath, line=p.line, col=1, code="RPR000",
                    message=(f"malformed pragma near {p.tag!r}: expected "
                             "`# repro: <tag>(<reason>)` with a lowercase "
                             "tag and parenthesised reason"))
            elif p.tag not in PRAGMA_TAGS:
                yield Finding(
                    path=self.relpath, line=p.line, col=1, code="RPR000",
                    message=(f"unknown pragma tag {p.tag!r}; known tags: "
                             + ", ".join(sorted(PRAGMA_TAGS))))
            elif not p.reason:
                yield Finding(
                    path=self.relpath, line=p.line, col=1, code="RPR000",
                    message=(f"pragma {p.tag!r} needs a non-empty reason: "
                             "every suppression carries its audit "
                             "rationale in-line"))


def _default_is_test(path: Path) -> bool:
    name = path.name
    if name.startswith(("test_", "conftest", "bench_")):
        return True
    parts = path.parts
    return "tests" in parts and "fixtures" not in parts


def load_module(path: Path | str, *, relpath: str | None = None,
                is_test: bool | None = None) -> ModuleContext:
    """Parse ``path`` into a :class:`ModuleContext`.

    ``relpath`` overrides the display path (fixture tests use this to
    place a fixture "inside" a scoped package, e.g. ``repro/index``);
    ``is_test`` overrides test-module detection the same way.

    Raises :class:`SyntaxError` when the file does not parse — the
    driver converts that into an ``RPR000`` finding.
    """
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    if relpath is None:
        try:
            relpath = path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            relpath = path.as_posix()
    if is_test is None:
        is_test = _default_is_test(Path(relpath))
    return ModuleContext(path=path, relpath=relpath, tree=tree,
                         lines=lines, pragmas=parse_pragmas(lines),
                         is_test=is_test)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths``, sorted, fixtures excluded.

    Files named explicitly are always yielded, even inside an excluded
    directory; only *traversal* honours :data:`SKIP_DIRS`.
    """
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            yield p
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"no such file or directory: {p}")
        for sub in sorted(p.rglob("*.py")):
            relative = sub.relative_to(p)
            if any(part in SKIP_DIRS for part in relative.parts[:-1]):
                continue
            yield sub
