"""Baseline handling: grandfathered findings, monotone-shrink policy.

The checked-in baseline (``lint-baseline.txt`` at the repo root) is a
multiset of line-insensitive finding keys.  Comparison yields two kinds
of failure and both gate:

* **new** findings — present in the run, absent from (or exceeding) the
  baseline: fix them, never add them to the file by hand;
* **stale** entries — in the baseline but no longer found: the debt was
  paid, so the entry must be deleted (``--write-baseline``).  This is
  what makes the baseline shrink monotonically: it can never silently
  hold more suppressions than reality needs.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

DEFAULT_BASELINE_NAME = "lint-baseline.txt"

_HEADER = """\
# repro.analysis baseline — grandfathered findings (one tab-separated
# `CODE\\tpath\\tmessage` key per line, line numbers excluded on purpose).
#
# Policy: this file only shrinks.  New findings must be fixed (or carry
# an audited pragma), never appended here; entries for fixed findings
# are removed with `python -m repro.analysis --write-baseline`.
"""


def load_baseline(path: Path | str | None) -> Counter[str]:
    """The baseline as a multiset of finding keys (empty when no file)."""
    if path is None:
        return Counter()
    path = Path(path)
    if not path.is_file():
        return Counter()
    keys: Counter[str] = Counter()
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        keys[line] += 1
    return keys


def write_baseline(path: Path | str, findings: list[Finding]) -> None:
    """Regenerate ``path`` from ``findings`` (sorted, with header)."""
    keys = sorted(f.baseline_key() for f in findings)
    body = _HEADER + "".join(key + "\n" for key in keys)
    Path(path).write_text(body, encoding="utf-8")


def split_against_baseline(
        findings: list[Finding], baseline: Counter[str],
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition a run against the baseline.

    Returns ``(new, grandfathered, stale)``: findings that must be
    fixed, findings the baseline covers, and baseline keys whose
    findings no longer exist (the file must shrink).
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sorted(remaining.elements())
    return new, grandfathered, stale
