"""Lightweight module-level call graph + worker-reachability marking.

The RPR1xx concurrency rules (:mod:`repro.analysis.concurrency_rules`)
need one piece of whole-program context the per-module rules never did:
*does this function run inside a pool worker process?*  A mutation of
module state is a latent bug in a worker (each worker mutates its own
copy, the parent never sees it, and bit-identity quietly depends on the
task schedule) but perfectly fine on the parent's serial path.

This builder is deliberately *lightweight* — name-level resolution over
the parsed modules of one lint run, no type inference beyond
``x = KnownClass(...)`` locals:

* every ``def``/``async def`` (including methods and nested functions)
  becomes a node, qualified as ``package.module.Class.method``;
* call edges resolve through module-local names, ``import``/``from``
  aliases (function-level imports included — the pool workers import
  lazily), ``self.method`` inside a class, and locals assigned from a
  known class constructor;
* **entry points** are the functions named in a module-level
  ``WORKER_ENTRY_POINTS = ("name", ...)`` tuple (``engine/pool.py``
  declares its worker entries there) plus any function passed by name
  as the first argument to a ``submit``/``submit_call``/``apply_async``
  call;
* everything BFS-reachable from an entry point is **worker-reachable**.

Unresolvable calls (duck-typed receivers, dynamic dispatch) simply add
no edge — the pass under-approximates reachability, which is the right
failure mode for a linter: a missed edge can miss a finding, never
invent one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable

from repro.analysis.loader import ModuleContext

__all__ = ["CallGraph", "FunctionInfo", "module_name_for"]

#: Call names (last dotted segment) that submit work to a pool; the
#: first positional argument, when it resolves to a function, is a
#: worker entry point.
SUBMIT_NAMES = frozenset({"submit", "submit_call", "apply_async"})

#: Call names (last dotted segment) that release a store resource —
#: used by RPR104 to credit a function (or a direct callee) with
#: handling a lifecycle it opened.
RELEASE_NAMES = frozenset({"detach", "close", "abort", "finalize"})


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/engine/pool.py`` → ``repro.engine.pool``;
    ``src/repro/store/__init__.py`` → ``repro.store``.  Paths outside a
    ``src`` layout keep their remaining parts, which is enough for the
    name-level matching this graph does.
    """
    parts = list(PurePosixPath(relpath).parts)
    if parts and parts[0] in ("src", "."):
        parts = parts[1:]
    if not parts:
        return relpath
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts) if parts else relpath


def _is_package(relpath: str) -> bool:
    return PurePosixPath(relpath).name == "__init__.py"


def call_name(node: ast.Call) -> str:
    """Dotted-ish name of a call target (mirrors ``rules._call_name``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        parts = [func.attr]
        value = func.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class FunctionInfo:
    """One function node in the graph."""

    qualname: str  # module.[Class.][outer.]name
    module: str  # dotted module name
    name: str  # unqualified name
    node: ast.AST  # the FunctionDef / AsyncFunctionDef
    cls: str | None = None  # enclosing class qualname, if a method
    parent: str | None = None  # enclosing function qualname, if nested
    calls: list[str] = field(default_factory=list)  # raw dotted names


@dataclass
class _ModuleInfo:
    name: str
    aliases: dict[str, str]  # import name → dotted module
    fromimports: dict[str, str]  # from-import name → dotted target
    entry_names: list[str]  # WORKER_ENTRY_POINTS declarations


class _Collector(ast.NodeVisitor):
    """Collect functions/classes of one module with qualified names."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.stack: list[tuple[str, str]] = []  # (kind, name)
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, set[str]] = {}  # class qual → methods

    def _qual(self, name: str) -> str:
        return ".".join([self.module, *(n for _, n in self.stack), name])

    def _visit_func(self, node: ast.AST, name: str) -> None:
        qual = self._qual(name)
        cls = None
        parent = None
        if self.stack:
            kind, _ = self.stack[-1]
            enclosing = ".".join(
                [self.module, *(n for _, n in self.stack)])
            if kind == "class":
                cls = enclosing
                self.classes.setdefault(enclosing, set()).add(name)
            else:
                parent = enclosing
        self.functions[qual] = FunctionInfo(
            qualname=qual, module=self.module, name=name, node=node,
            cls=cls, parent=parent)
        self.stack.append(("func", name))
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        self.classes.setdefault(qual, set())
        self.stack.append(("class", node.name))
        self.generic_visit(node)
        self.stack.pop()


def _collect_imports(module: _ModuleInfo, tree: ast.Module,
                     is_package: bool) -> None:
    """Fill the alias/from-import maps from every import in the file."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    module.aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.name.split(".")
                # level 1 is the containing package: the module's own
                # name for a package __init__, its parent otherwise.
                up = node.level - (1 if is_package else 0)
                if up:
                    parts = parts[:-up] if up < len(parts) else []
                base = ".".join([p for p in (".".join(parts), base) if p])
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                module.fromimports[alias.asname or alias.name] = target


def _entry_declarations(tree: ast.Module) -> list[str]:
    """Names in a module-level ``WORKER_ENTRY_POINTS = (...)`` tuple."""
    names: list[str] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "WORKER_ENTRY_POINTS" not in targets:
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str):
                    names.append(elt.value)
    return names


class CallGraph:
    """Name-level call graph over one lint run's modules."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, set[str]] = {}
        self.modules: dict[str, _ModuleInfo] = {}
        self.edges: dict[str, set[str]] = {}
        self.entry_points: set[str] = set()
        self.worker_reachable: set[str] = set()
        self._releases: set[str] | None = None

    # -- construction --------------------------------------------------- #

    @classmethod
    def build(cls, modules: Iterable[ModuleContext]) -> "CallGraph":
        graph = cls()
        collected: list[tuple[ModuleContext, _Collector]] = []
        for module in modules:
            name = module_name_for(module.relpath)
            collector = _Collector(name)
            collector.visit(module.tree)
            graph.functions.update(collector.functions)
            graph.classes.update(collector.classes)
            info = _ModuleInfo(name=name, aliases={}, fromimports={},
                               entry_names=[])
            _collect_imports(info, module.tree,
                             _is_package(module.relpath))
            info.entry_names = _entry_declarations(module.tree)
            graph.modules[name] = info
            collected.append((module, collector))

        for module, collector in collected:
            info = graph.modules[collector.module]
            for func in collector.functions.values():
                graph._resolve_function(func, info)

        graph._mark_entry_points()
        graph._mark_reachable()
        return graph

    def _resolve_function(self, func: FunctionInfo,
                          info: _ModuleInfo) -> None:
        var_types = self._local_class_vars(func, info)
        targets: set[str] = set()
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not name:
                continue
            func.calls.append(name)
            resolved = self._resolve(name, func, info, var_types)
            if resolved is not None:
                targets.add(resolved)
            if (name.rsplit(".", 1)[-1] in SUBMIT_NAMES and node.args
                    and isinstance(node.args[0], ast.Name)):
                entry = self._resolve(node.args[0].id, func, info,
                                      var_types)
                if entry is not None:
                    self.entry_points.add(entry)
        self.edges[func.qualname] = targets

    def _local_class_vars(self, func: FunctionInfo,
                          info: _ModuleInfo) -> dict[str, str]:
        """``x = KnownClass(...)`` locals → class qualname."""
        out: dict[str, str] = {}
        for node in ast.walk(func.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            ctor = call_name(node.value)
            qual = self._resolve_class(ctor, func, info)
            if qual is not None:
                out[node.targets[0].id] = qual
        return out

    def _resolve_class(self, name: str, func: FunctionInfo,
                       info: _ModuleInfo) -> str | None:
        if "." in name:
            head, _, rest = name.partition(".")
            base = info.aliases.get(head) or info.fromimports.get(head)
            if base is not None:
                name = f"{base}.{rest}"
            return name if name in self.classes else None
        local = f"{info.name}.{name}"
        if local in self.classes:
            return local
        target = info.fromimports.get(name)
        if target is not None and target in self.classes:
            return target
        return None

    def _resolve(self, dotted: str, func: FunctionInfo,
                 info: _ModuleInfo,
                 var_types: dict[str, str] | None = None) -> str | None:
        """Resolve a dotted call name to a function qualname, or None."""
        var_types = var_types or {}
        parts = dotted.split(".")
        head = parts[0]

        if len(parts) == 1:
            # Nested scope chain: inner defs shadow module level.
            scope: str | None = func.parent
            while scope is not None:
                cand = f"{scope}.{head}"
                if cand in self.functions:
                    return cand
                scope = self.functions[scope].parent \
                    if scope in self.functions else None
            cand = f"{info.name}.{head}"
            if cand in self.functions:
                return cand
            if cand in self.classes:
                return self._ctor(cand)
            target = info.fromimports.get(head)
            if target is not None:
                if target in self.functions:
                    return target
                if target in self.classes:
                    return self._ctor(target)
            return None

        if head == "self" and func.cls is not None and len(parts) == 2:
            cand = f"{func.cls}.{parts[1]}"
            return cand if cand in self.functions else None

        if head in var_types and len(parts) == 2:
            cand = f"{var_types[head]}.{parts[1]}"
            return cand if cand in self.functions else None

        rest = ".".join(parts[1:])
        for base in (info.aliases.get(head), info.fromimports.get(head)):
            if base is None:
                continue
            cand = f"{base}.{rest}"
            if cand in self.functions:
                return cand
            if cand in self.classes:
                return self._ctor(cand)
        if dotted in self.functions:
            return dotted
        return None

    def _ctor(self, class_qual: str) -> str | None:
        cand = f"{class_qual}.__init__"
        return cand if cand in self.functions else None

    def _mark_entry_points(self) -> None:
        for info in self.modules.values():
            for name in info.entry_names:
                qual = f"{info.name}.{name}"
                if qual in self.functions:
                    self.entry_points.add(qual)

    def _mark_reachable(self) -> None:
        seen = set(self.entry_points)
        frontier = list(seen)
        while frontier:
            qual = frontier.pop()
            for callee in self.edges.get(qual, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        self.worker_reachable = seen

    # -- queries -------------------------------------------------------- #

    def functions_in(self, module_name: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values()
                if f.module == module_name]

    def is_worker_reachable(self, qualname: str) -> bool:
        return qualname in self.worker_reachable

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def releases_transitively(self, qualname: str) -> bool:
        """Does ``qualname`` (or anything it reaches) make a
        detach/close/abort/finalize call?"""
        if self._releases is None:
            releasing = {
                qual for qual, func in self.functions.items()
                if any(c.rsplit(".", 1)[-1] in RELEASE_NAMES
                       for c in func.calls)}
            # Propagate release-ness backwards to callers (fixpoint —
            # the graphs are small, a few hundred nodes).
            changed = True
            while changed:
                changed = False
                for qual, targets in self.edges.items():
                    if qual in releasing:
                        continue
                    if targets & releasing:
                        releasing.add(qual)
                        changed = True
            self._releases = releasing
        return qualname in self._releases
