"""Strict-typing and generic-lint gates: thin wrappers over mypy / ruff.

The domain rules live in :mod:`repro.analysis.rules`; mypy and ruff
cover what a bespoke pass should not reimplement (type flow, undefined
names).  Both tools are *optional* dependencies (the ``lint`` extra):
when one is not importable the gate reports ``skipped`` instead of
failing, so `python -m repro.analysis --typing` degrades gracefully on a
bare install while CI — which installs the extra — gets the full gate.

Configuration lives in ``pyproject.toml`` (``[tool.mypy]`` is strict
mode plus documented per-module relaxations; ``[tool.ruff]`` is the
narrow syntax/undefined-name tier) so local runs match CI exactly.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from dataclasses import dataclass


@dataclass(frozen=True)
class GateResult:
    """Outcome of one external gate run."""

    name: str
    skipped: bool
    returncode: int
    output: str

    @property
    def ok(self) -> bool:
        return self.skipped or self.returncode == 0


def _run_tool(name: str, module: str, argv: list[str]) -> GateResult:
    if importlib.util.find_spec(module) is None:
        return GateResult(name=name, skipped=True, returncode=0,
                          output=f"{name}: skipped ({module} is not "
                                 "installed; `pip install repro[lint]`)")
    # repro: unguarded-load(developer-tooling shell-out; no kernel bit-identity contract applies)
    proc = subprocess.run([sys.executable, "-m", module, *argv],
                          capture_output=True, text=True)
    output = (proc.stdout + proc.stderr).strip()
    return GateResult(name=name, skipped=False,
                      returncode=proc.returncode, output=output)


def run_mypy_gate() -> GateResult:
    """``mypy --strict`` over the typed packages (config in pyproject)."""
    return _run_tool("mypy", "mypy", ["--strict"])


def run_ruff_gate(paths: list[str]) -> GateResult:
    """``ruff check`` with the pyproject configuration."""
    return _run_tool("ruff", "ruff", ["check", *paths])
