"""The exactness rules: this codebase's correctness invariants as AST checks.

Every rule encodes an invariant that a shipped bug (see ``CHANGES.md``
and ``docs/development.md``) has already violated once.  Rules are
deliberately *module-local and syntactic*: they run on one parsed file
with no type inference, so they are fast, deterministic, and cheap to
reason about — the price is that each one is a heuristic for the
semantic invariant it guards, with a typed pragma
(:mod:`repro.analysis.pragmas`) as the audited escape hatch.

Per-rule scope (``applies_to``) is part of the rule, not the driver:
e.g. ``RPR002`` exempts test modules because bit-identity *assertions*
in tests are exact float equality on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.loader import ModuleContext

__all__ = ["Rule", "ALL_RULES", "rule_codes", "rules_for_module"]


class Rule:
    """Base per-module rule: subclass, set the metadata, implement check."""

    code: str = "RPR000"
    name: str = "base"
    #: The pragma tag that suppresses this rule at a site.
    pragma_tag: str = ""
    summary: str = ""

    def applies_to(self, module: ModuleContext) -> bool:
        return True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=self.code, message=message)


def _call_name(node: ast.Call) -> str:
    """Dotted-ish name of a call target: ``np.hypot``, ``sqrt``, ..."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        parts = [func.attr]
        value = func.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
        return ".".join(reversed(parts))
    return ""


def _is_square(node: ast.expr) -> bool:
    """``x * x`` or ``x ** 2`` for a structurally identical ``x``."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return ast.dump(node.left) == ast.dump(node.right)
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow)
            and isinstance(node.right, ast.Constant)
            and node.right.value == 2):
        return True
    return False


def _is_sum_of_squares(node: ast.expr) -> bool:
    return (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)
            and _is_square(node.left) and _is_square(node.right))


class MixedDistanceIdioms(Rule):
    """RPR001 — ``hypot`` and ``sqrt(dx*dx + dy*dy)`` in one module.

    ``math.hypot`` is correctly rounded as a single operation;
    ``sqrt(dx*dx + dy*dy)`` rounds the multiplies and the add separately.
    The two disagree in the last ulp for some inputs — which is exactly
    how the PR-1 adjacency builders diverged and broke region
    bit-identity.  Either form is fine *alone*; a module mixing both is
    one refactor away from comparing distances produced by different
    rounding pipelines.
    """

    code = "RPR001"
    name = "mixed-distance-idioms"
    pragma_tag = "distance-form"
    summary = ("module mixes hypot and sqrt(dx*dx+dy*dy) distance forms "
               "(bit-identity hazard)")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        hypot_sites: list[ast.Call] = []
        sqrt_sites: list[ast.Call] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            base = name.rsplit(".", 1)[-1]
            if base == "hypot":
                hypot_sites.append(node)
            elif (base == "sqrt" and len(node.args) == 1
                    and _is_sum_of_squares(node.args[0])):
                sqrt_sites.append(node)
        if not hypot_sites or not sqrt_sites:
            return
        for site in sqrt_sites:
            if module.suppressed(site.lineno, self.pragma_tag):
                continue
            yield self.finding(
                module, site,
                "sqrt(dx*dx + dy*dy) here, but this module also computes "
                "distance with hypot: the two round differently in the "
                "last ulp (the PR-1 adjacency divergence). Use one form "
                "per module, or mark the audited site with "
                "`# repro: distance-form(<reason>)`")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    # -0.0, +1.5 ... : unary op around a float literal
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.operand, ast.Constant)
            and type(node.operand.value) is float)


class FloatEquality(Rule):
    """RPR002 — ``==``/``!=`` against a float literal outside audited sites.

    Tolerance-based comparison must route through the named helpers in
    :mod:`repro.geometry.tolerance`; raw equality on computed floats is
    how ``sampled_best == 0.0`` quietly ignored accumulated rounding
    dust in ``core/verify.py``.  Test modules are exempt: bit-identity
    *assertions* (sharded vs single-process scores, compiled vs numpy
    kernels) are exact equality on purpose.
    """

    code = "RPR002"
    name = "float-equality"
    pragma_tag = "float-eq"
    summary = ("float ==/!= comparison outside the audited allowlist "
               "(route tolerance through repro.geometry.tolerance)")

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not (_is_float_literal(left) or _is_float_literal(right)):
                    continue
                if module.suppressed(node.lineno, self.pragma_tag):
                    continue
                yield self.finding(
                    module, node,
                    "float equality comparison: use float_eq/near_zero "
                    "from repro.geometry.tolerance, or audit the site "
                    "with `# repro: float-eq(<reason>)`")
                break


_WARNLIKE_ATTRS = frozenset({
    "warn", "warning", "error", "exception", "critical", "info",
    "debug", "log",
})


class SwallowedExceptions(Rule):
    """RPR003 — bare/broad handlers that swallow silently.

    ``except Exception: pass``-style handlers hid compiled-kernel load
    failures behind a quiet multi-x slowdown (``index/_ckernel.py``).  A
    broad handler is acceptable only when it re-raises, logs/warns, or
    carries an explicit ``# repro: fallback(<reason>)`` pragma.
    """

    code = "RPR003"
    name = "swallowed-exceptions"
    pragma_tag = "fallback"
    summary = ("bare/broad except swallows without re-raise, logging, "
               "or a fallback pragma")

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        def broad(expr: ast.expr) -> bool:
            return (isinstance(expr, ast.Name)
                    and expr.id in ("Exception", "BaseException"))

        if handler.type is None:
            return True
        if broad(handler.type):
            return True
        return (isinstance(handler.type, ast.Tuple)
                and any(broad(el) for el in handler.type.elts))

    @staticmethod
    def _handles_visibly(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name.rsplit(".", 1)[-1] in _WARNLIKE_ATTRS:
                    return True
        return False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if self._handles_visibly(node):
                continue
            # The pragma may sit on the except line, just above it, or on
            # the first line of the handler body.
            body_line = node.body[0].lineno if node.body else node.lineno
            if (module.suppressed(node.lineno, self.pragma_tag)
                    or module.suppressed(body_line, self.pragma_tag)):
                continue
            yield self.finding(
                module, node,
                "broad except handler swallows silently: catch the "
                "specific errors, re-raise, warn naming the fallback, or "
                "mark with `# repro: fallback(<reason>)`")


_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})


class MutableDefaults(Rule):
    """RPR004 — mutable default argument values.

    A ``def f(x, cache={})`` default is one shared object across every
    call — state leaks between solves, the classic Python footgun.  Use
    ``None`` plus an in-body default.
    """

    code = "RPR004"
    name = "mutable-defaults"
    pragma_tag = "mutable-default"
    summary = "mutable default argument (shared across calls)"

    @staticmethod
    def _is_mutable(expr: ast.expr | None) -> bool:
        if expr is None:
            return False
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in _MUTABLE_CTORS)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            if not any(self._is_mutable(d) for d in defaults):
                continue
            if module.suppressed(node.lineno, self.pragma_tag):
                continue
            label = getattr(node, "name", "<lambda>")
            yield self.finding(
                module, node,
                f"mutable default argument in {label!r}: the default is "
                "one object shared by every call; use None and assign "
                "in the body")


_LOADER_CALLS = frozenset({
    "ctypes.CDLL", "ctypes.cdll.LoadLibrary", "ctypes.WinDLL",
    "subprocess.run", "subprocess.Popen", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
    # The _ckernel entry-point loaders: calling one of these triggers a
    # compile+dlopen on first use, so the calling module must document
    # the gate just like a direct ctypes load would.
    "load_quad_kernel", "load_knn_kernel",
})


class UnguardedKernelLoad(Rule):
    """RPR006 — ctypes/subprocess use without the ``REPRO_NO_CKERNEL`` gate.

    Every native-code escape (compiling or loading the quad or kNN
    kernel, whether via raw ctypes/subprocess or through the
    ``load_quad_kernel`` / ``load_knn_kernel`` entry points) must be
    skippable via ``REPRO_NO_CKERNEL=1`` so the pure-numpy path stays
    fully testable; a load site in a module that never consults the gate
    cannot be turned off.  Test modules are exempt (they drive the CLI
    via subprocess).
    """

    code = "RPR006"
    name = "unguarded-kernel-load"
    pragma_tag = "unguarded-load"
    summary = ("ctypes/subprocess load not guarded by the "
               "REPRO_NO_CKERNEL gate")

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        gated = any("REPRO_NO_CKERNEL" in line for line in module.lines)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in _LOADER_CALLS:
                continue
            if gated:
                continue
            if module.suppressed(node.lineno, self.pragma_tag):
                continue
            yield self.finding(
                module, node,
                f"{_call_name(node)} in a module that never consults "
                "REPRO_NO_CKERNEL: native loads must be gated so the "
                "numpy path stays reachable, or mark with "
                "`# repro: unguarded-load(<reason>)`")


_DTYPE_CTORS = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "ones", "empty",
    "full", "arange", "linspace", "fromiter",
})


class ImplicitArrayDtype(Rule):
    """RPR007 — numpy construction without ``dtype=`` in index/engine/store.

    The sharded engine's bit-identity contract assumes float64
    everywhere; a constructor left to infer its dtype can silently pick
    int64 (``arange``) or whatever the inputs coerce to, and a float32
    or integer array crossing a shard boundary breaks score identity.
    Scoped to ``repro/index``, ``repro/engine`` and ``repro/store`` —
    the packages under that contract (a store buffer's layout is
    8-byte-element by definition; an inferred dtype there corrupts every
    consumer's views at once).
    """

    code = "RPR007"
    name = "implicit-array-dtype"
    pragma_tag = "dtype"
    summary = ("numpy array construction without explicit dtype= in "
               "repro.index / repro.engine / repro.store")

    def applies_to(self, module: ModuleContext) -> bool:
        rel = module.relpath
        return ("repro/index" in rel or "repro/engine" in rel
                or "repro/store" in rel)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            prefix, _, base = name.rpartition(".")
            if prefix not in ("np", "numpy") or base not in _DTYPE_CTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if module.suppressed(node.lineno, self.pragma_tag):
                continue
            yield self.finding(
                module, node,
                f"np.{base} without explicit dtype=: inferred dtypes "
                "break the float64 bit-identity contract across shards; "
                "pass dtype= or mark with `# repro: dtype(<reason>)`")


#: Registration order is report order for same-line findings.
ALL_RULES: tuple[Rule, ...] = (
    MixedDistanceIdioms(),
    FloatEquality(),
    SwallowedExceptions(),
    MutableDefaults(),
    UnguardedKernelLoad(),
    ImplicitArrayDtype(),
)


def rule_codes() -> tuple[str, ...]:
    """All per-module rule codes, sorted (RPR0xx and RPR1xx families)."""
    return tuple(sorted(rule.code for rule in all_rules()))


def all_rules() -> tuple[Rule, ...]:
    """The combined registry: module-local RPR0xx + context RPR1xx.

    Imported lazily — :mod:`repro.analysis.concurrency_rules` imports
    this module for the :class:`Rule` base, so a top-level import here
    would be circular.
    """
    from repro.analysis.concurrency_rules import CONTEXT_RULES
    return ALL_RULES + CONTEXT_RULES


def rules_for_module(module: ModuleContext,
                     select: Iterable[str] | None = None,
                     ignore: Iterable[str] | None = None,
                     rules: Iterable[Rule] | None = None) -> list[Rule]:
    """The rules that apply to ``module`` after select/ignore filtering.

    ``rules`` overrides the registry being filtered (the driver passes
    the combined RPR0xx+RPR1xx set; default stays the module-local
    rules for backwards compatibility).
    """
    selected = set(select) if select else None
    ignored = set(ignore or ())
    pool = tuple(rules) if rules is not None else ALL_RULES
    return [rule for rule in pool
            if (selected is None or rule.code in selected)
            and rule.code not in ignored
            and rule.applies_to(module)]
