"""Exactness linter: the codebase's correctness invariants as AST rules.

MaxFirst's headline guarantee is exactness — quadtree descent, sharded
engine, and compiled kernel must return bit-identical optimal regions —
and every correctness escape shipped so far was an instance of a
*statically detectable* pattern.  This package is the mechanical guard:

========  ===================  ===========================================
code      name                 invariant (motivating bug in parentheses)
========  ===================  ===========================================
RPR001    mixed-distance-      one distance-rounding pipeline per module
          idioms               (PR-1 ``hypot`` vs ``sqrt`` adjacency
                               divergence)
RPR002    float-equality       tolerance routes through
                               :mod:`repro.geometry.tolerance`
                               (``sampled_best == 0.0`` in verify)
RPR003    swallowed-           broad handlers re-raise, warn, or carry
          exceptions           ``# repro: fallback(...)`` (silent kernel
                               load failures)
RPR004    mutable-defaults     no shared-object default arguments
RPR005    registry-drift       registry ↔ docs/api.md ↔ CLI ↔ tests stay
                               in sync (undocumented shard semantics)
RPR006    unguarded-kernel-    every native load honours
          load                 ``REPRO_NO_CKERNEL``
RPR007    implicit-array-      explicit ``dtype=`` in index/engine/store
          dtype                (float64 bit-identity across shards)
========  ===================  ===========================================

The RPR101–RPR106 family (:mod:`repro.analysis.concurrency_rules`)
extends the guard *interprocedurally*: a module-level call graph
(:mod:`repro.analysis.callgraph`) marks everything reachable from the
pool worker entry points, and the rules police worker-side module-state
mutation (RPR101), global-singleton RNGs (RPR102), set-ordered
accumulation (RPR103), store handle lifecycles (RPR104), unpicklable
pool submissions (RPR105), and environment reads outside the audited
config seams (RPR106).  The static RPR104 shape check is backed at
runtime by ``REPRO_SANITIZE=1`` (:mod:`repro.store.sanitize`).

Run it as ``python -m repro.analysis [paths]``; see
``docs/development.md`` for the pragma syntax and the baseline
shrink-only policy.  The companion gates — ``mypy --strict`` over
``repro.geometry``/``repro.core``/``repro.engine``/``repro.obs``/
``repro.store`` and a narrow ``ruff``
tier — are configured in ``pyproject.toml`` and wired into the same CI
job.
"""

from repro.analysis.baseline import (
    load_baseline,
    split_against_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.linter import lint_file, lint_paths
from repro.analysis.rules import ALL_RULES, all_rules, rule_codes

__all__ = [
    "ALL_RULES",
    "all_rules",
    "Finding",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "rule_codes",
    "split_against_baseline",
    "write_baseline",
]
