"""Exactness linter: the codebase's correctness invariants as AST rules.

MaxFirst's headline guarantee is exactness — quadtree descent, sharded
engine, and compiled kernel must return bit-identical optimal regions —
and every correctness escape shipped so far was an instance of a
*statically detectable* pattern.  This package is the mechanical guard:

========  ===================  ===========================================
code      name                 invariant (motivating bug in parentheses)
========  ===================  ===========================================
RPR001    mixed-distance-      one distance-rounding pipeline per module
          idioms               (PR-1 ``hypot`` vs ``sqrt`` adjacency
                               divergence)
RPR002    float-equality       tolerance routes through
                               :mod:`repro.geometry.tolerance`
                               (``sampled_best == 0.0`` in verify)
RPR003    swallowed-           broad handlers re-raise, warn, or carry
          exceptions           ``# repro: fallback(...)`` (silent kernel
                               load failures)
RPR004    mutable-defaults     no shared-object default arguments
RPR005    registry-drift       registry ↔ docs/api.md ↔ CLI ↔ tests stay
                               in sync (undocumented shard semantics)
RPR006    unguarded-kernel-    every native load honours
          load                 ``REPRO_NO_CKERNEL``
RPR007    implicit-array-      explicit ``dtype=`` in index/engine/store
          dtype                (float64 bit-identity across shards)
========  ===================  ===========================================

Run it as ``python -m repro.analysis [paths]``; see
``docs/development.md`` for the pragma syntax and the baseline
shrink-only policy.  The companion gates — ``mypy --strict`` over
``repro.geometry``/``repro.core``/``repro.engine``/``repro.obs``/
``repro.store`` and a narrow ``ruff``
tier — are configured in ``pyproject.toml`` and wired into the same CI
job.
"""

from repro.analysis.baseline import (
    load_baseline,
    split_against_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.linter import lint_file, lint_paths
from repro.analysis.rules import ALL_RULES, rule_codes

__all__ = [
    "ALL_RULES",
    "Finding",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "rule_codes",
    "split_against_baseline",
    "write_baseline",
]
