"""Audit pragmas: ``# repro: <tag>(<reason>)``.

A pragma is this codebase's equivalent of ``noqa`` — except it is *typed*
(each tag suppresses exactly one rule, never a blanket waiver) and it
*requires a reason*: a pragma with empty parentheses is itself reported
as malformed, because the whole point is that every suppressed site
carries its audit rationale in-line.

A pragma applies to the line it sits on, or — when written as a comment
line of its own — to the following line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: tag → rule code it suppresses.
PRAGMA_TAGS: dict[str, str] = {
    "distance-form": "RPR001",
    "float-eq": "RPR002",
    "fallback": "RPR003",
    "mutable-default": "RPR004",
    "registry-drift": "RPR005",
    "unguarded-load": "RPR006",
    "dtype": "RPR007",
}

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<tag>[a-z][a-z0-9-]*)\s*\(\s*(?P<reason>[^)]*?)\s*\)")


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma occurrence."""

    line: int  # 1-based source line the comment sits on
    tag: str
    reason: str

    @property
    def code(self) -> str | None:
        """The rule code this pragma suppresses (None when unknown)."""
        return PRAGMA_TAGS.get(self.tag)


def parse_pragmas(lines: list[str]) -> list[Pragma]:
    """All ``# repro:`` pragmas in ``lines`` (1-based line numbers)."""
    found: list[Pragma] = []
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        for match in _PRAGMA_RE.finditer(text):
            found.append(Pragma(line=lineno, tag=match.group("tag"),
                                reason=match.group("reason")))
    return found
