"""Audit pragmas: ``# repro: <tag>(<reason>)``.

A pragma is this codebase's equivalent of ``noqa`` — except it is *typed*
(each tag suppresses exactly one rule, never a blanket waiver) and it
*requires a reason*: a pragma with empty parentheses is itself reported
as malformed, because the whole point is that every suppressed site
carries its audit rationale in-line.

Accepted grammar (also documented in ``docs/development.md``):

* ``# repro: <tag>(<reason>)`` — tag is lowercase ``[a-z][a-z0-9-]*``;
  the reason may contain anything but a close-paren.
* The close-paren may be omitted when the reason runs to end of line —
  long rationales may therefore wrap across *comment* lines, with the
  continuation lines being plain comments.
* A pragma applies to the line it sits on, or — when written as a
  comment line of its own — to the following line.
* Several pragmas may share one line; each suppresses independently.
* Anything that *looks* like a pragma (``# repro: <word>...``) but does
  not parse — wrong tag charset, missing parentheses — is reported as
  RPR000 rather than silently ignored, so a typo cannot masquerade as a
  suppression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: tag → rule code it suppresses.
PRAGMA_TAGS: dict[str, str] = {
    "distance-form": "RPR001",
    "float-eq": "RPR002",
    "fallback": "RPR003",
    "mutable-default": "RPR004",
    "registry-drift": "RPR005",
    "unguarded-load": "RPR006",
    "dtype": "RPR007",
    "worker-state": "RPR101",
    "rng": "RPR102",
    "iter-order": "RPR103",
    "store-lifecycle": "RPR104",
    "pool-pickle": "RPR105",
    "env-read": "RPR106",
}

#: A well-formed pragma.  The close-paren is optional so that long
#: reasons may run to end-of-line and continue on following comment
#: lines.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<tag>[a-z][a-z0-9-]*)\s*"
    r"\(\s*(?P<reason>[^)]*?)\s*(?:\)|$)")

#: Anything that *starts* like a pragma — used to report near-misses
#: (bad tag charset, missing parens) as malformed instead of silently
#: ignoring them.
_CANDIDATE_RE = re.compile(
    r"#\s*repro:\s*(?P<tag>[A-Za-z_][A-Za-z0-9_-]*)")


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma occurrence."""

    line: int  # 1-based source line the comment sits on
    tag: str
    reason: str
    malformed: bool = False  # looked like a pragma but did not parse

    @property
    def code(self) -> str | None:
        """The rule code this pragma suppresses (None when unknown)."""
        return PRAGMA_TAGS.get(self.tag)


def parse_pragmas(lines: list[str]) -> list[Pragma]:
    """All ``# repro:`` pragmas in ``lines`` (1-based line numbers).

    Well-formed pragmas come back with their tag and reason; text that
    starts like a pragma but fails the grammar comes back with
    ``malformed=True`` so the loader can report it as RPR000.
    """
    found: list[Pragma] = []
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        spans: list[tuple[int, int]] = []
        for match in _PRAGMA_RE.finditer(text):
            spans.append(match.span())
            found.append(Pragma(line=lineno, tag=match.group("tag"),
                                reason=match.group("reason")))
        for match in _CANDIDATE_RE.finditer(text):
            start = match.start()
            if any(lo <= start < hi for lo, hi in spans):
                continue
            found.append(Pragma(line=lineno, tag=match.group("tag"),
                                reason="", malformed=True))
    return found
