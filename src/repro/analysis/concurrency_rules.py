"""The RPR1xx family: concurrency/determinism rules with call-graph context.

The PR-3 exactness rules are module-local; these are not — each one
receives the lint run's :class:`~repro.analysis.callgraph.CallGraph` so
it can ask whether a function is **worker-reachable** (runs inside a
pool worker process) or whether a callee transitively releases a store
handle.  The shared motivation is the repo's bit-identity contract:
serial, sharded, pooled, and streamed solves must return bit-identical
results, and every rule here encodes a way concurrent code can silently
break that (or leak the resources the concurrency is built on).

========  ===================  ==========================================
code      name                 invariant
========  ===================  ==========================================
RPR101    worker-state         worker-reachable code never mutates
                               module/global state (each worker mutates
                               its own copy; results depend on schedule)
RPR102    global-rng           no legacy ``np.random.*`` / bare
                               ``random.*`` singleton RNG in solver paths
RPR103    unordered-iter       no set iteration feeding sums, heaps, or
                               result lists (hash order breaks float
                               accumulation identity)
RPR104    store-lifecycle      publish/writer/attach acquire sites
                               release (or escape) on every exit path
RPR105    pool-pickle          no lambdas / nested functions / bound
                               methods submitted to a pool
RPR106    env-read             env vars are read only in the audited
                               config seams
========  ===================  ==========================================

Deliberate per-process state (the pool initializer's bound cell, the
backend singleton cache) carries audited pragmas — the rules exist to
make the *next* such site a conscious, documented decision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (RELEASE_NAMES, SUBMIT_NAMES,
                                      CallGraph, FunctionInfo, call_name,
                                      module_name_for)
from repro.analysis.findings import Finding
from repro.analysis.loader import ModuleContext
from repro.analysis.rules import Rule

__all__ = ["ContextRule", "CONTEXT_RULES"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class ContextRule(Rule):
    """A rule that needs the run's call graph alongside the module."""

    def check(self, module: ModuleContext,  # type: ignore[override]
              graph: CallGraph | None = None) -> Iterator[Finding]:
        raise NotImplementedError


def _assigned_module_names(tree: ast.Module) -> set[str]:
    """Names bound by assignment at module top level."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for el in ast.walk(target):
                    if isinstance(el, ast.Name):
                        names.add(el.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _locally_bound(func: ast.AST) -> set[str]:
    """Parameter and local-store names of one function (no nesting)."""
    assert isinstance(func, _FUNC_NODES)
    args = func.args
    bound = {a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, _FUNC_NODES) and node is not func:
            continue  # shallow: nested defs have their own scope
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound - declared_global


class WorkerStateMutation(ContextRule):
    """RPR101 — mutation of module/global state in worker-reachable code.

    A worker that rebinds a module global (``global X; X = ...``) or
    stores through one (``CACHE[key] = ...``, ``STATE.attr = ...``)
    mutates its *own* process's copy: the parent never sees it, other
    workers never see it, and whether two runs agree depends on which
    worker ran which task.  Worker state must flow through job tuples
    and return values; deliberate per-process state (the pool
    initializer) carries a ``# repro: worker-state(<reason>)`` audit.
    """

    code = "RPR101"
    name = "worker-state"
    pragma_tag = "worker-state"
    summary = ("module/global state mutated in worker-reachable code "
               "(invisible to the parent; schedule-dependent)")

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test

    def check(self, module: ModuleContext,
              graph: CallGraph | None = None) -> Iterator[Finding]:
        assert graph is not None
        module_names = _assigned_module_names(module.tree)
        mod = module_name_for(module.relpath)
        for info in graph.functions_in(mod):
            if not graph.is_worker_reachable(info.qualname):
                continue
            func = info.node
            assert isinstance(func, _FUNC_NODES)
            declared_global: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            local = _locally_bound(func)
            for node in ast.walk(func):
                if isinstance(node, _FUNC_NODES) and node is not func:
                    continue
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    for el in _flatten_targets(target):
                        finding = self._target_finding(
                            module, info, el, module_names,
                            declared_global, local)
                        if finding is not None:
                            yield finding

    def _target_finding(self, module: ModuleContext, info: FunctionInfo,
                        target: ast.expr, module_names: set[str],
                        declared_global: set[str],
                        local: set[str]) -> Finding | None:
        if isinstance(target, ast.Name):
            if target.id not in declared_global:
                return None
            site, what = target, f"global {target.id!r} is rebound"
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if not isinstance(base, ast.Name):
                return None
            name = base.id
            if name in local or name not in module_names:
                return None
            site = target
            what = f"module-level {name!r} is mutated in place"
        else:
            return None
        if module.suppressed(site.lineno, self.pragma_tag):
            return None
        return self.finding(
            module, site,
            f"{what} inside worker-reachable {info.name!r}: each worker "
            "mutates its own copy, so results depend on the task "
            "schedule; pass state through job tuples/returns or mark "
            "deliberate per-process state with "
            "`# repro: worker-state(<reason>)`")


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            yield from _flatten_targets(el)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


#: ``numpy.random`` attributes that are part of the seeded Generator
#: API (constructing one is fine; the legacy singleton functions are
#: not).
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})
#: ``random`` module attributes that construct an owned instance.
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom"})


class GlobalRng(ContextRule):
    """RPR102 — unseeded / global-singleton RNG use in solver paths.

    ``np.random.rand`` and friends draw from one process-global legacy
    singleton, and bare ``random.*`` from the stdlib's: two runs (or a
    serial run and a pool worker) consume the stream in different
    orders and diverge.  Randomness must come from an explicitly seeded
    ``np.random.default_rng(seed)`` (or ``random.Random(seed)``)
    plumbed through options — the pattern every dataset generator and
    test fixture here already follows.
    """

    code = "RPR102"
    name = "global-rng"
    pragma_tag = "rng"
    summary = ("legacy np.random.* / bare random.* singleton RNG "
               "(unseeded, process-global — breaks reproducibility)")

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test

    def check(self, module: ModuleContext,
              graph: CallGraph | None = None) -> Iterator[Finding]:
        random_aliases, from_random = self._random_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            message = self._violation(name, random_aliases, from_random)
            if message is None:
                continue
            if module.suppressed(node.lineno, self.pragma_tag):
                continue
            yield self.finding(module, node, message)

    @staticmethod
    def _random_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
        """(aliases of the stdlib random module, names imported from
        random/numpy.random that hit a global singleton)."""
        aliases: set[str] = set()
        singletons: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module in (
                    "random", "numpy.random"):
                ok = (_STDLIB_RANDOM_OK if node.module == "random"
                      else _NP_RANDOM_OK)
                for alias in node.names:
                    if alias.name not in ok:
                        singletons.add(alias.asname or alias.name)
        return aliases, singletons

    @staticmethod
    def _violation(name: str, random_aliases: set[str],
                   from_random: set[str]) -> str | None:
        parts = name.split(".")
        if len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
                "np", "numpy") and parts[-1] not in _NP_RANDOM_OK:
            return (f"legacy np.random.{parts[-1]} draws from the "
                    "process-global singleton: use "
                    "np.random.default_rng(seed) plumbed through "
                    "options, or mark with `# repro: rng(<reason>)`")
        if (len(parts) == 2 and parts[0] in random_aliases
                and parts[1] not in _STDLIB_RANDOM_OK):
            return (f"bare random.{parts[1]} uses the stdlib's global "
                    "singleton RNG: construct random.Random(seed) (or "
                    "np.random.default_rng), or mark with "
                    "`# repro: rng(<reason>)`")
        if len(parts) == 1 and parts[0] in from_random:
            return (f"{parts[0]} was imported from a global-singleton "
                    "RNG module: construct a seeded generator instead, "
                    "or mark with `# repro: rng(<reason>)`")
        return None


class UnorderedIteration(ContextRule):
    """RPR103 — set iteration feeding order-dependent accumulation.

    Float addition does not commute bit-for-bit, and heaps/result lists
    keep their insertion order — so iterating a ``set`` (hash order:
    arbitrary, salt- and history-dependent) into ``total += x``,
    ``heappush``, or ``out.append(...)`` makes the answer depend on the
    iteration order.  Sort the set first (``sorted(s)``) or accumulate
    into an order-insensitive structure.  Scoped to the exact-solver
    packages plus any worker-reachable function; dict iteration is
    exempt (insertion-ordered by language guarantee).
    """

    code = "RPR103"
    name = "unordered-iter"
    pragma_tag = "iter-order"
    summary = ("set iteration feeds a sum/heap/result list "
               "(hash order breaks bit-identity)")

    _SCOPED = ("repro/core", "repro/engine", "repro/index", "repro/store",
               "repro/geometry")

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test

    def _in_scope(self, module: ModuleContext) -> bool:
        return any(pkg in module.relpath for pkg in self._SCOPED)

    def check(self, module: ModuleContext,
              graph: CallGraph | None = None) -> Iterator[Finding]:
        assert graph is not None
        if self._in_scope(module):
            scopes: list[ast.AST] = [module.tree]
        else:
            mod = module_name_for(module.relpath)
            scopes = [info.node for info in graph.functions_in(mod)
                      if graph.is_worker_reachable(info.qualname)]
        seen: set[int] = set()
        for scope in scopes:
            set_names = self._set_locals(scope)
            for node in ast.walk(scope):
                if id(node) in seen:
                    continue
                seen.add(id(node))
                yield from self._check_node(module, node, set_names)

    @staticmethod
    def _set_locals(scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(scope):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _is_set_expr(node.value, ())):
                names.add(node.targets[0].id)
        return names

    def _check_node(self, module: ModuleContext, node: ast.AST,
                    set_names: set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For) and _is_set_expr(node.iter,
                                                      set_names):
            if self._accumulates(node):
                if not module.suppressed(node.lineno, self.pragma_tag):
                    yield self.finding(
                        module, node,
                        "iterating a set into an accumulator: hash "
                        "order is arbitrary, so the sum/heap/list "
                        "depends on it; iterate sorted(...) or mark "
                        "with `# repro: iter-order(<reason>)`")
        elif (isinstance(node, ast.Call)
                and call_name(node).rsplit(".", 1)[-1] in ("sum", "fsum")
                and node.args
                and _is_set_expr(node.args[0], set_names)):
            if not module.suppressed(node.lineno, self.pragma_tag):
                yield self.finding(
                    module, node,
                    "summing a set accumulates floats in hash order; "
                    "sum(sorted(...)) fixes the order, or mark with "
                    "`# repro: iter-order(<reason>)`")

    @staticmethod
    def _accumulates(loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Name)
                    and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult))):
                return True
            if isinstance(node, ast.Call):
                base = call_name(node).rsplit(".", 1)[-1]
                if base in ("heappush", "append"):
                    return True
        return False


def _is_set_expr(expr: ast.expr, set_names: tuple | set) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        return name in ("set", "frozenset")
    return isinstance(expr, ast.Name) and expr.id in set_names


#: Store acquire calls, by last dotted segment.
_OWNER_ACQUIRES = frozenset({"publish", "writer"})
_VIEW_ACQUIRES = frozenset({"attach", "attach_slice"})


class StoreLifecycle(ContextRule):
    """RPR104 — store acquire without a release on every exit path.

    ``publish``/``writer`` own a segment or file: the owner must be
    closed (or aborted/finalized) under ``finally``/``with``, or follow
    the abort-on-raise + finalize-on-success writer pattern, or escape
    to a caller who owns the lifecycle.  ``attach``/``attach_slice``
    cache views per process: a function that attaches and neither
    detaches (itself or via a callee — the call graph supplies that),
    nor hands the views out, pins mapped pages until someone else's
    rotation.  The per-function walk is ``with``/``finally``-aware;
    audited exceptions (the out-of-core planner's uncached memmap
    slices) carry ``# repro: store-lifecycle(<reason>)``.
    """

    code = "RPR104"
    name = "store-lifecycle"
    pragma_tag = "store-lifecycle"
    summary = ("store publish/writer/attach without release or escape "
               "on every exit path")

    def applies_to(self, module: ModuleContext) -> bool:
        if module.is_test:
            return False
        return any("repro.store" in line or "from repro import store"
                   in line for line in module.lines)

    def check(self, module: ModuleContext,
              graph: CallGraph | None = None) -> Iterator[Finding]:
        assert graph is not None
        mod = module_name_for(module.relpath)
        store_froms = self._store_fromimports(module.tree)
        for info in graph.functions_in(mod):
            func = info.node
            assert isinstance(func, _FUNC_NODES)
            yield from self._check_function(module, graph, info, func,
                                            store_froms)

    @staticmethod
    def _store_fromimports(tree: ast.Module) -> set[str]:
        """Bare names imported from the store package."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.ImportFrom) and node.module
                    and node.module.startswith("repro.store")):
                names.update(a.asname or a.name for a in node.names)
        return names

    def _check_function(self, module: ModuleContext, graph: CallGraph,
                        info: FunctionInfo, func: ast.AST,
                        store_froms: set[str]) -> Iterator[Finding]:
        acquires = []
        for node in ast.walk(func):
            if isinstance(node, _FUNC_NODES) and node is not func:
                continue
            if not isinstance(node, ast.Call):
                continue
            kind = self._acquire_kind(node, store_froms)
            if kind is not None:
                acquires.append((node, kind))
        if not acquires:
            return

        releases = self._release_sites(func)
        callee_releases = any(
            graph.releases_transitively(callee)
            for callee in graph.callees(info.qualname))
        protected_spans = self._protected_spans(func)

        for node, kind in acquires:
            if module.suppressed(node.lineno, self.pragma_tag):
                continue
            if self._is_protected(node, kind, func, releases,
                                  callee_releases, protected_spans):
                continue
            if kind == "owner":
                message = (
                    "store owner acquired here may leak its "
                    "segment/file on an exception path: close/abort it "
                    "under finally or with, return it to the caller, "
                    "or mark with `# repro: store-lifecycle(<reason>)`")
            else:
                message = (
                    "attached store views are never detached on this "
                    "path: cached attachments pin mapped pages until "
                    "another rotation; call detach(), hand the views "
                    "out, or mark with "
                    "`# repro: store-lifecycle(<reason>)`")
            yield self.finding(module, node, message)

    @staticmethod
    def _acquire_kind(node: ast.Call,
                      store_froms: set[str]) -> str | None:
        name = call_name(node)
        prefix, _, base = name.rpartition(".")
        if base in _OWNER_ACQUIRES:
            kind = "owner"
        elif base in _VIEW_ACQUIRES:
            kind = "view"
        else:
            return None
        if prefix:
            storeish = "store" in prefix.lower() or "backend" in \
                prefix.lower()
            return kind if storeish else None
        return kind if base in store_froms else None

    @staticmethod
    def _release_sites(func: ast.AST) -> dict[str, list[ast.Call]]:
        """Release calls in the function, split by structural position:
        ``finally`` bodies, broad except handlers, and the main path."""
        out: dict[str, list[ast.Call]] = {
            "finally": [], "handler": [], "main": []}
        finally_ids: set[int] = set()
        handler_ids: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        finally_ids.add(id(sub))
                for handler in node.handlers:
                    if StoreLifecycle._broad_handler(handler):
                        for sub in ast.walk(handler):
                            handler_ids.add(id(sub))
        for node in ast.walk(func):
            if isinstance(node, _FUNC_NODES) and node is not func:
                continue
            if not isinstance(node, ast.Call):
                continue
            if call_name(node).rsplit(".", 1)[-1] not in RELEASE_NAMES:
                continue
            if id(node) in finally_ids:
                out["finally"].append(node)
            elif id(node) in handler_ids:
                out["handler"].append(node)
            else:
                out["main"].append(node)
        return out

    @staticmethod
    def _broad_handler(handler: ast.ExceptHandler) -> bool:
        t = handler.type
        if t is None:
            return True
        return (isinstance(t, ast.Name)
                and t.id in ("Exception", "BaseException"))

    @staticmethod
    def _protected_spans(func: ast.AST) -> list[tuple[int, int]]:
        """Line spans of ``with`` context expressions and of ``try``
        bodies whose ``finally`` is present."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    spans.append((expr.lineno,
                                  getattr(expr, "end_lineno",
                                          expr.lineno)))
            elif isinstance(node, ast.Try) and node.finalbody:
                start = node.body[0].lineno if node.body else node.lineno
                end = max(getattr(stmt, "end_lineno", stmt.lineno)
                          for stmt in node.body)
                spans.append((start, end))
        return spans

    def _is_protected(self, node: ast.Call, kind: str, func: ast.AST,
                      releases: dict[str, list[ast.Call]],
                      callee_releases: bool,
                      protected_spans: list[tuple[int, int]]) -> bool:
        if self._escapes(node, kind, func):
            return True
        if kind == "view":
            return bool(releases["finally"] or releases["handler"]
                        or releases["main"]) or callee_releases
        # Owners: a finally-release covers any acquire inside (or
        # before) the protected try; a with-statement acquire manages
        # itself; the writer pattern releases in a broad handler AND on
        # the success path.
        line = node.lineno
        in_protected = any(lo <= line <= hi
                           for lo, hi in protected_spans)
        if releases["finally"] and (in_protected or self._precedes_try(
                node, func)):
            return True
        if any(lo <= line <= hi for lo, hi in protected_spans
               if not releases["finally"]):
            # acquire IS a with context expr (span match without a
            # finally nearby) — the with manages the lifecycle.
            return self._in_with_item(node, func)
        if releases["handler"] and releases["main"]:
            return True
        return self._in_with_item(node, func)

    @staticmethod
    def _precedes_try(node: ast.Call, func: ast.AST) -> bool:
        """Acquire assigned just before a try whose finally releases —
        the ``owner = publish(...); try: ... finally: owner.close()``
        idiom with the acquire outside the try body."""
        for t in ast.walk(func):
            if isinstance(t, ast.Try) and t.finalbody:
                if node.lineno <= t.lineno:
                    return True
        return False

    @staticmethod
    def _in_with_item(node: ast.Call, func: ast.AST) -> bool:
        for w in ast.walk(func):
            if not isinstance(w, (ast.With, ast.AsyncWith)):
                continue
            for item in w.items:
                for sub in ast.walk(item.context_expr):
                    if sub is node:
                        return True
        return False

    @staticmethod
    def _escapes(node: ast.Call, kind: str, func: ast.AST) -> bool:
        """Does the acquired object leave this function's custody?

        Return/yield of the call (or of the name it is assigned to),
        storage into an attribute/subscript, and — for owners — being
        passed on as a call argument all transfer the lifecycle to the
        caller/callee.
        """
        assigned: str | None = None
        for stmt in ast.walk(func):
            if (isinstance(stmt, ast.Assign) and stmt.value is node
                    and len(stmt.targets) == 1):
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    assigned = target.id
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True  # stored straight onto an object
            elif (isinstance(stmt, (ast.Return, ast.Yield))
                    and stmt.value is not None):
                for sub in ast.walk(stmt.value):
                    if sub is node:
                        return True
        if assigned is None:
            # Bare expression or argument: an owner passed directly to
            # a call escapes; a view consumed in place does not.
            if kind == "owner":
                for call in ast.walk(func):
                    if isinstance(call, ast.Call) and any(
                            sub is node for arg in call.args
                            for sub in ast.walk(arg)):
                        return True
            return False
        for stmt in ast.walk(func):
            if (isinstance(stmt, (ast.Return, ast.Yield))
                    and stmt.value is not None):
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name) and sub.id == assigned:
                        return True
            elif isinstance(stmt, ast.Assign):
                target = stmt.targets[0]
                if (isinstance(target, (ast.Attribute, ast.Subscript))
                        and any(isinstance(sub, ast.Name)
                                and sub.id == assigned
                                for sub in ast.walk(stmt.value))):
                    return True
            elif kind == "owner" and isinstance(stmt, ast.Call):
                if any(isinstance(sub, ast.Name) and sub.id == assigned
                       for arg in (*stmt.args,
                                   *(k.value for k in stmt.keywords))
                       for sub in ast.walk(arg)):
                    return True
        return False


class PoolPickle(ContextRule):
    """RPR105 — unpicklable callables submitted to a pool.

    ``submit``/``submit_call``/``apply_async`` pickle the callable by
    qualified name: a lambda, a function defined inside another
    function, or a bound method of an instance (``self.step``) either
    fails to pickle outright or drags the whole instance across the
    process boundary.  Worker entries must be module-level functions —
    the convention ``engine/pool.py`` declares with
    ``WORKER_ENTRY_POINTS``.
    """

    code = "RPR105"
    name = "pool-pickle"
    pragma_tag = "pool-pickle"
    summary = ("lambda / nested function / bound method passed to pool "
               "submission (not picklable by qualified name)")

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test

    def check(self, module: ModuleContext,
              graph: CallGraph | None = None) -> Iterator[Finding]:
        module_aliases = self._module_aliases(module.tree)
        for func in ast.walk(module.tree):
            if not isinstance(func, _FUNC_NODES):
                continue
            nested = {sub.name for sub in ast.walk(func)
                      if isinstance(sub, _FUNC_NODES) and sub is not func}
            for node in ast.walk(func):
                if isinstance(node, _FUNC_NODES) and node is not func:
                    continue
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                if call_name(node).rsplit(".", 1)[-1] not in SUBMIT_NAMES:
                    continue
                first = node.args[0]
                reason = self._unpicklable(first, nested, module_aliases)
                if reason is None:
                    continue
                if module.suppressed(node.lineno, self.pragma_tag):
                    continue
                yield self.finding(
                    module, node,
                    f"{reason} submitted to a pool: worker entries must "
                    "be module-level functions (picklable by qualified "
                    "name), or mark with "
                    "`# repro: pool-pickle(<reason>)`")

    @staticmethod
    def _module_aliases(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                # `from x import y` may bind a submodule; treat the
                # bound name as a possible module alias so `y.fn` is
                # not misread as a bound method.
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _unpicklable(arg: ast.expr, nested: set[str],
                     module_aliases: set[str]) -> str | None:
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if isinstance(arg, ast.Name) and arg.id in nested:
            return f"locally-defined function {arg.id!r}"
        if isinstance(arg, ast.Attribute):
            base = arg.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name) and base.id in module_aliases:
                return None  # module attribute: picklable by name
            label = (f"{base.id}.{arg.attr}"
                     if isinstance(base, ast.Name) else arg.attr)
            return f"bound method {label!r}"
        return None


#: Functions allowed to read the environment: the audited config seams.
_ENV_SEAM_FUNCTIONS = frozenset({
    "resolve_store_name",  # repro.store — REPRO_STORE precedence
    "store_dir",  # repro.store.memmap — REPRO_STORE_DIR
    "get_profile",  # repro.bench.config — REPRO_SCALE
})
#: Modules allowed to read the environment anywhere (whole-module
#: seams: the kernel loader's cache/CC/gate plumbing, the sanitizer's
#: own switch).
_ENV_SEAM_MODULES = ("repro/index/_ckernel.py", "repro/store/sanitize.py")

_ENV_CALLS = frozenset({"os.environ.get", "environ.get", "os.getenv",
                        "getenv"})


class EnvRead(ContextRule):
    """RPR106 — environment reads outside the audited config seams.

    Every env var is an invisible input: it changes behaviour without
    appearing in options, reports, or job tuples, and a worker spawned
    under a different environment silently diverges from its parent.
    Reads are confined to the audited seams (``resolve_store_name``,
    ``store_dir``, ``get_profile``, the ``_ckernel`` loader, the
    sanitizer switch) where docs and tests pin the precedence; any new
    knob either threads through options/config or carries a
    ``# repro: env-read(<reason>)`` audit.
    """

    code = "RPR106"
    name = "env-read"
    pragma_tag = "env-read"
    summary = ("environment variable read outside the audited config "
               "seams")

    def applies_to(self, module: ModuleContext) -> bool:
        if module.is_test:
            return False
        return not any(module.relpath.endswith(m)
                       for m in _ENV_SEAM_MODULES)

    def check(self, module: ModuleContext,
              graph: CallGraph | None = None) -> Iterator[Finding]:
        seam_spans = []
        for node in ast.walk(module.tree):
            if (isinstance(node, _FUNC_NODES)
                    and node.name in _ENV_SEAM_FUNCTIONS):
                seam_spans.append((node.lineno,
                                   getattr(node, "end_lineno",
                                           node.lineno)))
        for node in ast.walk(module.tree):
            site = self._env_read(node)
            if site is None:
                continue
            if any(lo <= site.lineno <= hi for lo, hi in seam_spans):
                continue
            if module.suppressed(site.lineno, self.pragma_tag):
                continue
            yield self.finding(
                module, site,
                "environment read outside the audited config seams: an "
                "env var is an invisible input workers may not share; "
                "thread it through options/config, or mark with "
                "`# repro: env-read(<reason>)`")

    @staticmethod
    def _env_read(node: ast.AST) -> ast.expr | None:
        if isinstance(node, ast.Call) and call_name(node) in _ENV_CALLS:
            return node
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "environ"):
            return node
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "environ"):
            return node
        return None


#: Registration order is report order for same-line findings.
CONTEXT_RULES: tuple[ContextRule, ...] = (
    WorkerStateMutation(),
    GlobalRng(),
    UnorderedIteration(),
    StoreLifecycle(),
    PoolPickle(),
    EnvRead(),
)
