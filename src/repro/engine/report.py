"""Structured run reports: per-stage timings plus solver counters.

Every engine-routed solve produces a :class:`RunReport` — the uniform
instrumentation record the CLI surfaces via ``--report`` and the bench
runner attaches to its rows.  The report is plain data (dicts, floats,
ints) so ``as_dict()`` round-trips through JSON without custom encoders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Canonical stage order of the engine pipeline.  A pipeline may skip
#: stages that do not apply (a degenerate instance skips everything after
#: ``build_nlcs``), but never reorders them.
STAGES = ("prepare", "build_nlcs", "index", "search", "refine", "finalize")


@dataclass
class RunReport:
    """Instrumentation record of one engine-routed solve.

    Attributes
    ----------
    solver:
        Registry name the run was resolved under.
    stages:
        Ordered mapping ``stage name -> wall-clock seconds``; insertion
        order follows :data:`STAGES`.
    counters:
        The solver's work counters (MaxFirst's Phase I stats, MaxOverlap's
        pair/coverage counts, ...), flattened to scalars.
    meta:
        Instance and configuration facts: sizes, ``k``, solver options,
        shard layout — anything that explains the timings.
    gauges:
        Level/high-water measurements from the observability registry
        (peak RSS, numpy scratch bytes).  Unlike ``counters`` these are
        *not* deterministic and never enter the CI perf gate.
    score:
        The solve's optimal score (``None`` until finalize).
    """

    solver: str
    stages: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    score: float | None = None

    def record_stage(self, name: str, seconds: float) -> None:
        """Add (or extend) one stage's wall-clock time."""
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.stages.values()))

    def as_dict(self) -> dict:
        """Plain-data view (JSON-serialisable)."""
        return {
            "solver": self.solver,
            "score": self.score,
            "total_seconds": self.total_seconds,
            "stages": dict(self.stages),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "meta": dict(self.meta),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, default=str)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def summary(self) -> str:
        """One-line-per-stage human-readable digest."""
        lines = [f"RunReport[{self.solver}] score={self.score} "
                 f"total={self.total_seconds:.4f}s"]
        for name, seconds in self.stages.items():
            lines.append(f"  {name:>10s}: {seconds:.4f}s")
        if self.counters:
            parts = ", ".join(f"{k}={v}" for k, v in self.counters.items())
            lines.append(f"  counters: {parts}")
        return "\n".join(lines)
