"""Tile-sharded parallel Phase I.

Partitions the data rectangle into a grid of tiles, assigns each tile the
NLCs whose disks intersect it (halo inclusion via the batched
:meth:`~repro.index.circleset.CircleSet.rects_intersecting` predicate),
runs MaxFirst's Phase I independently per tile, and merges the accepted
quadrants before a single Phase II pass grows each distinct region once.

Why this is exact
-----------------
Every optimal region is full-dimensional, so its interior meets the
interior of at least one tile; the shard owning that tile accepts a
consistent quadrant with exactly the region's cover.  A quadrant's score
bounds are sums over index-sorted NLC subsets, and every shard classifies
with the *global* space's graze tolerance, so a cover discovered in a
shard produces bit-for-bit the same ``m̂in`` sum the single-process run
computes for it — the merged optimal score and the deduplicated cover set
are identical to the one-process ``hotpath=batched`` run (asserted by
``benchmarks/bench_engine_shards.py`` on the fig11 instances).

Shards exchange a global lower bound (the best proven ``m̂in`` anywhere):
each worker seeds ``MaxMin`` with the bound at start and polls/publishes
it every ``sync_interval`` pops, so losing shards terminate early via
Theorem 2.  Bounds are only ever values witnessed by a real quadrant in
some shard, which keeps the pruning sound; winners are never pruned
because Theorem 2's cut is strict below the tie tolerance.

Execution modes
---------------
``"pool"`` (alias ``"process"``) runs tiles on the instance's persistent
worker pool (:mod:`repro.engine.pool`): the NLC arrays are published
once per solve through a :mod:`repro.store` backend (``shm`` by
default; the ``store`` option or ``REPRO_STORE`` picks ``memmap`` /
``ram``), each tile job is a few-dozen-byte tuple carrying the handle
plus the tile's candidate row window, workers attach only that slice,
and the executor's single call queue is the work-stealing mechanism —
idle workers pull the next tile, so a dense tile cannot straggle the
run.  The Theorem-2 bound lives in a shared
``multiprocessing.Value`` owned by the pool.  ``"serial"`` runs all
tiles in-process on one *unified frontier*: every tile root is pushed
onto a single best-first heap, so the one worker always steals the
globally most promising quadrant next — the degenerate (one-worker)
form of the stealing queue.  Sharing ``MaxMin`` and the Theorem 3
registry from the first pop means a cold tile never tessellates under a
weak local bound while the optimum sits in a hot tile it hasn't reached;
serial overhead collapses to just the cut-line tessellation (~3% on
fig11-uniform, vs ~25% for tile-at-a-time execution).  ``"tiles"`` runs
the tiles in-process *sequentially in tile order* — the pool's schedule
replayed by one worker, which is what makes serial/pool merged counters
comparable (a one-worker pool produces bit-identical work counters) and
what the broken-pool fallback uses.  ``"auto"`` picks the pool when the
machine has more than one core.  ``oversubscribe`` cuts the grid finer
than the worker count so stealing has slack to balance with.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.quadrant import MaxFirstStats, Quadrant
from repro.core.region import compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import TRACER, span

#: Deterministic work counters of the sharding layer itself, recorded in
#: the parent process so serial and pool modes count identically.
_SHARD_TASKS = _obs_metrics.counter("shard_tasks")
_HALO_ASSIGNMENTS = _obs_metrics.counter("halo_assignments")
#: Transport counters (mode/topology-dependent, excluded from identity
#: checks and the perf gate): tile jobs submitted to the pool, and jobs
#: a different worker pulled than the static round-robin assignment
#: would have received.
_POOL_TASKS = _obs_metrics.counter("pool_tasks")
_TILES_STOLEN = _obs_metrics.counter("tiles_stolen")

#: ``"process"`` is the pre-pool name for pooled execution, kept as an
#: alias so existing configs and reports stay valid.
_MODES = ("auto", "serial", "tiles", "pool", "process")


@dataclass(frozen=True)
class ShardPlan:
    """The tile layout of one sharded solve.

    ``tiles`` and ``candidates`` are parallel: tile ``i`` is solved over
    the NLCs (global indices) in ``candidates[i]``.  Tiles no disk
    reaches are dropped at planning time.
    """

    space: Rect
    resolution: float
    tiles: tuple[Rect, ...]
    candidates: tuple[np.ndarray, ...]
    #: Proven global lower bound: the best tile-root ``m̂in`` (the score
    #: attained everywhere inside some whole tile).  Every shard seeds
    #: ``MaxMin`` with it, so losing tiles prune from their first pop
    #: instead of waiting for the first bound exchange.
    seed_bound: float = 0.0

    @property
    def n_shards(self) -> int:
        return len(self.tiles)


@dataclass
class _ShardOutput:
    """One shard's Phase I outcome, normalised for merging.

    ``entries`` preserves acceptance order: ``(min_hat, cover, rect)``
    with ``cover`` as sorted global NLC indices.  ``obs_counters`` /
    ``obs_gauges`` are the tile's observability-registry deltas (captured
    under :meth:`MetricsRegistry.isolated` in *both* execution modes, so
    the counts flow to the parent registry only through :meth:`merge` and
    never double); ``spans`` carries a worker's finished span records as
    plain dicts for cross-process ingestion.
    """

    entries: list
    max_min: float
    stats: dict
    obs_counters: dict = field(default_factory=dict)
    obs_gauges: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)


def _dyadic_cut_fraction(i: int, n: int) -> float:
    """Cut fraction for interior grid line ``i`` of ``n`` columns.

    Tile cuts must satisfy two constraints the obvious choices each
    violate:

    * **Stay in the single-process run's split-line family.**  MaxFirst
      center-splits recursively, so every split line of the one-process
      search sits at a dyadic fraction of the space.  A tile whose edges
      are dyadic fractions center-splits into dyadic fractions again —
      its internal geometry *is* a subtree geometry of the global run,
      so near-degenerate coincidence clusters tessellate exactly as
      cheaply as the single run handles them.  The previous golden-ratio
      offset broke this: every tile-internal line was foreign to the
      global run, and a cluster a foreign line sliced was tessellated to
      far finer depths (measured 1.4x aggregate Phase I overhead on
      fig11-uniform, concentrated at one interior coincidence point).

    * **Stay off the centre.**  Synthetic (and most real) workloads pile
      mass — and therefore circle-coincidence points — around the domain
      centre, and a degenerate point ON a tile edge can never be
      isolated by a point split (``split_at`` needs a strictly interior
      point), so quadrants along the edge tessellate to the resolution
      floor (measured ~9x Phase I overhead on fig11-normal with midpoint
      cuts).

    Both hold for the nearest *odd* multiple of ``1/m`` to ``i/n`` with
    ``m`` the smallest power of two ``>= 4n``: odd numerators exclude
    ``1/2`` (and keep neighbouring cuts distinct), and every cut remains
    an exact dyadic fraction.  Correctness never depends on placement —
    any partition merges to the identical result; only the work varies.
    """
    m = 16
    while m < 4 * n:
        m *= 2
    j = round(i * m / n)
    if j % 2 == 0:
        j += 1 if i * m >= j * n else -1
    return min(m - 1, max(1, j)) / m


def tile_grid(space: Rect, shards: int) -> tuple[Rect, ...]:
    """Split ``space`` into at least ``shards`` tiles on a near-square grid.

    The grid is ``nx`` x ``ny`` with ``ny = floor(sqrt(shards))`` and
    ``nx = ceil(shards / ny)``, and *every* cell is emitted: 2 gives a
    2x1 split, 4 a 2x2, 9 a 3x3, while counts that do not factor into
    their grid round up (5 becomes a 3x2 grid of 6 tiles).  Dropping the
    surplus cells instead would leave part of the space uncovered, and
    regions living only there would be silently missed.  The tiles
    partition the space exactly (shared boundaries, no gaps); interior
    cut lines sit at off-centre dyadic fractions — see
    :func:`_dyadic_cut_fraction` for why both properties matter.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    ny = max(1, int(math.sqrt(shards)))
    nx = math.ceil(shards / ny)
    xs = ([space.xmin]
          + [space.xmin + space.width * _dyadic_cut_fraction(i, nx)
             for i in range(1, nx)]
          + [space.xmax])
    ys = ([space.ymin]
          + [space.ymin + space.height * _dyadic_cut_fraction(i, ny)
             for i in range(1, ny)]
          + [space.ymax])
    tiles = []
    for iy in range(ny):
        for ix in range(nx):
            tiles.append(Rect(xs[ix], ys[iy], xs[ix + 1], ys[iy + 1]))
    return tuple(tiles)


class ShardedMaxFirst:
    """MaxFirst with tile-sharded Phase I.

    Parameters
    ----------
    shards:
        Requested parallelism (1 degenerates to the single-process
        solver).  Counts that do not factor into the near-square grid
        round up to the full grid — see :func:`tile_grid`.
    mode:
        ``"auto"`` (pool when multi-core), ``"serial"`` (unified
        in-process frontier), ``"tiles"`` (tile-at-a-time in-process,
        the pool's one-worker schedule), ``"pool"``, or its legacy
        alias ``"process"``.
    max_workers:
        Worker-process cap for the pool; defaults to
        ``min(shards, cpu_count)``.
    oversubscribe:
        Tile-to-worker ratio: the grid is cut for
        ``shards * oversubscribe`` tiles so the work-stealing queue has
        slack to balance dense tiles.  1 keeps one tile per requested
        shard.
    sync_interval:
        Pops between bound-exchange polls inside each shard's Phase I.
    store:
        Storage backend for the pool transport (``"ram"`` / ``"shm"`` /
        ``"memmap"``); ``None`` defers to ``REPRO_STORE`` and then
        ``"shm"``.  Ignored when :attr:`external_store` is set — the
        engine pipeline publishes the NLC set once and hands its store
        over, so pool mode ships that handle instead of publishing a
        second copy.
    maxfirst_options:
        Forwarded to every per-shard :class:`MaxFirst` (``top_t`` must
        stay 1: the top-t frontier is not a global bound).

    The worker pool persists across ``solve()`` calls; release it with
    :meth:`close` (the engine pipeline does this in its finalize hook)
    or use the instance as a context manager.
    """

    def __init__(self, shards: int = 2, mode: str = "auto",
                 max_workers: int | None = None,
                 oversubscribe: int = 1,
                 sync_interval: int = 1024,
                 store: str | None = None,
                 **maxfirst_options: Any) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if maxfirst_options.get("top_t", 1) != 1:
            raise ValueError("sharded execution requires top_t == 1")
        if sync_interval < 1:
            raise ValueError("sync_interval must be positive")
        if oversubscribe < 1:
            raise ValueError("oversubscribe must be positive")
        if store is not None:
            from repro.store import resolve_store_name

            resolve_store_name(store)  # fail fast on unknown backends
        self.shards = shards
        self.mode = mode
        self.max_workers = max_workers
        self.oversubscribe = oversubscribe
        self.sync_interval = sync_interval
        self.store = store
        #: A live :class:`repro.store.NLCStore` whose rows are exactly
        #: the NLC set being solved; when set (by the engine pipeline),
        #: pool mode reuses its handle instead of publishing its own
        #: copy, and never closes it.
        self.external_store: Any = None
        self.maxfirst_options = dict(maxfirst_options)
        self._solver = MaxFirst(**maxfirst_options)
        self._pool: Any = None
        self._epoch = 0
        #: Test hook: tile indices whose pool job raises (exercises the
        #: shm-cleanup-on-worker-failure path without killing a worker).
        self._fail_tiles: frozenset[int] = frozenset()

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "ShardedMaxFirst":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        """Full pipeline: NLC construction, sharded Phase I, Phase II."""
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem, method=self._solver.nlc_method,
                          keep_zero_score=self._solver.keep_zero_score_nlcs)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            return MaxBRkNNResult(
                score=0.0, regions=(), nlcs=nlcs,
                space=problem.data_bounds(), stats=MaxFirstStats(),
                timings={"nlc": t1 - t0, "phase1": 0.0, "phase2": 0.0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxBRkNNResult:
        """Sharded solve over an explicit NLC set."""
        if len(nlcs) == 0:
            raise ValueError("cannot solve over an empty NLC set")
        plan = self.plan(nlcs, space)
        t0 = time.perf_counter()
        outputs = self.execute(nlcs, plan)
        t1 = time.perf_counter()
        max_min, regions, stats = self.merge(nlcs, outputs)
        t2 = time.perf_counter()
        return MaxBRkNNResult(
            score=max_min, regions=tuple(regions), nlcs=nlcs,
            space=plan.space, stats=stats,
            timings={"phase1": t1 - t0, "phase2": t2 - t1})

    # ------------------------------------------------------------------ #
    # Staged pieces (the engine pipeline times these separately)
    # ------------------------------------------------------------------ #

    def plan(self, nlcs: CircleSet, space: Rect | None = None) -> ShardPlan:
        """Partition the space and assign each tile its halo NLC set."""
        if space is None:
            space = nlc_space(nlcs)
        # The GLOBAL space sizes the resolution/graze tolerance; a tile
        # must classify at it, or its Q.I/Q.C sets (hence score sums)
        # diverge from the single-process run.
        resolution = (max(space.width, space.height)
                      * self._solver.resolution_fraction)
        tiles = tile_grid(space, self.shards * self.oversubscribe)
        assigned = nlcs.rects_intersecting(tiles)
        kept_tiles = []
        kept_candidates = []
        for tile, cand in zip(tiles, assigned):
            if cand.shape[0] == 0:
                continue  # nothing can score inside this tile
            kept_tiles.append(tile)
            kept_candidates.append(cand)
        _HALO_ASSIGNMENTS.add(sum(int(c.shape[0])
                                  for c in kept_candidates))
        # Classify each kept tile's root once in the parent: the best
        # root m̂in is a witnessed global lower bound (its whole tile
        # attains it), shipped to every shard as the Theorem 2 seed.
        # One batched kernel call over n_tiles rects — negligible, and
        # identical in every execution mode.
        seed_bound = 0.0
        if kept_tiles:
            roots = nlcs.classify_rects(kept_tiles, graze_tol=resolution)
            seed_bound = max(root[3] for root in roots)
        return ShardPlan(space=space, resolution=resolution,
                         tiles=tuple(kept_tiles),
                         candidates=tuple(kept_candidates),
                         seed_bound=seed_bound)

    def execute(self, nlcs: CircleSet,
                plan: ShardPlan) -> list[_ShardOutput]:
        """Run Phase I over every planned tile (serial or pooled)."""
        if plan.n_shards == 0:
            return []
        _SHARD_TASKS.add(plan.n_shards)
        if plan.n_shards == 1 and plan.tiles[0] == plan.space:
            # Degenerate 1-shard plan: exactly the single-process run.
            return [self._run_tile(nlcs, plan.space, plan, None)]
        mode = self.mode
        if mode == "auto":
            mode = "pool" if (os.cpu_count() or 1) > 1 else "serial"
        if mode in ("pool", "process"):
            try:
                return self._execute_processes(nlcs, plan)
            except (OSError, ImportError, BrokenProcessPool,
                    pickle.PicklingError) as exc:  # pragma: no cover
                # Restricted environments (no /dev/shm, no working
                # spawn) and workers killed mid-run (OOM reaper): the
                # tile-wise path replays the pool's schedule in-process
                # and computes the identical result.
                if self.mode in ("pool", "process"):
                    raise RuntimeError(
                        f"pool-mode sharding unavailable: {exc}"
                    ) from exc
                # Drop the broken executor so a later solve on this
                # instance can try a fresh pool.
                if self._pool is not None:
                    self._pool.discard()
                mode = "tiles"
        if mode == "tiles":
            return self._execute_tilewise(nlcs, plan)
        return self._execute_serial(nlcs, plan)

    def merge(self, nlcs: CircleSet, outputs: list[_ShardOutput]
              ) -> tuple[float, list, MaxFirstStats]:
        """Merge shard outputs: global best, deduped regions, summed stats.

        Mirrors :meth:`MaxFirst.build_regions`: entries are visited in
        tile order then acceptance order, covers deduplicate on first
        sight, and only entries within the tie tolerance of the global
        best grow regions.
        """
        max_min = max((out.max_min for out in outputs), default=0.0)
        tol = self._solver.tie_tol * max(1.0, abs(max_min))
        regions = []
        seen_covers: set[tuple[int, ...]] = set()
        for out in outputs:
            for min_hat, cover, rect in out.entries:
                if min_hat < max_min - tol:
                    continue
                key = tuple(int(i) for i in cover)
                if key in seen_covers:
                    continue
                seen_covers.add(key)
                regions.append(compute_optimal_region(
                    rect, cover, nlcs, score=min_hat))
        regions.sort(key=lambda r: -r.score)
        merged: dict[str, int] = {}
        for out in outputs:
            for name, value in out.stats.items():
                if name == "max_depth":
                    merged[name] = max(merged.get(name, 0), value)
                else:
                    merged[name] = merged.get(name, 0) + value
            # The only route shard counters take into the parent
            # registry: _run_tile and the process worker both record
            # under an isolated store, so nothing is double-counted.
            _obs_metrics.REGISTRY.merge_counts(out.obs_counters)
            _obs_metrics.REGISTRY.merge_gauges_max(out.obs_gauges)
        return max_min, regions, MaxFirstStats(**merged)

    # ------------------------------------------------------------------ #

    def _run_tile(self, nlcs: CircleSet, tile: Rect, plan: ShardPlan,
                  bound: "_SerialBound | None",
                  candidates: np.ndarray | None = None,
                  shard_index: int = 0,
                  seed_covers: tuple = ()) -> _ShardOutput:
        """Solve one tile in-process over the full (global-index) set.

        Runs under an isolated metrics store so the tile's counter delta
        ships in the output (and reaches the parent registry only via
        :meth:`merge`) — the same flow the pool mode uses, keeping the
        two modes' merged counters identical.
        """
        with _obs_metrics.REGISTRY.isolated() as box:
            with span(f"shard/tile{shard_index}", nlcs=(
                    int(candidates.shape[0]) if candidates is not None
                    else len(nlcs))):
                solver = MaxFirst(**self.maxfirst_options)
                initial = (bound.get() if bound is not None
                           else plan.seed_bound)
                backend = _TileBackend(nlcs, plan.resolution, candidates)
                accepted, max_min, stats = solver.run_phase1(
                    nlcs, tile, backend=backend,
                    resolution=plan.resolution, initial_bound=initial,
                    bound_sync=bound.sync if bound is not None else None,
                    sync_interval=(self.sync_interval
                                   if bound is not None else 0),
                    seed_covers=seed_covers)
                if bound is not None:
                    bound.sync(max_min)
                entries = [(quad.min_hat, quad.containing, quad.rect)
                           for quad in accepted]
        return _ShardOutput(entries=entries, max_min=max_min,
                            stats=stats.as_dict(),
                            obs_counters=dict(box["counters"]),
                            obs_gauges=dict(box["gauges"]))

    def _execute_serial(self, nlcs: CircleSet,
                        plan: ShardPlan) -> list[_ShardOutput]:
        """Unified-frontier serial execution: one search, all tiles.

        Every tile root goes onto a single best-first heap
        (``run_phase1(roots=...)``), so the in-process worker always
        takes the globally most promising quadrant — the one-worker
        degenerate of the pool's stealing queue.  Bound and Theorem 3
        registry are shared from the first pop, which removes the
        tile-at-a-time pathology where a cold tile tessellates under a
        weak local bound because the tile holding the optimum has not
        run yet.  Exactness is untouched: classification per tile root
        uses the planner's halo candidate sets at the global resolution,
        and bounds/covers only ever prune.
        """
        with _obs_metrics.REGISTRY.isolated() as box:
            with span("shard/unified", tiles=plan.n_shards,
                      nlcs=len(nlcs)):
                solver = MaxFirst(**self.maxfirst_options)
                accepted, max_min, stats = solver.run_phase1(
                    nlcs, plan.space, resolution=plan.resolution,
                    initial_bound=plan.seed_bound,
                    roots=list(zip(plan.tiles, plan.candidates)))
                entries = [(quad.min_hat, quad.containing, quad.rect)
                           for quad in accepted]
        return [_ShardOutput(entries=entries, max_min=max_min,
                             stats=stats.as_dict(),
                             obs_counters=dict(box["counters"]),
                             obs_gauges=dict(box["gauges"]))]

    def _execute_tilewise(self, nlcs: CircleSet,
                          plan: ShardPlan) -> list[_ShardOutput]:
        """Tile-at-a-time serial execution: the pool schedule, replayed.

        Runs the tiles sequentially in tile order exactly as a
        one-worker pool would pop them off the stealing queue — which is
        why a ``mode="tiles"`` run merges bit-identical work counters to
        a ``mode="pool", max_workers=1`` run, and why the broken-pool
        fallback lands here.
        """
        bound = _SerialBound(plan.seed_bound)
        seeds: list[tuple[tuple[int, ...], float]] = []
        seen: set[tuple[int, ...]] = set()
        outputs = []
        for i, (tile, cand) in enumerate(zip(plan.tiles,
                                             plan.candidates)):
            out = self._run_tile(nlcs, tile, plan, bound, cand,
                                 shard_index=i,
                                 seed_covers=tuple(seeds))
            outputs.append(out)
            # Later tiles Theorem-3-prune against every region found so
            # far instead of re-tessellating it from their side of the
            # boundary; pool workers accumulate the same way per worker.
            _extend_seed_covers(seeds, seen, out.entries)
        return outputs

    def _ensure_pool(self) -> Any:
        """The instance's persistent pool, created on first use."""
        if self._pool is None:
            from repro.engine.pool import PersistentPool

            workers = self.max_workers or min(self.shards,
                                              os.cpu_count() or 1)
            self._pool = PersistentPool(max_workers=workers)
        return self._pool

    def _execute_processes(self, nlcs: CircleSet,
                           plan: ShardPlan) -> list[_ShardOutput]:
        """Pool execution: store publish + work-stealing queue.

        The NLC arrays cross the process boundary exactly once per
        solve, published through the configured :mod:`repro.store`
        backend (or reusing :attr:`external_store`'s handle when the
        pipeline already published); each tile job is a few-dozen-byte
        tuple carrying the handle plus the tile's candidate row window
        ``[lo, hi)``, so a worker attaches only the halo-relevant
        slice.  Jobs are submitted individually — the executor's call
        queue is the stealing mechanism, so whichever worker goes idle
        takes the next tile.  The segment/file is unlinked in the
        ``finally`` whatever happens to the workers; Linux keeps the
        pages alive for already-mapped workers, so a straggler
        finishing after an unlink is still safe.
        """
        from repro import store as nlc_store

        pool = self._ensure_pool()
        trace_enabled = TRACER.enabled
        owner = self.external_store
        external = owner is not None and owner.length == len(nlcs)
        if not external:
            backend_name = nlc_store.resolve_store_name(self.store,
                                                        default="shm")
            with span("shard/store_publish", nlcs=len(nlcs),
                      store=backend_name):
                owner = nlc_store.publish(nlcs, backend_name)
        handle = owner.handle
        self._epoch += 1
        epoch = self._epoch
        pool.reset_bound(plan.seed_bound)
        _POOL_TASKS.add(plan.n_shards)
        launch_ts = TRACER.now() if trace_enabled else 0.0
        futures = []
        try:
            for i, (tile, cand) in enumerate(zip(plan.tiles,
                                                 plan.candidates)):
                # The planner never keeps a tile without candidates, and
                # rects_intersecting returns ascending indices, so the
                # window [cand[0], cand[-1] + 1) covers every disk the
                # worker's slice-local recomputation can find.
                lo, hi = int(cand[0]), int(cand[-1]) + 1
                job = (epoch, handle,
                       (tile.xmin, tile.ymin, tile.xmax, tile.ymax),
                       lo, hi, i,
                       plan.resolution, self.maxfirst_options,
                       self.sync_interval, trace_enabled,
                       i in self._fail_tiles)
                futures.append(pool.submit(job))
            with span("shard/tile_wait", tiles=plan.n_shards):
                results = [future.result() for future in futures]
        finally:
            for future in futures:
                future.cancel()
            if not external:
                owner.close()
        outputs = []
        slots: dict[int, int] = {}
        stolen = 0
        for (tile_index, worker_pid, entries, max_min, stats,
             counters, gauges, spans) in results:
            # Steal accounting: workers take slots in first-result
            # order; a tile whose worker differs from the round-robin
            # assignment was pulled off the queue by an idle sibling.
            slot = slots.setdefault(worker_pid, len(slots))
            if slot != tile_index % pool.max_workers:
                stolen += 1
            outputs.append(_ShardOutput(
                entries=entries, max_min=max_min, stats=stats,
                obs_counters=counters, obs_gauges=gauges, spans=spans))
            if trace_enabled:
                # Splice each tile's spans in as its own pid track,
                # offset to this process's launch time so the tracks
                # line up with the surrounding pipeline/search span.
                TRACER.ingest(spans, pid=tile_index + 1,
                              ts_offset=launch_ts)
        _TILES_STOLEN.add(stolen)
        return outputs


def _extend_seed_covers(seeds: list, seen: set, entries: list) -> None:
    """Fold a tile's accepted entries into the shared seed-cover list."""
    for min_hat, cover, _rect in entries:
        key = tuple(int(i) for i in cover)
        if key not in seen:
            seen.add(key)
            seeds.append((key, float(min_hat)))


class _SerialBound:
    """In-process best-bound cell with the worker sync() contract."""

    __slots__ = ("value",)

    def __init__(self, initial: float = 0.0) -> None:
        self.value = float(initial)

    def get(self) -> float:
        return self.value

    def sync(self, local: float) -> float:
        if local > self.value:
            self.value = local
        return self.value


class _TileBackend:
    """Vector backend whose root candidate set is a tile's halo NLCs.

    Children re-test only their parent's survivors as usual, so after the
    root classification the search is indistinguishable from a global run
    that reached the same rectangle.
    """

    name = "vector-tile"

    def __init__(self, nlcs: CircleSet, graze_tol: float,
                 root: np.ndarray | None) -> None:
        from repro.core.bounds import VectorBackend

        self._inner = VectorBackend(nlcs, graze_tol=graze_tol)
        self._root = root

    def root_candidates(self) -> np.ndarray:
        if self._root is None:
            return self._inner.root_candidates()
        return self._root

    def classify(self, rect: Rect, parent_candidates: np.ndarray,
                 depth: int) -> Quadrant:
        return self._inner.classify(rect, parent_candidates, depth)

    def classify_batch(self, rects: list[Rect],
                       parent_candidates: np.ndarray,
                       depth: int) -> list[Quadrant]:
        return self._inner.classify_batch(rects, parent_candidates, depth)


