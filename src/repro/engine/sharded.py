"""Tile-sharded parallel Phase I.

Partitions the data rectangle into a grid of tiles, assigns each tile the
NLCs whose disks intersect it (halo inclusion via the batched
:meth:`~repro.index.circleset.CircleSet.rects_intersecting` predicate),
runs MaxFirst's Phase I independently per tile, and merges the accepted
quadrants before a single Phase II pass grows each distinct region once.

Why this is exact
-----------------
Every optimal region is full-dimensional, so its interior meets the
interior of at least one tile; the shard owning that tile accepts a
consistent quadrant with exactly the region's cover.  A quadrant's score
bounds are sums over index-sorted NLC subsets, and every shard classifies
with the *global* space's graze tolerance, so a cover discovered in a
shard produces bit-for-bit the same ``m̂in`` sum the single-process run
computes for it — the merged optimal score and the deduplicated cover set
are identical to the one-process ``hotpath=batched`` run (asserted by
``benchmarks/bench_engine_shards.py`` on the fig11 instances).

Shards exchange a global lower bound (the best proven ``m̂in`` anywhere):
each worker seeds ``MaxMin`` with the bound at start and polls/publishes
it every ``sync_interval`` pops, so losing shards terminate early via
Theorem 2.  Bounds are only ever values witnessed by a real quadrant in
some shard, which keeps the pruning sound; winners are never pruned
because Theorem 2's cut is strict below the tie tolerance.

Execution modes
---------------
``"process"`` ships each tile's NLCs as SoA buffers (the parallel
``cx/cy/r/scores`` arrays plus their global indices) to a
``ProcessPoolExecutor`` worker; the shared bound lives in a
``multiprocessing.Value``.  ``"serial"`` runs the tiles in-process in tile
order — deterministic, zero IPC, and still profits from bound exchange
(later tiles start with the best bound of the earlier ones).  ``"auto"``
picks processes when the machine has more than one core.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.quadrant import MaxFirstStats, Quadrant
from repro.core.region import compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.geometry.rect import Rect
from repro.index.circleset import CircleSet
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import TRACER, span

#: Deterministic work counters of the sharding layer itself, recorded in
#: the parent process so serial and process modes count identically.
_SHARD_TASKS = _obs_metrics.counter("shard_tasks")
_HALO_ASSIGNMENTS = _obs_metrics.counter("halo_assignments")

_MODES = ("auto", "serial", "process")

# Shared lower-bound cell, installed per worker process by _init_worker.
_SHARED_BOUND: Any = None


@dataclass(frozen=True)
class ShardPlan:
    """The tile layout of one sharded solve.

    ``tiles`` and ``candidates`` are parallel: tile ``i`` is solved over
    the NLCs (global indices) in ``candidates[i]``.  Tiles no disk
    reaches are dropped at planning time.
    """

    space: Rect
    resolution: float
    tiles: tuple[Rect, ...]
    candidates: tuple[np.ndarray, ...]

    @property
    def n_shards(self) -> int:
        return len(self.tiles)


@dataclass
class _ShardOutput:
    """One shard's Phase I outcome, normalised for merging.

    ``entries`` preserves acceptance order: ``(min_hat, cover, rect)``
    with ``cover`` as sorted global NLC indices.  ``obs_counters`` /
    ``obs_gauges`` are the tile's observability-registry deltas (captured
    under :meth:`MetricsRegistry.isolated` in *both* execution modes, so
    the counts flow to the parent registry only through :meth:`merge` and
    never double); ``spans`` carries a worker's finished span records as
    plain dicts for cross-process ingestion.
    """

    entries: list
    max_min: float
    stats: dict
    obs_counters: dict = field(default_factory=dict)
    obs_gauges: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)


# Interior tile cuts are shifted off the round fractions by this fraction
# of one tile width.  A midpoint cut is systematically unlucky: synthetic
# (and most real) workloads pile mass — and therefore circle-coincidence
# points — at the exact domain centre, and a degenerate point lying ON a
# tile edge cannot be isolated by a point split (split_at needs a strictly
# interior point), so quadrants along the edge tessellate to the
# resolution floor (observed: 7x the quadrant count on fig11 normal/25).
# The golden-ratio offset is deterministic and keeps cuts off the round
# coordinates coincidence points cluster at; correctness never depends on
# tile placement — any partition merges to the identical result.
_CUT_SHIFT = (math.sqrt(5.0) - 1.0) / 2.0 - 0.5  # ~0.118, irrational


def tile_grid(space: Rect, shards: int) -> tuple[Rect, ...]:
    """Split ``space`` into at least ``shards`` tiles on a near-square grid.

    The grid is ``nx`` x ``ny`` with ``ny = floor(sqrt(shards))`` and
    ``nx = ceil(shards / ny)``, and *every* cell is emitted: 2 gives a
    2x1 split, 4 a 2x2, 9 a 3x3, while counts that do not factor into
    their grid round up (5 becomes a 3x2 grid of 6 tiles).  Dropping the
    surplus cells instead would leave part of the space uncovered, and
    regions living only there would be silently missed.  The tiles
    partition the space exactly (shared boundaries, no gaps); interior
    cut lines sit at ``(i + _CUT_SHIFT) / n`` rather than ``i / n`` —
    see :data:`_CUT_SHIFT`.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    ny = max(1, int(math.sqrt(shards)))
    nx = math.ceil(shards / ny)
    xs = space.xmin + ((np.arange(nx + 1, dtype=np.float64) + _CUT_SHIFT)
                       * (space.width / nx))
    ys = space.ymin + ((np.arange(ny + 1, dtype=np.float64) + _CUT_SHIFT)
                       * (space.height / ny))
    xs[0], xs[-1] = space.xmin, space.xmax
    ys[0], ys[-1] = space.ymin, space.ymax
    tiles = []
    for iy in range(ny):
        for ix in range(nx):
            tiles.append(Rect(float(xs[ix]), float(ys[iy]),
                              float(xs[ix + 1]), float(ys[iy + 1])))
    return tuple(tiles)


class ShardedMaxFirst:
    """MaxFirst with tile-sharded Phase I.

    Parameters
    ----------
    shards:
        Requested tile count (1 degenerates to the single-process
        solver).  Counts that do not factor into the near-square grid
        round up to the full grid — see :func:`tile_grid`.
    mode:
        ``"auto"`` (processes when multi-core), ``"serial"``,
        or ``"process"``.
    max_workers:
        Worker-process cap for ``mode="process"``; defaults to
        ``min(shards, cpu_count)``.
    sync_interval:
        Pops between bound-exchange polls inside each shard's Phase I.
    maxfirst_options:
        Forwarded to every per-shard :class:`MaxFirst` (``top_t`` must
        stay 1: the top-t frontier is not a global bound).
    """

    def __init__(self, shards: int = 2, mode: str = "auto",
                 max_workers: int | None = None,
                 sync_interval: int = 1024,
                 **maxfirst_options: Any) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if maxfirst_options.get("top_t", 1) != 1:
            raise ValueError("sharded execution requires top_t == 1")
        if sync_interval < 1:
            raise ValueError("sync_interval must be positive")
        self.shards = shards
        self.mode = mode
        self.max_workers = max_workers
        self.sync_interval = sync_interval
        self.maxfirst_options = dict(maxfirst_options)
        self._solver = MaxFirst(**maxfirst_options)

    # ------------------------------------------------------------------ #

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        """Full pipeline: NLC construction, sharded Phase I, Phase II."""
        t0 = time.perf_counter()
        nlcs = build_nlcs(problem, method=self._solver.nlc_method,
                          keep_zero_score=self._solver.keep_zero_score_nlcs)
        t1 = time.perf_counter()
        if len(nlcs) == 0:
            return MaxBRkNNResult(
                score=0.0, regions=(), nlcs=nlcs,
                space=problem.data_bounds(), stats=MaxFirstStats(),
                timings={"nlc": t1 - t0, "phase1": 0.0, "phase2": 0.0})
        result = self.solve_nlcs(nlcs)
        result.timings["nlc"] = t1 - t0
        return result

    def solve_nlcs(self, nlcs: CircleSet,
                   space: Rect | None = None) -> MaxBRkNNResult:
        """Sharded solve over an explicit NLC set."""
        if len(nlcs) == 0:
            raise ValueError("cannot solve over an empty NLC set")
        plan = self.plan(nlcs, space)
        t0 = time.perf_counter()
        outputs = self.execute(nlcs, plan)
        t1 = time.perf_counter()
        max_min, regions, stats = self.merge(nlcs, outputs)
        t2 = time.perf_counter()
        return MaxBRkNNResult(
            score=max_min, regions=tuple(regions), nlcs=nlcs,
            space=plan.space, stats=stats,
            timings={"phase1": t1 - t0, "phase2": t2 - t1})

    # ------------------------------------------------------------------ #
    # Staged pieces (the engine pipeline times these separately)
    # ------------------------------------------------------------------ #

    def plan(self, nlcs: CircleSet, space: Rect | None = None) -> ShardPlan:
        """Partition the space and assign each tile its halo NLC set."""
        if space is None:
            space = nlc_space(nlcs)
        # The GLOBAL space sizes the resolution/graze tolerance; a tile
        # must classify at it, or its Q.I/Q.C sets (hence score sums)
        # diverge from the single-process run.
        resolution = (max(space.width, space.height)
                      * self._solver.resolution_fraction)
        tiles = tile_grid(space, self.shards)
        assigned = nlcs.rects_intersecting(tiles)
        kept_tiles = []
        kept_candidates = []
        for tile, cand in zip(tiles, assigned):
            if cand.shape[0] == 0:
                continue  # nothing can score inside this tile
            kept_tiles.append(tile)
            kept_candidates.append(cand)
        _HALO_ASSIGNMENTS.add(sum(int(c.shape[0])
                                  for c in kept_candidates))
        return ShardPlan(space=space, resolution=resolution,
                         tiles=tuple(kept_tiles),
                         candidates=tuple(kept_candidates))

    def execute(self, nlcs: CircleSet,
                plan: ShardPlan) -> list[_ShardOutput]:
        """Run Phase I over every planned tile (serial or processes)."""
        if plan.n_shards == 0:
            return []
        _SHARD_TASKS.add(plan.n_shards)
        if plan.n_shards == 1 and plan.tiles[0] == plan.space:
            # Degenerate 1-shard plan: exactly the single-process run.
            return [self._run_tile(nlcs, plan.space, plan, None)]
        mode = self.mode
        if mode == "auto":
            mode = "process" if (os.cpu_count() or 1) > 1 else "serial"
        if mode == "process":
            try:
                return self._execute_processes(nlcs, plan)
            except (OSError, ImportError, BrokenProcessPool,
                    pickle.PicklingError) as exc:  # pragma: no cover
                # Restricted environments (no /dev/shm, no fork) and
                # workers killed mid-run (OOM reaper): the serial path
                # computes the identical result.
                if self.mode == "process":
                    raise RuntimeError(
                        f"process-mode sharding unavailable: {exc}"
                    ) from exc
        return self._execute_serial(nlcs, plan)

    def merge(self, nlcs: CircleSet, outputs: list[_ShardOutput]
              ) -> tuple[float, list, MaxFirstStats]:
        """Merge shard outputs: global best, deduped regions, summed stats.

        Mirrors :meth:`MaxFirst.build_regions`: entries are visited in
        tile order then acceptance order, covers deduplicate on first
        sight, and only entries within the tie tolerance of the global
        best grow regions.
        """
        max_min = max((out.max_min for out in outputs), default=0.0)
        tol = self._solver.tie_tol * max(1.0, abs(max_min))
        regions = []
        seen_covers: set[tuple[int, ...]] = set()
        for out in outputs:
            for min_hat, cover, rect in out.entries:
                if min_hat < max_min - tol:
                    continue
                key = tuple(int(i) for i in cover)
                if key in seen_covers:
                    continue
                seen_covers.add(key)
                regions.append(compute_optimal_region(
                    rect, cover, nlcs, score=min_hat))
        regions.sort(key=lambda r: -r.score)
        merged: dict[str, int] = {}
        for out in outputs:
            for name, value in out.stats.items():
                if name == "max_depth":
                    merged[name] = max(merged.get(name, 0), value)
                else:
                    merged[name] = merged.get(name, 0) + value
            # The only route shard counters take into the parent
            # registry: _run_tile and the process worker both record
            # under an isolated store, so nothing is double-counted.
            _obs_metrics.REGISTRY.merge_counts(out.obs_counters)
            _obs_metrics.REGISTRY.merge_gauges_max(out.obs_gauges)
        return max_min, regions, MaxFirstStats(**merged)

    # ------------------------------------------------------------------ #

    def _run_tile(self, nlcs: CircleSet, tile: Rect, plan: ShardPlan,
                  bound: "_SerialBound | None",
                  candidates: np.ndarray | None = None,
                  shard_index: int = 0) -> _ShardOutput:
        """Solve one tile in-process over the full (global-index) set.

        Runs under an isolated metrics store so the tile's counter delta
        ships in the output (and reaches the parent registry only via
        :meth:`merge`) — the same flow the process mode uses, keeping the
        two modes' merged counters identical.
        """
        with _obs_metrics.REGISTRY.isolated() as box:
            with span(f"shard/tile{shard_index}", nlcs=(
                    int(candidates.shape[0]) if candidates is not None
                    else len(nlcs))):
                solver = MaxFirst(**self.maxfirst_options)
                initial = bound.get() if bound is not None else 0.0
                backend = _TileBackend(nlcs, plan.resolution, candidates)
                accepted, max_min, stats = solver.run_phase1(
                    nlcs, tile, backend=backend,
                    resolution=plan.resolution, initial_bound=initial,
                    bound_sync=bound.sync if bound is not None else None,
                    sync_interval=(self.sync_interval
                                   if bound is not None else 0))
                if bound is not None:
                    bound.sync(max_min)
                entries = [(quad.min_hat, quad.containing, quad.rect)
                           for quad in accepted]
        return _ShardOutput(entries=entries, max_min=max_min,
                            stats=stats.as_dict(),
                            obs_counters=dict(box["counters"]),
                            obs_gauges=dict(box["gauges"]))

    def _execute_serial(self, nlcs: CircleSet,
                        plan: ShardPlan) -> list[_ShardOutput]:
        bound = _SerialBound()
        return [self._run_tile(nlcs, tile, plan, bound, cand,
                               shard_index=i)
                for i, (tile, cand) in enumerate(
                    zip(plan.tiles, plan.candidates))]

    def _execute_processes(self, nlcs: CircleSet,
                           plan: ShardPlan) -> list[_ShardOutput]:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        shared = ctx.Value("d", 0.0)
        workers = self.max_workers or min(plan.n_shards,
                                          os.cpu_count() or 1)
        trace_enabled = TRACER.enabled
        payloads = [
            # SoA buffers: each shard ships only its tile's disks, plus
            # the global indices that keep covers comparable at merge.
            (nlcs.cx[cand], nlcs.cy[cand], nlcs.r[cand],
             nlcs.scores[cand], nlcs.owners[cand], nlcs.levels[cand],
             cand,
             (tile.xmin, tile.ymin, tile.xmax, tile.ymax),
             plan.resolution, self.maxfirst_options, self.sync_interval,
             i, trace_enabled)
            for i, (tile, cand) in enumerate(
                zip(plan.tiles, plan.candidates))]
        launch_ts = TRACER.now() if trace_enabled else 0.0
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                                 initializer=_init_worker,
                                 initargs=(shared,)) as pool:
            outputs = list(pool.map(_solve_tile_worker, payloads))
        if trace_enabled:
            # Splice each worker's spans in as its own pid track,
            # offset to this process's launch time so the tracks line
            # up with the surrounding pipeline/search span.
            for i, out in enumerate(outputs):
                TRACER.ingest(out.spans, pid=i + 1, ts_offset=launch_ts)
        return outputs


class _SerialBound:
    """In-process best-bound cell with the worker sync() contract."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def get(self) -> float:
        return self.value

    def sync(self, local: float) -> float:
        if local > self.value:
            self.value = local
        return self.value


class _TileBackend:
    """Vector backend whose root candidate set is a tile's halo NLCs.

    Children re-test only their parent's survivors as usual, so after the
    root classification the search is indistinguishable from a global run
    that reached the same rectangle.
    """

    name = "vector-tile"

    def __init__(self, nlcs: CircleSet, graze_tol: float,
                 root: np.ndarray | None) -> None:
        from repro.core.bounds import VectorBackend

        self._inner = VectorBackend(nlcs, graze_tol=graze_tol)
        self._root = root

    def root_candidates(self) -> np.ndarray:
        if self._root is None:
            return self._inner.root_candidates()
        return self._root

    def classify(self, rect: Rect, parent_candidates: np.ndarray,
                 depth: int) -> Quadrant:
        return self._inner.classify(rect, parent_candidates, depth)

    def classify_batch(self, rects: list[Rect],
                       parent_candidates: np.ndarray,
                       depth: int) -> list[Quadrant]:
        return self._inner.classify_batch(rects, parent_candidates, depth)


# ---------------------------------------------------------------------- #
# Worker-process side
# ---------------------------------------------------------------------- #

def _init_worker(shared: Any) -> None:
    global _SHARED_BOUND
    _SHARED_BOUND = shared


def _shared_sync(local: float) -> float:
    """Publish ``local`` into the shared bound; return the global best."""
    shared = _SHARED_BOUND
    if shared is None:
        return local
    with shared.get_lock():
        if local > shared.value:
            shared.value = local
        return float(shared.value)


def _solve_tile_worker(payload: tuple[Any, ...]) -> _ShardOutput:
    (cx, cy, r, scores, owners, levels, global_idx, tile_tuple,
     resolution, options, sync_interval, shard_index,
     trace_enabled) = payload
    # Pool workers are reused across tiles and fork-started workers
    # inherit the parent's tracer records — reset per task so each
    # shipped span set covers exactly this tile.
    TRACER.reset(enabled=bool(trace_enabled))
    with _obs_metrics.REGISTRY.isolated() as box:
        with TRACER.span(f"shard/tile{shard_index}",
                         nlcs=int(global_idx.shape[0])):
            local = CircleSet(cx, cy, r, scores, owners=owners,
                              levels=levels)
            tile = Rect(*tile_tuple)
            solver = MaxFirst(**options)
            initial = _shared_sync(0.0)
            accepted, max_min, stats = solver.run_phase1(
                local, tile, resolution=resolution, initial_bound=initial,
                bound_sync=_shared_sync, sync_interval=sync_interval)
            _shared_sync(max_min)
            entries = [(quad.min_hat, global_idx[quad.containing],
                        quad.rect) for quad in accepted]
    spans = ([record.as_dict() for record in TRACER.drain()]
             if trace_enabled else [])
    return _ShardOutput(entries=entries, max_min=max_min,
                        stats=stats.as_dict(),
                        obs_counters=dict(box["counters"]),
                        obs_gauges=dict(box["gauges"]),
                        spans=spans)
