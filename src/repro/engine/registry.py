"""Solver registry: every solver resolvable by name, with capabilities.

The contract layer of the engine.  A solver registers once under a string
name with (1) a ``factory`` building the solver object (anything with
``solve(problem) -> MaxBRkNNResult``), (2) a ``pipeline`` class running it
through the staged instrumentation frame, and (3) declared capabilities,
so callers (CLI, bench runner, tests) can pick solvers *by property* —
"every exact solver", "everything supporting top-t" — instead of
hard-coding names.

The built-in solvers register at import time; downstream code extends the
set with :func:`register_solver` (e.g. a test registering a mock solver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.baselines.gridsearch import GridSearch
from repro.baselines.maxoverlap import MaxOverlap
from repro.baselines.reference import Reference
from repro.core.maxfirst import MaxFirst
from repro.core.problem import MaxBRkNNProblem
from repro.core.result import MaxBRkNNResult
from repro.engine.pipeline import (
    GridSearchPipeline,
    MaxFirstPipeline,
    MaxOverlapPipeline,
    ReferencePipeline,
    ShardedMaxFirstPipeline,
    SolverPipeline,
)
from repro.engine.report import RunReport
from repro.engine.sharded import ShardedMaxFirst


@runtime_checkable
class Solver(Protocol):
    """What the registry hands out: a problem-level solve method."""

    def solve(self, problem: MaxBRkNNProblem) -> MaxBRkNNResult:
        ...


@dataclass(frozen=True)
class SolverCapabilities:
    """Declared properties the caller can select on.

    ``supports_k``: handles arbitrary ``k`` (all current solvers do — the
    NLC abstraction absorbs ``k`` — but a registered solver may not).
    ``supports_top_t``: can return the best ``t`` score tiers, not just
    the optimum.  ``exact``: the returned score is the true optimum
    (``gridsearch`` only lower-bounds it).
    """

    supports_k: bool = True
    supports_top_t: bool = False
    exact: bool = True


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry."""

    name: str
    factory: Callable[..., Solver]
    pipeline: type[SolverPipeline] | None = None
    capabilities: SolverCapabilities = field(
        default_factory=SolverCapabilities)
    description: str = ""


_REGISTRY: dict[str, SolverSpec] = {}


def register_solver(name: str, factory: Callable[..., Solver], *,
                    pipeline: type[SolverPipeline] | None = None,
                    supports_k: bool = True, supports_top_t: bool = False,
                    exact: bool = True, description: str = "",
                    replace: bool = False) -> SolverSpec:
    """Register ``factory`` under ``name``; returns the stored spec."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"solver {name!r} is already registered "
                         "(pass replace=True to override)")
    spec = SolverSpec(
        name=name, factory=factory, pipeline=pipeline,
        capabilities=SolverCapabilities(
            supports_k=supports_k, supports_top_t=supports_top_t,
            exact=exact),
        description=description)
    _REGISTRY[name] = spec
    return spec


def unregister_solver(name: str) -> None:
    """Remove a registration (test hygiene for mock solvers)."""
    _REGISTRY.pop(name, None)


def get_solver_spec(name: str) -> SolverSpec:
    """Look up a spec; unknown names raise with the known names listed."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown solver {name!r}; registered solvers: {known}"
        ) from None


def solver_names(*, exact_only: bool = False) -> tuple[str, ...]:
    """Registered names, sorted; optionally only the exact solvers."""
    names = (name for name, spec in _REGISTRY.items()
             if not exact_only or spec.capabilities.exact)
    return tuple(sorted(names))


def create_solver(name: str, **options: Any) -> Solver:
    """Instantiate the named solver with ``options``."""
    return get_solver_spec(name).factory(**options)


def create_pipeline(name: str, **options: Any) -> SolverPipeline:
    """Instantiate the named solver's staged pipeline."""
    spec = get_solver_spec(name)
    if spec.pipeline is None:
        raise ValueError(f"solver {name!r} has no staged pipeline")
    return spec.pipeline(**options)


def run_pipeline(name: str, problem: MaxBRkNNProblem,
                 **options: Any) -> tuple[MaxBRkNNResult, RunReport]:
    """Resolve, build, and run the named solver's staged pipeline.

    The uniform engine entry point: returns the solver's result plus the
    per-stage instrumentation record.
    """
    return create_pipeline(name, **options).run(problem)


# ---------------------------------------------------------------------- #
# Built-in registrations
# ---------------------------------------------------------------------- #

register_solver(
    "maxfirst", MaxFirst, pipeline=MaxFirstPipeline,
    supports_top_t=True, exact=True,
    description="Quadtree best-first search (the paper's algorithm).")

register_solver(
    "maxfirst-sharded", ShardedMaxFirst, pipeline=ShardedMaxFirstPipeline,
    supports_top_t=False, exact=True,
    description="MaxFirst with tile-sharded parallel Phase I.")

register_solver(
    "maxoverlap", MaxOverlap, pipeline=MaxOverlapPipeline,
    supports_top_t=False, exact=True,
    description="Intersection-point enumeration (Wong et al. 2009).")

register_solver(
    "gridsearch", GridSearch, pipeline=GridSearchPipeline,
    supports_top_t=False, exact=False,
    description="Dense-lattice sampling baseline (lower bound).")

register_solver(
    "reference", Reference, pipeline=ReferencePipeline,
    supports_top_t=False, exact=True,
    description="Brute-force candidate enumeration (test ground truth).")
