"""Staged solver pipelines with uniform instrumentation.

Every solver run decomposes into the same six stages (:data:`~repro.engine.report.STAGES`):

``prepare``
    Construct/validate the solver from its options.
``build_nlcs``
    Problem → scored NLC set (shared pre-processing of every solver).
``index``
    Build the spatial index the search consults (classification backend,
    bucket grid, shard plan).
``search``
    The solver's core search (Phase I, candidate-point scan, lattice, ...).
``refine``
    Grow/validate the final regions (Phase II).
``finalize``
    Assemble the :class:`~repro.core.result.MaxBRkNNResult` and flatten the
    solver's counters into the report.

A pipeline wires one solver's *public staged pieces* (``run_phase1`` /
``build_regions``, ``build_index`` / ``search`` / ...) into that frame —
no solver logic is duplicated here — and times each stage into a
:class:`~repro.engine.report.RunReport`.  Degenerate instances (no NLCs)
set the result in ``build_nlcs``; later stages are skipped and the report
simply lacks their timings.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any

from repro.baselines.gridsearch import GridSearch
from repro.baselines.maxoverlap import MaxOverlap, MaxOverlapResult, \
    MaxOverlapStats
from repro.baselines.reference import Reference
from repro.core.bounds import make_backend
from repro.core.maxfirst import MaxFirst
from repro.core.nlc import build_knn_tree, build_nlcs, nlc_space
from repro.core.problem import MaxBRkNNProblem
from repro.core.quadrant import MAXFIRST_COUNTER_KEYS, MaxFirstStats
from repro.core.result import MaxBRkNNResult
from repro.engine.report import RunReport, STAGES
from repro.engine.sharded import ShardedMaxFirst
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


class PipelineContext:
    """Mutable scratch state threaded through the stages of one run.

    Beyond the three fixed fields, each pipeline hands stage products to
    later stages through the declared scratch slots below; they are
    deliberately loose (``Any``) because their concrete types are
    per-solver (e.g. ``grid`` is a bucket grid for MaxOverlap and unused
    elsewhere).
    """

    # -- stage products (set by one stage, consumed by a later one) ----- #
    nlcs: Any
    space: Any
    resolution: Any
    backend: Any
    accepted: Any
    max_min: Any
    stats: Any
    regions: Any
    plan: Any
    outputs: Any
    tol: Any
    grid: Any
    search: Any
    inner: Any
    store_owner: Any

    def __init__(self, problem: MaxBRkNNProblem,
                 report: RunReport) -> None:
        self.problem = problem
        self.result: MaxBRkNNResult | None = None
        self.report = report


class SolverPipeline:
    """Base staged pipeline: runs the stages in order, timing each.

    Subclasses override the stage methods they need; unused stages default
    to no-ops and show up in the report with (near-)zero cost.  Once a
    stage sets ``ctx.result`` (degenerate instances), the remaining stages
    short-circuit straight to ``finalize``.
    """

    #: Registry name reported in the RunReport.
    name = "solver"

    #: The solver's own stable counter-key set (Phase I stats for
    #: MaxFirst, pair/coverage counts for MaxOverlap, ...).  ``run``
    #: zero-fills these keys — plus the observability registry's
    #: :data:`repro.obs.metrics.COUNTER_KEYS` — into every report, so
    #: degenerate no-NLC instances carry the full schema instead of a
    #: silently empty dict.
    counter_keys: tuple[str, ...] = ()

    def __init__(self, **options: Any) -> None:
        self.options = dict(options)
        #: Requested NLC storage backend (``"ram"`` / ``"shm"`` /
        #: ``"memmap"``), popped here so solver constructors never see
        #: it; ``None`` defers to ``REPRO_STORE`` and then ``"ram"``.
        self.store_request: str | None = self.options.pop("store", None)

    def run(self, problem: MaxBRkNNProblem
            ) -> tuple[MaxBRkNNResult, RunReport]:
        """Execute all stages on ``problem``; return (result, report)."""
        report = RunReport(solver=self.name)
        if self.options:
            report.meta["options"] = dict(self.options)
        report.meta["n_customers"] = problem.n_customers
        report.meta["n_sites"] = problem.n_sites
        report.meta["k"] = problem.k
        ctx = PipelineContext(problem, report)
        obs_before = obs_metrics.REGISTRY.snapshot()
        try:
            with span(f"solve/{self.name}"):
                for stage in STAGES:
                    if ctx.result is not None and stage != "finalize":
                        continue
                    t0 = time.perf_counter()
                    with span(f"pipeline/{stage}"):
                        getattr(self, stage)(ctx)
                    report.record_stage(stage, time.perf_counter() - t0)
        finally:
            self.cleanup(ctx)
        if ctx.result is None:
            raise RuntimeError(
                f"pipeline {self.name!r} finished without a result")
        report.score = ctx.result.score
        self._drain_observability(report, obs_before)
        return ctx.result, report

    def _drain_observability(self, report: RunReport,
                             before: dict[str, int]) -> None:
        """Fold the observability registry into the report.

        The solver's own counter keys stay first and keep their values;
        the registry's keys follow, zero-filled so the full schema is
        present even when an instrument never fired (degenerate
        instances, baseline solvers with no indexed search).
        """
        counters: dict[str, float] = dict.fromkeys(self.counter_keys, 0)
        counters.update(obs_metrics.zeroed_counters())
        counters.update(report.counters)
        counters.update(obs_metrics.REGISTRY.delta_since(before))
        report.counters = counters
        report.gauges.update(obs_metrics.REGISTRY.gauges_snapshot())
        rss = _peak_rss_bytes()
        if rss is not None:
            report.gauges["peak_rss_bytes"] = rss

    # -- default stages (no-ops) --------------------------------------- #

    def prepare(self, ctx: PipelineContext) -> None:
        pass

    def build_nlcs(self, ctx: PipelineContext) -> None:
        pass

    def index(self, ctx: PipelineContext) -> None:
        pass

    def search(self, ctx: PipelineContext) -> None:
        pass

    def refine(self, ctx: PipelineContext) -> None:
        pass

    def finalize(self, ctx: PipelineContext) -> None:
        pass

    def cleanup(self, ctx: PipelineContext) -> None:
        """Release solver-held resources (worker pools, stores).

        Runs after the stage loop on both the success and the exception
        path — pipelines that acquire OS-level resources must override
        this (calling ``super().cleanup``) rather than rely on
        ``finalize``, which a raising stage skips.  The base version
        unlinks the store :meth:`_publish_store` opened; the result's
        attached views stay readable — the OS keeps the mapped pages
        alive until the views die.
        """
        owner = getattr(ctx, "store_owner", None)
        if owner is not None:
            ctx.store_owner = None
            from repro import store as nlc_store

            nlc_store.detach()
            owner.close()

    def _publish_store(self, ctx: PipelineContext) -> None:
        """Move the built NLC set into the requested storage backend.

        With ``store="shm"`` / ``"memmap"`` the SoA arrays are
        published once and every later stage reads zero-copy views
        over the segment / paged file; ``"ram"`` (the default) keeps
        the in-process arrays untouched.  A solver exposing an
        ``external_store`` slot (sharded pool mode) reuses the
        published handle as its transport instead of publishing a
        second copy.
        """
        from repro import store as nlc_store

        name = nlc_store.resolve_store_name(self.store_request)
        ctx.report.meta["store"] = name
        if name == "ram" or len(ctx.nlcs) == 0:
            return
        owner = nlc_store.publish(ctx.nlcs, name)
        ctx.store_owner = owner
        ctx.nlcs = nlc_store.attach(owner.handle)
        solver = getattr(self, "solver", None)
        if hasattr(solver, "external_store"):
            solver.external_store = owner


def _peak_rss_bytes() -> float | None:
    """Process peak resident-set size in bytes, or None where the
    ``resource`` module is unavailable (non-POSIX platforms)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    return float(peak * scale)


class _NlcStageMixin:
    """Shared ``build_nlcs`` stage: every solver starts from the NLC set."""

    #: (sites, method, tree) of the last build, reused when a pipeline
    #: instance runs repeatedly over the same site set (benchmark
    #: repeats, parameter sweeps).  Holding the sites array keeps its
    #: identity stable for the ``is`` check.
    _site_tree_cache: tuple[Any, str, Any] | None = None

    def _site_tree(self, ctx: PipelineContext, method: str) -> Any:
        cached = self._site_tree_cache
        sites = ctx.problem.sites
        if cached is not None and cached[0] is sites and cached[1] == method:
            return cached[2]
        tree = build_knn_tree(sites, method)
        self._site_tree_cache = (sites, method, tree)
        return tree

    def _build_nlcs_stage(self, ctx: PipelineContext, *,
                          method: str = "auto",
                          keep_zero_score: bool = False,
                          degenerate_stats: MaxFirstStats | None = None
                          ) -> None:
        ctx.nlcs = build_nlcs(ctx.problem, method=method,
                              keep_zero_score=keep_zero_score,
                              tree=self._site_tree(ctx, method))
        ctx.report.meta["n_nlcs"] = len(ctx.nlcs)
        self._publish_store(ctx)
        if len(ctx.nlcs) == 0:
            # Legal degenerate instance (e.g. all weights zero): short-
            # circuit to finalize with an empty result.
            ctx.result = MaxBRkNNResult(
                score=0.0, regions=(), nlcs=ctx.nlcs,
                space=ctx.problem.data_bounds(), stats=degenerate_stats)


class MaxFirstPipeline(_NlcStageMixin, SolverPipeline):
    """MaxFirst through the staged frame.

    ``index`` builds the classification backend, ``search`` is Phase I
    (:meth:`MaxFirst.run_phase1`), ``refine`` is Phase II
    (:meth:`MaxFirst.build_regions`).  Counters are the Phase I stats.
    """

    name = "maxfirst"
    counter_keys = MAXFIRST_COUNTER_KEYS

    def prepare(self, ctx: PipelineContext) -> None:
        self.solver = MaxFirst(**self.options)

    def build_nlcs(self, ctx: PipelineContext) -> None:
        self._build_nlcs_stage(
            ctx, method=self.solver.nlc_method,
            keep_zero_score=self.solver.keep_zero_score_nlcs,
            degenerate_stats=MaxFirstStats())

    def index(self, ctx: PipelineContext) -> None:
        ctx.space = nlc_space(ctx.nlcs)
        ctx.resolution = (max(ctx.space.width, ctx.space.height)
                          * self.solver.resolution_fraction)
        ctx.backend = make_backend(self.solver.backend_name, ctx.nlcs,
                                   graze_tol=ctx.resolution)
        ctx.report.meta["backend"] = self.solver.backend_name

    def search(self, ctx: PipelineContext) -> None:
        ctx.accepted, ctx.max_min, ctx.stats = self.solver.run_phase1(
            ctx.nlcs, ctx.space, backend=ctx.backend,
            resolution=ctx.resolution)

    def refine(self, ctx: PipelineContext) -> None:
        ctx.regions = self.solver.build_regions(
            ctx.accepted, ctx.max_min, ctx.nlcs)

    def finalize(self, ctx: PipelineContext) -> None:
        report = ctx.report
        if ctx.result is not None:  # degenerate: counters stay zero
            report.counters = ctx.result.stats.as_dict()
            return
        ctx.result = MaxBRkNNResult(
            score=ctx.max_min, regions=tuple(ctx.regions), nlcs=ctx.nlcs,
            space=ctx.space, stats=ctx.stats,
            timings={"nlc": report.stages.get("build_nlcs", 0.0),
                     "phase1": (report.stages.get("index", 0.0)
                                + report.stages.get("search", 0.0)),
                     "phase2": report.stages.get("refine", 0.0)})
        report.counters = ctx.stats.as_dict()


class ShardedMaxFirstPipeline(_NlcStageMixin, SolverPipeline):
    """Tile-sharded MaxFirst: ``index`` is the shard plan, ``search`` runs
    the shards, ``refine`` merges and grows regions once per cover."""

    name = "maxfirst-sharded"
    counter_keys = MAXFIRST_COUNTER_KEYS

    def prepare(self, ctx: PipelineContext) -> None:
        self.solver = ShardedMaxFirst(**self.options)

    def build_nlcs(self, ctx: PipelineContext) -> None:
        inner = self.solver._solver
        self._build_nlcs_stage(
            ctx, method=inner.nlc_method,
            keep_zero_score=inner.keep_zero_score_nlcs,
            degenerate_stats=MaxFirstStats())

    def index(self, ctx: PipelineContext) -> None:
        ctx.plan = self.solver.plan(ctx.nlcs)
        ctx.report.meta["shards"] = self.solver.shards
        ctx.report.meta["tiles"] = ctx.plan.n_shards
        ctx.report.meta["mode"] = self.solver.mode
        ctx.report.meta["oversubscribe"] = self.solver.oversubscribe
        ctx.report.meta["workers"] = (self.solver.max_workers
                                      or min(self.solver.shards,
                                             os.cpu_count() or 1))
        ctx.report.meta["shard_nlcs"] = [int(c.shape[0])
                                         for c in ctx.plan.candidates]

    def search(self, ctx: PipelineContext) -> None:
        ctx.outputs = self.solver.execute(ctx.nlcs, ctx.plan)

    def refine(self, ctx: PipelineContext) -> None:
        ctx.max_min, ctx.regions, ctx.stats = self.solver.merge(
            ctx.nlcs, ctx.outputs)

    def finalize(self, ctx: PipelineContext) -> None:
        report = ctx.report
        if ctx.result is not None:
            report.counters = ctx.result.stats.as_dict()
            return
        ctx.result = MaxBRkNNResult(
            score=ctx.max_min, regions=tuple(ctx.regions), nlcs=ctx.nlcs,
            space=ctx.plan.space, stats=ctx.stats,
            timings={"nlc": report.stages.get("build_nlcs", 0.0),
                     "phase1": (report.stages.get("index", 0.0)
                                + report.stages.get("search", 0.0)),
                     "phase2": report.stages.get("refine", 0.0)})
        report.counters = ctx.stats.as_dict()

    def cleanup(self, ctx: PipelineContext) -> None:
        solver = getattr(self, "solver", None)
        if solver is not None:
            solver.external_store = None
            solver.close()
        super().cleanup(ctx)


class MaxOverlapPipeline(_NlcStageMixin, SolverPipeline):
    """MaxOverlap through the staged frame.

    ``index`` is the bucket grid, ``search`` the candidate-point scan
    (steps (c)-(e)), ``refine`` grows the best covers' regions.
    """

    name = "maxoverlap"
    counter_keys = ("nlc_count", "candidate_pairs", "intersecting_pairs",
                    "intersection_points", "coverage_tests",
                    "distinct_candidates")

    def prepare(self, ctx: PipelineContext) -> None:
        self.solver = MaxOverlap(**self.options)

    def build_nlcs(self, ctx: PipelineContext) -> None:
        self._build_nlcs_stage(
            ctx, method=self.solver.nlc_method,
            keep_zero_score=self.solver.keep_zero_score_nlcs)
        if ctx.result is not None:
            ctx.result = MaxOverlapResult(
                score=0.0, regions=(), nlcs=ctx.nlcs,
                space=ctx.problem.data_bounds(), stats=None,
                overlap_stats=MaxOverlapStats(0, 0, 0, 0, 0, 0))

    def index(self, ctx: PipelineContext) -> None:
        ctx.space = nlc_space(ctx.nlcs)
        ctx.tol = self.solver.resolve_tol(ctx.space)
        ctx.grid = self.solver.build_index(ctx.nlcs)

    def search(self, ctx: PipelineContext) -> None:
        ctx.search = self.solver.search(ctx.nlcs, ctx.grid, ctx.tol)

    def refine(self, ctx: PipelineContext) -> None:
        ctx.regions = self.solver.build_regions(
            ctx.nlcs, ctx.grid, ctx.search, ctx.tol)

    def finalize(self, ctx: PipelineContext) -> None:
        report = ctx.report
        if ctx.result is not None:
            report.counters = _overlap_counters(ctx.result.overlap_stats)
            return
        search = ctx.search
        # Preserve solve_nlcs's historical timing split: pair work spans
        # grid construction plus search's enumeration/dedup prefix.
        pairs = report.stages.get("index", 0.0) + search.pairs_seconds
        coverage = report.stages.get("search", 0.0) - search.pairs_seconds
        ctx.result = MaxOverlapResult(
            score=search.best, regions=tuple(ctx.regions), nlcs=ctx.nlcs,
            space=ctx.space, stats=None, overlap_stats=search.stats,
            timings={"nlc": report.stages.get("build_nlcs", 0.0),
                     "pairs": pairs, "coverage": coverage,
                     "region": report.stages.get("refine", 0.0)})
        report.counters = _overlap_counters(search.stats)


class GridSearchPipeline(_NlcStageMixin, SolverPipeline):
    """Lattice baseline: the whole scan is the ``search`` stage."""

    name = "gridsearch"
    counter_keys = ("samples",)

    def prepare(self, ctx: PipelineContext) -> None:
        self.solver = GridSearch(**self.options)

    def build_nlcs(self, ctx: PipelineContext) -> None:
        self._build_nlcs_stage(ctx)

    def index(self, ctx: PipelineContext) -> None:
        ctx.space = nlc_space(ctx.nlcs)

    def search(self, ctx: PipelineContext) -> None:
        ctx.inner = self.solver.solve_nlcs(ctx.nlcs, ctx.space)

    def finalize(self, ctx: PipelineContext) -> None:
        report = ctx.report
        if ctx.result is not None:
            return
        inner = ctx.inner
        ctx.result = MaxBRkNNResult(
            score=inner.score, regions=inner.regions, nlcs=ctx.nlcs,
            space=ctx.space,
            timings={"nlc": report.stages.get("build_nlcs", 0.0),
                     "search": report.stages.get("search", 0.0)})
        report.counters = {
            "samples": self.solver.samples_per_axis ** 2,
        }


class ReferencePipeline(_NlcStageMixin, SolverPipeline):
    """Brute-force ground truth: the refinement scan is ``search``."""

    name = "reference"
    counter_keys = ("optimal_locations",)

    def prepare(self, ctx: PipelineContext) -> None:
        self.solver = Reference(**self.options)

    def build_nlcs(self, ctx: PipelineContext) -> None:
        self._build_nlcs_stage(ctx)

    def index(self, ctx: PipelineContext) -> None:
        ctx.space = nlc_space(ctx.nlcs)

    def search(self, ctx: PipelineContext) -> None:
        ctx.inner = self.solver.solve_nlcs(ctx.nlcs, ctx.space)

    def finalize(self, ctx: PipelineContext) -> None:
        report = ctx.report
        if ctx.result is not None:
            return
        inner = ctx.inner
        ctx.result = MaxBRkNNResult(
            score=inner.score, regions=inner.regions, nlcs=ctx.nlcs,
            space=ctx.space,
            timings={"nlc": report.stages.get("build_nlcs", 0.0),
                     "search": report.stages.get("search", 0.0)})
        report.counters = {"optimal_locations": len(inner.regions)}


def _overlap_counters(stats: MaxOverlapStats | None) -> dict[str, int]:
    if stats is None:
        return {}
    return {
        "nlc_count": stats.nlc_count,
        "candidate_pairs": stats.candidate_pairs,
        "intersecting_pairs": stats.intersecting_pairs,
        "intersection_points": stats.intersection_points,
        "coverage_tests": stats.coverage_tests,
        "distinct_candidates": stats.distinct_candidates,
    }
