"""Persistent worker pool for sharded Phase I.

One :class:`PersistentPool` lives per :class:`~repro.engine.sharded.ShardedMaxFirst`
instance and is reused across tiles, pipeline stages, and repeated
``solve()`` calls — process startup (interpreter boot plus the numpy and
kernel imports) is paid once, not per solve.  The start method is
``forkserver`` where available (workers inherit a warmed template
process, immune to the parent's thread state) with a ``spawn`` fallback;
``fork`` is deliberately not used — a forked worker would snapshot the
parent's metrics registry and tracer mid-solve.

Workers never receive NLC payloads: tiles arrive as a few-dozen-byte
job tuple carrying a storage-backend handle (:mod:`repro.store`) plus
the tile's candidate row window ``[lo, hi)``, and each worker attaches
read-only views over *just that slice* — an ``shm``/``memmap`` worker
maps O(hi - lo) bytes, not the whole store.  (A ``ram`` handle ships
the arrays by value; it is the compatibility transport, not the
default.)  Tile jobs are submitted individually to the executor, whose
single internal call queue is the work-stealing mechanism: any idle
worker pulls the next tile, so a dense tile cannot straggle the run
behind a static assignment.

Worker-local seed covers
------------------------
Each worker accumulates the covers it accepts during one epoch and
seeds them into its later tiles (Theorem 3 prunes a quadrant whose
``Q.I`` is a subset of a known cover).  With one worker this reproduces
the serial schedule exactly — tile ``i`` is seeded with every cover
tiles ``0..i-1`` accepted — which is what keeps serial and pool merged
counters bit-identical at ``max_workers=1``.  With more workers each
worker seeds only its own history; results are still exact (seeds only
ever *prune* work), merely the work counters shift.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs import metrics as _obs_metrics
from repro.obs.trace import TRACER

__all__ = ["PersistentPool", "WORKER_ENTRY_POINTS", "grow_regions",
           "run_phase2_pool", "serve_query_batch", "solve_tile"]

#: Functions that run inside pool worker processes.  The analysis
#: layer's call graph roots its worker-reachability marking here (in
#: addition to detecting direct ``submit(...)`` first arguments), so
#: keep this tuple in sync when adding a worker entry.
WORKER_ENTRY_POINTS: tuple[str, ...] = (
    "_init_pool_worker", "solve_tile", "grow_regions",
    "serve_query_batch")

#: Transport counter: Phase II region jobs dispatched through the pool.
#: Like ``pool_tasks`` it depends on worker topology (a serial Phase II
#: dispatches none), so it is excluded from the perf gate and identity
#: checks.
_PHASE2_POOL_TASKS = _obs_metrics.counter("phase2_pool_tasks")

# ---------------------------------------------------------------------- #
# Worker-process globals (set by the pool initializer / per-epoch)
# ---------------------------------------------------------------------- #

#: Shared Theorem-2 bound cell, installed once per worker by the pool
#: initializer.
_SHARED_BOUND: Any = None

#: This worker's seed-cover history for the current epoch:
#: ``(epoch, store_key, seeds, seen)`` — seeds live in *global* NLC
#: index space and are translated per tile (:func:`_slice_seeds`).
_EPOCH_STATE: list = [(-1, "", [], set())]


def _init_pool_worker(shared: Any) -> None:
    """Pool initializer: install the bound cell and warm the kernel.

    The warm-up import compiles/loads the batched classification kernel
    (or its numpy fallback under ``REPRO_NO_CKERNEL``) before the first
    tile arrives, so job latency never includes a compiler run.
    """
    global _SHARED_BOUND
    # repro: worker-state(the initializer is the one sanctioned writer:
    # it installs the inherited bound cell exactly once per worker,
    # before any task can run)
    _SHARED_BOUND = shared
    from repro.index._ckernel import load_quad_kernel

    load_quad_kernel()


def _shared_sync(local: float) -> float:
    """Publish ``local`` into the shared bound; return the global best."""
    shared = _SHARED_BOUND
    if shared is None:
        return local
    with shared.get_lock():
        if local > shared.value:
            shared.value = local
        return float(shared.value)


def _epoch_seeds(epoch: int, store_key: str) -> tuple[list, set]:
    """This worker's (seeds, seen) for ``epoch``, rotating stale state.

    An epoch turn also drops the previous solve's cached store
    attachments — the parent unlinks its segment/file right after the
    solve, so holding a mapping would only pin dead pages.
    """
    from repro import store as nlc_store

    prev_epoch, _prev_key, seeds, seen = _EPOCH_STATE[0]
    if prev_epoch != epoch:
        nlc_store.detach(keep=(store_key,))
        seeds, seen = [], set()
        # repro: worker-state(per-worker seed-cover history is the
        # documented design — see "Worker-local seed covers" above;
        # seeds only ever prune, so results stay exact regardless of
        # which worker accumulated what)
        _EPOCH_STATE[0] = (epoch, store_key, seeds, seen)
    return seeds, seen


def _slice_seeds(seeds: list, lo: int, hi: int) -> tuple:
    """Translate global seed covers into a tile slice's index space.

    Every member shifts by ``-lo`` in the dedupe key (out-of-window
    members go negative — they only ever feed tuple identity), while
    the third ``members`` element keeps just the maskable in-window
    part.  Cover sizes and score sums stay those of the full cover, so
    the Theorem 3 cardinality and score-sum early exits fire exactly as
    they would over the full set — which is what keeps ``tiles`` and
    one-worker ``pool`` merged counters bit-identical now that workers
    attach only a row slice.
    """
    return tuple(
        (tuple(i - lo for i in key), score,
         tuple(i - lo for i in key if lo <= i < hi))
        for key, score in seeds)


def solve_tile(job: tuple) -> tuple:
    """Worker entry: solve one tile against a slice of the NLC store.

    ``job`` ships a store handle plus the tile's candidate row window
    ``[lo, hi)``; the worker attaches read-only views over that slice
    only and runs Phase I in slice-local indices — incoming seed covers
    shift by ``-lo`` (:func:`_slice_seeds`), accepted covers shift back
    before shipping.  Returns ``(tile_index, worker_pid, entries,
    max_min, stats, obs_counters, obs_gauges, spans)``; ``entries``
    carry global NLC indices so the parent's merge is mode-independent.
    """
    (epoch, handle, tile_tuple, lo, hi, tile_index, resolution,
     options, sync_interval, trace_enabled, fail) = job
    from repro import store as nlc_store
    from repro.core.maxfirst import MaxFirst
    from repro.engine.sharded import _TileBackend, _extend_seed_covers
    from repro.geometry.rect import Rect
    from repro.store import sanitize

    # Persistent workers carry the previous task's tracer records —
    # reset per task so each shipped span set covers exactly this tile.
    TRACER.reset(enabled=bool(trace_enabled))
    with sanitize.task("solve_tile"), _obs_metrics.REGISTRY.isolated() as box:
        with TRACER.span(f"shard/tile{tile_index}"):
            seeds, seen = _epoch_seeds(epoch, handle[1])
            nlcs = nlc_store.attach_slice(handle, lo, hi)
            if fail:
                raise RuntimeError(
                    f"injected failure in tile {tile_index} (test hook)")
            tile = Rect(*tile_tuple)
            # Halo candidates are recomputed here over the slice — bit-
            # identical to the parent's plan minus ``lo``, since every
            # global candidate lies inside the shipped window and the
            # predicate is uncounted in both places.  Cheaper than
            # pickling an index array per tile, and it keeps the job
            # payload O(1).
            candidates = nlcs.rects_intersecting([tile])[0]
            solver = MaxFirst(**options)
            backend = _TileBackend(nlcs, resolution, candidates)
            initial = _shared_sync(0.0)
            accepted, max_min, stats = solver.run_phase1(
                nlcs, tile, backend=backend, resolution=resolution,
                initial_bound=initial, bound_sync=_shared_sync,
                sync_interval=sync_interval,
                seed_covers=_slice_seeds(seeds, lo, hi))
            _shared_sync(max_min)
            entries = [(quad.min_hat, quad.containing + lo, quad.rect)
                       for quad in accepted]
            _extend_seed_covers(seeds, seen, entries)
    spans = ([record.as_dict() for record in TRACER.drain()]
             if trace_enabled else [])
    return (tile_index, os.getpid(), entries, max_min, stats.as_dict(),
            dict(box["counters"]), dict(box["gauges"]), spans)


def grow_regions(job: tuple) -> tuple:
    """Worker entry: grow Phase II regions against the published store.

    ``job`` is ``(handle, entries, trace_enabled)`` with ``entries`` a
    list of ``(rect_tuple, cover_tuple, score)`` triples.  Returns
    ``(regions, obs_counters, obs_gauges, spans)``;
    ``compute_optimal_region`` runs exactly as in the serial path, so
    the merged ``region_grows`` / ``phase2_clips`` counters stay
    bit-identical to a serial Phase II.
    """
    (handle, entries, trace_enabled) = job
    import numpy as np

    from repro import store as nlc_store
    from repro.core.region import compute_optimal_region
    from repro.geometry.rect import Rect
    from repro.store import sanitize

    TRACER.reset(enabled=bool(trace_enabled))
    with sanitize.task("grow_regions"), \
            _obs_metrics.REGISTRY.isolated() as box:
        with TRACER.span("phase2/pool_batch", regions=len(entries)):
            # Keep only this solve's store mapped (same rotation the
            # Phase I epoch turn performs); the attachment cache makes
            # every job after a worker's first a pure cache hit.
            nlc_store.detach(keep=(handle[1],))
            nlcs = nlc_store.attach(handle)
            regions = [
                compute_optimal_region(
                    Rect(*rect_tuple),
                    np.asarray(cover, dtype=np.int64), nlcs,
                    score=score)
                for rect_tuple, cover, score in entries
            ]
    spans = ([record.as_dict() for record in TRACER.drain()]
             if trace_enabled else [])
    return (regions, dict(box["counters"]), dict(box["gauges"]), spans)


#: This worker's cached serve instance: ``(instance_key, problem,
#: ranks, nlcs)``.  One instance per worker — a long-lived query
#: service typically serves one published dataset per pool, and a
#: single slot makes the store-attachment rotation trivial.
_SERVE_STATE: list = [("", None, None, None)]


def serve_query_batch(job: tuple) -> tuple:
    """Worker entry: answer one instance-group of serve requests.

    ``job`` is ``(instance_key, payload, handle, space_tuple,
    request_docs, certificate, trace_enabled)`` — the tiny problem
    payload plus the NLC store *handle*; NLC bytes never ride in the
    job.  The worker's first batch for an instance rebuilds the problem
    and the customer→site rank matrix once and attaches the published
    store zero-copy (``shm``/``memmap``); every later batch is a pure
    cache hit.  Requests are executed by the same
    :func:`repro.serve.service.execute_requests` the in-process path
    uses — including ``heatmap`` tile fills, whose Phase I tessellation
    capture and rasterisation run worker-side against the mapped store
    (the ``heatmap_tiles_filled`` counter rides home in
    ``obs_counters``) — so pooled responses are bit-identical to
    in-process ones.  The parent's result cache sits *above* this entry
    point: only cache misses are ever shipped to a worker.  Returns
    ``(response_docs, new_certificate, obs_counters, obs_gauges,
    spans)``.
    """
    (instance_key, payload, handle, space_tuple, request_docs,
     certificate, trace_enabled) = job
    from repro import store as nlc_store
    from repro.geometry.rect import Rect
    from repro.serve.instance import problem_from_payload
    from repro.serve.protocol import decode_request, encode_response
    from repro.serve.service import execute_requests
    from repro.store import sanitize

    TRACER.reset(enabled=bool(trace_enabled))
    with sanitize.task("serve_query_batch"), \
            _obs_metrics.REGISTRY.isolated() as box:
        with TRACER.span("serve/batch", requests=len(request_docs)):
            cached_key, problem, ranks, nlcs = _SERVE_STATE[0]
            if cached_key != instance_key:
                from repro.core.queries import knn_sites

                # Rotate: keep only this instance's store mapped (same
                # idiom as the Phase I epoch turn / grow_regions).
                if handle is not None:
                    nlc_store.detach(keep=(handle[1],))
                    nlcs = nlc_store.attach(handle)
                else:
                    nlc_store.detach()
                    nlcs = None
                problem = problem_from_payload(payload)
                ranks = knn_sites(problem)
                # repro: worker-state(single-slot per-worker instance
                # cache: the rank matrix and problem are pure functions
                # of the shipped payload, so a hit and a rebuild answer
                # identically — caching only skips the recompute)
                _SERVE_STATE[0] = (instance_key, problem, ranks, nlcs)
            space = Rect(*space_tuple)
            requests = [decode_request(doc) for doc in request_docs]
            responses, new_certificate = execute_requests(
                problem, ranks, nlcs, space, requests, certificate)
            docs = [encode_response(response) for response in responses]
    spans = ([record.as_dict() for record in TRACER.drain()]
             if trace_enabled else [])
    return (docs, new_certificate, dict(box["counters"]),
            dict(box["gauges"]), spans)


def run_phase2_pool(pool: "PersistentPool", nlcs: Any,
                    quads: list, store: str | None = None) -> list:
    """Grow the regions of ``quads`` through a worker pool.

    ``quads`` is a list of ``(rect_tuple, cover_tuple, score)`` triples
    in the order the serial Phase II would process them; the returned
    regions keep that order, so the caller's sort/top-t handling is
    topology-independent.  The NLC set is published once through the
    storage backend named by ``store`` (default ``shm``; ``REPRO_STORE``
    overrides), one job is dispatched per region (the executor queue is
    the load balancer — region growth cost varies wildly with cover
    size), and worker counters/gauges/spans are merged back exactly as
    the Phase I shard merge does.
    """
    from repro import store as nlc_store
    from repro.obs.trace import span

    backend_name = nlc_store.resolve_store_name(store, default="shm")
    trace_enabled = TRACER.enabled
    with span("phase2/store_publish", nlcs=len(nlcs),
              store=backend_name):
        owner = nlc_store.publish(nlcs, backend_name)
    handle = owner.handle
    _PHASE2_POOL_TASKS.add(len(quads))
    launch_ts = TRACER.now() if trace_enabled else 0.0
    futures = []
    try:
        for entry in quads:
            job = (handle, [entry], trace_enabled)
            futures.append(pool.submit_call(grow_regions, job))
        with span("phase2/pool_wait", regions=len(quads)):
            results = [future.result() for future in futures]
    finally:
        for future in futures:
            future.cancel()
        owner.close()
    regions: list = []
    for i, (regs, counters, gauges, spans) in enumerate(results):
        regions.extend(regs)
        _obs_metrics.REGISTRY.merge_counts(counters)
        _obs_metrics.REGISTRY.merge_gauges_max(gauges)
        if trace_enabled:
            TRACER.ingest(spans, pid=i + 1, ts_offset=launch_ts)
    return regions


class PersistentPool:
    """Lazily-started, reusable process pool with a shared bound cell.

    The executor is created on first :meth:`submit` and survives until
    :meth:`close` (or :meth:`discard` after a worker death).  The
    Theorem-2 bound cell is allocated once with the multiprocessing
    context so it is inheritable under both start methods.
    """

    def __init__(self, max_workers: int, start_method: str | None = None
                 ) -> None:
        import multiprocessing as mp

        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = ("forkserver" if "forkserver" in methods
                            else "spawn")
        self.max_workers = max_workers
        self.start_method = start_method
        self._ctx = mp.get_context(start_method)
        self._bound = self._ctx.Value("d", 0.0)
        self._executor: Any = None

    # -- lifecycle ----------------------------------------------------- #

    @property
    def running(self) -> bool:
        return self._executor is not None

    def executor(self) -> Any:
        """The live executor, starting it on first use."""
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self._ctx,
                initializer=_init_pool_worker, initargs=(self._bound,))
        return self._executor

    def discard(self) -> None:
        """Drop a broken executor so the next use starts a fresh one."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down (idempotent); reusable after via lazy start."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    # -- per-solve state ------------------------------------------------ #

    def reset_bound(self, value: float) -> None:
        """Seed the shared Theorem-2 cell for a new solve."""
        with self._bound.get_lock():
            self._bound.value = float(value)

    def submit(self, job: tuple) -> Any:
        """Queue one tile job; any idle worker will pull it."""
        return self.executor().submit(solve_tile, job)

    def submit_call(self, fn: Any, job: tuple) -> Any:
        """Queue an arbitrary worker entry (e.g. :func:`grow_regions`)."""
        return self.executor().submit(fn, job)
