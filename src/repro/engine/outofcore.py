"""Out-of-core tile-at-a-time solve over a published NLC store.

The scale tier: solve a MaxBRkNN instance whose NLC set lives in a
:mod:`repro.store` backend (typically ``memmap``) without ever holding
all rows in memory.  Planning scans the store in fixed-size row chunks
(peak RSS O(chunk)), and the solve visits one tile at a time through
:func:`repro.store.attach_slice` windows — the same slice-local index
translation the pool workers use (:mod:`repro.engine.pool`), driven
in-process.

Exactness
---------
The streamed solve replays :class:`~repro.engine.sharded.ShardedMaxFirst`'s
``mode="tiles"`` schedule bit for bit:

* the data space is the chunk-wise union of slice bounding boxes —
  float min/max commutes with chunking, so the box (and the resolution
  derived from it) is identical to the in-RAM ``nlc_space``;
* each tile's candidate row window covers *every* disk intersecting
  the tile, so slice-local classification sums the same scores in the
  same ascending index order as a full-set run (see
  ``engine/pool.py`` for why the translated seed covers also prune
  identically);
* the per-tile seed bound is the root ``m̂in`` classified over the
  tile's own window — equal to the planner's full-set root classify.

Scores, regions, and the merged Phase I stats are therefore identical
to the in-RAM tiles-mode solve (asserted by
``tests/engine/test_outofcore.py``).  Only the *planning-stage* kernel
counters may differ: the chunked scan classifies in different batch
shapes than one full-set call.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro import store as nlc_store
from repro.core.maxfirst import MaxFirst
from repro.core.quadrant import MaxFirstStats
from repro.core.region import compute_optimal_region
from repro.core.result import MaxBRkNNResult
from repro.engine.pool import _slice_seeds
from repro.engine.sharded import (_SerialBound, _ShardOutput,
                                  _TileBackend, _extend_seed_covers,
                                  tile_grid)
from repro.geometry.rect import Rect
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span
from repro.store.base import StoreHandle

__all__ = ["StreamPlan", "plan_streamed", "solve_streamed"]

#: Same deterministic sharding-layer counters the in-RAM engine records
#: (see ``engine/sharded.py``), so streamed reports keep the schema.
_SHARD_TASKS = _obs_metrics.counter("shard_tasks")
_HALO_ASSIGNMENTS = _obs_metrics.counter("halo_assignments")

#: Default row-chunk size for the planning scans: 256 Ki rows map 12 MB
#: of SoA per window, and each window's views die before the next
#: attaches, so scan RSS stays O(chunk) whatever the store length.
_DEFAULT_CHUNK_ROWS = 262_144


@dataclass(frozen=True)
class StreamPlan:
    """The tile layout of one streamed solve.

    ``tiles``, ``windows`` and ``candidate_counts`` are parallel:
    tile ``i`` is solved over the store rows ``windows[i] = (lo, hi)``,
    of which ``candidate_counts[i]`` actually intersect the tile.
    Tiles no disk reaches are dropped at planning time, exactly as
    :meth:`~repro.engine.sharded.ShardedMaxFirst.plan` drops them.
    """

    space: Rect
    resolution: float
    tiles: tuple[Rect, ...]
    windows: tuple[tuple[int, int], ...]
    candidate_counts: tuple[int, ...]
    seed_bound: float

    @property
    def n_shards(self) -> int:
        return len(self.tiles)


def _chunk_bounds(length: int, chunk_rows: int) -> Iterator[tuple[int, int]]:
    for lo in range(0, length, chunk_rows):
        yield lo, min(lo + chunk_rows, length)


def plan_streamed(handle: StoreHandle, shards: int, *,
                  resolution_fraction: float | None = None,
                  chunk_rows: int = _DEFAULT_CHUNK_ROWS) -> StreamPlan:
    """Chunk-scan a published store into a :class:`StreamPlan`.

    Two O(chunk)-memory passes over the store: the first unions slice
    bounding boxes into the data space, the second assigns each tile
    its candidate row window; a final per-tile root classification over
    each window yields the Theorem 2 seed bound.  Every quantity is
    bit-identical to the in-RAM planner's (see the module docstring).
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    length = int(handle[2])
    if length == 0:
        raise ValueError("cannot plan over an empty NLC store")
    if resolution_fraction is None:
        resolution_fraction = MaxFirst().resolution_fraction

    with span("stream/scan_bbox", rows=length):
        xmin = ymin = np.inf
        xmax = ymax = -np.inf
        for lo, hi in _chunk_bounds(length, chunk_rows):
            # repro: store-lifecycle(memmap slice attaches are uncached
            # by design — the mapping dies with the views at the end of
            # this statement, which is the O(chunk) RSS contract)
            box = nlc_store.attach_slice(handle, lo, hi).bounding_box()
            xmin, ymin = min(xmin, box.xmin), min(ymin, box.ymin)
            xmax, ymax = max(xmax, box.xmax), max(ymax, box.ymax)
        box = Rect(xmin, ymin, xmax, ymax)
        # nlc_space's margin, verbatim, so the space matches bit-exactly.
        margin = max(box.width, box.height, 1.0) * 1e-6
        space = box.expanded(margin)

    resolution = max(space.width, space.height) * resolution_fraction
    tiles = tile_grid(space, shards)
    n_tiles = len(tiles)

    with span("stream/scan_windows", rows=length, tiles=n_tiles):
        lo_row = [length] * n_tiles
        hi_row = [0] * n_tiles
        counts = [0] * n_tiles
        for lo, hi in _chunk_bounds(length, chunk_rows):
            # repro: store-lifecycle(uncached slice window; the views
            # die when `chunk` is rebound on the next iteration)
            chunk = nlc_store.attach_slice(handle, lo, hi)
            for t, cand in enumerate(chunk.rects_intersecting(tiles)):
                if cand.shape[0] == 0:
                    continue
                lo_row[t] = min(lo_row[t], lo + int(cand[0]))
                hi_row[t] = max(hi_row[t], lo + int(cand[-1]) + 1)
                counts[t] += int(cand.shape[0])

    kept_tiles = []
    kept_windows = []
    kept_counts = []
    for t, tile in enumerate(tiles):
        if counts[t] == 0:
            continue  # nothing can score inside this tile
        kept_tiles.append(tile)
        kept_windows.append((lo_row[t], hi_row[t]))
        kept_counts.append(counts[t])
    _HALO_ASSIGNMENTS.add(sum(kept_counts))

    # The root m̂in of a tile classified over its own window equals the
    # full-set classification: the window covers every disk that
    # intersects the tile, and the containing subset sums in the same
    # ascending row order either way.  Classification runs over just the
    # tile's candidate rows — the candidate gather extracts the identical
    # ascending subset, while the O(window) classify temps (several
    # float64 arrays per row) shrink to O(candidates).
    seed_bound = 0.0
    with span("stream/seed_bound", tiles=len(kept_tiles)):
        for tile, (lo, hi) in zip(kept_tiles, kept_windows):
            # repro: store-lifecycle(uncached slice window, dropped at
            # each rebind — planning never holds two windows at once)
            window = nlc_store.attach_slice(handle, lo, hi)
            cand = window.rects_intersecting([tile])[0]
            root = window.classify_rects([tile], candidates=cand,
                                         graze_tol=resolution)[0]
            seed_bound = max(seed_bound, float(root[3]))

    return StreamPlan(space=space, resolution=resolution,
                      tiles=tuple(kept_tiles),
                      windows=tuple(kept_windows),
                      candidate_counts=tuple(kept_counts),
                      seed_bound=seed_bound)


def solve_streamed(handle: StoreHandle, *, shards: int = 2,
                   sync_interval: int = 1024,
                   chunk_rows: int = _DEFAULT_CHUNK_ROWS,
                   plan: StreamPlan | None = None,
                   **maxfirst_options: Any) -> MaxBRkNNResult:
    """Tile-at-a-time MaxFirst over a published store, O(window) memory.

    Solves the instance whose NLC set ``handle`` points at — published
    with :func:`repro.store.publish` or streamed in through
    :func:`repro.core.nlc.build_nlcs_streaming` — visiting one tile
    window at a time.  Results (scores, regions, merged Phase I stats)
    are bit-identical to
    ``ShardedMaxFirst(shards=shards, mode="tiles")`` over the same
    rows; pass a precomputed ``plan`` to amortise the planning scans
    across repeated solves.

    ``maxfirst_options`` forward to the per-tile :class:`MaxFirst`
    (``top_t`` must stay 1, as for every sharded execution).
    """
    if maxfirst_options.get("top_t", 1) != 1:
        raise ValueError("streamed execution requires top_t == 1")
    solver = MaxFirst(**maxfirst_options)
    t0 = time.perf_counter()
    if plan is None:
        plan = plan_streamed(handle, shards,
                             resolution_fraction=solver.resolution_fraction,
                             chunk_rows=chunk_rows)
    t1 = time.perf_counter()

    _SHARD_TASKS.add(plan.n_shards)
    bound = _SerialBound(plan.seed_bound)
    seeds: list[tuple[tuple[int, ...], float]] = []
    seen: set[tuple[int, ...]] = set()
    outputs: list[_ShardOutput] = []
    for i, (tile, (lo, hi)) in enumerate(zip(plan.tiles, plan.windows)):
        with _obs_metrics.REGISTRY.isolated() as box:
            with span(f"stream/tile{i}", rows=hi - lo):
                # repro: store-lifecycle(uncached slice; the explicit
                # del below releases the window before the next tile
                # attaches — that release is the memory contract here)
                nlcs = nlc_store.attach_slice(handle, lo, hi)
                candidates = nlcs.rects_intersecting([tile])[0]
                backend = _TileBackend(nlcs, plan.resolution, candidates)
                tile_solver = MaxFirst(**maxfirst_options)
                accepted, max_min, stats = tile_solver.run_phase1(
                    nlcs, tile, backend=backend,
                    resolution=plan.resolution,
                    initial_bound=bound.get(), bound_sync=bound.sync,
                    sync_interval=sync_interval,
                    seed_covers=_slice_seeds(seeds, lo, hi))
                bound.sync(max_min)
                entries = [(quad.min_hat, quad.containing + lo, quad.rect)
                           for quad in accepted]
                _extend_seed_covers(seeds, seen, entries)
                # Release this window before the next attaches: the
                # backend's packed matrix and the slice's mapped pages
                # are O(window), and letting two tiles' copies coexist
                # would double the solve's memory high-water.
                del nlcs, candidates, backend, accepted
        outputs.append(_ShardOutput(
            entries=entries, max_min=max_min, stats=stats.as_dict(),
            obs_counters=dict(box["counters"]),
            obs_gauges=dict(box["gauges"])))
    t2 = time.perf_counter()

    max_min, regions, merged = _merge_streamed(handle, plan, outputs,
                                               solver.tie_tol)
    t3 = time.perf_counter()
    return MaxBRkNNResult(
        score=max_min, regions=tuple(regions),
        nlcs=nlc_store.attach(handle), space=plan.space, stats=merged,
        timings={"plan": t1 - t0, "phase1": t2 - t1, "phase2": t3 - t2})


def _merge_streamed(handle: StoreHandle, plan: StreamPlan,
                    outputs: list[_ShardOutput], tie_tol: float
                    ) -> tuple[float, list, MaxFirstStats]:
    """:meth:`ShardedMaxFirst.merge`, growing regions from tile slices.

    Entries are visited in tile order then acceptance order, covers
    deduplicate on first sight, and only entries within the tie
    tolerance of the global best grow regions — each grown over its own
    tile's window (the cover lies wholly inside it) with the cover
    indices translated back to store rows afterwards, so the emitted
    regions are bit-identical to a full-set Phase II.
    """
    max_min = max((out.max_min for out in outputs), default=0.0)
    tol = tie_tol * max(1.0, abs(max_min))
    regions = []
    seen_covers: set[tuple[int, ...]] = set()
    with span("stream/merge", tiles=len(outputs)):
        for out, (lo, hi) in zip(outputs, plan.windows):
            window = None
            for min_hat, cover, rect in out.entries:
                if min_hat < max_min - tol:
                    continue
                key = tuple(int(i) for i in cover)
                if key in seen_covers:
                    continue
                seen_covers.add(key)
                if window is None:
                    # repro: store-lifecycle(uncached slice, one per
                    # tile at most, dropped when `window` goes out of
                    # scope with the loop iteration)
                    window = nlc_store.attach_slice(handle, lo, hi)
                local = np.asarray(cover, dtype=np.int64) - lo
                region = compute_optimal_region(rect, local, window,
                                                score=min_hat)
                regions.append(dataclasses.replace(region, cover=key))
    regions.sort(key=lambda r: -r.score)
    merged: dict[str, int] = {}
    for out in outputs:
        for name, value in out.stats.items():
            if name == "max_depth":
                merged[name] = max(merged.get(name, 0), value)
            else:
                merged[name] = merged.get(name, 0) + value
        _obs_metrics.REGISTRY.merge_counts(out.obs_counters)
        _obs_metrics.REGISTRY.merge_gauges_max(out.obs_gauges)
    return max_min, regions, MaxFirstStats(**merged)
