"""The engine layer: solver registry, staged pipelines, sharded execution.

Three pieces (see ``DESIGN.md`` § Engine layer):

* :mod:`repro.engine.registry` — solvers resolvable by string name with
  declared capabilities (the contract layer);
* :mod:`repro.engine.pipeline` / :mod:`repro.engine.report` — the staged
  ``prepare → build_nlcs → index → search → refine → finalize`` frame with
  per-stage timings and counters in a :class:`RunReport`;
* :mod:`repro.engine.sharded` — tile-sharded parallel Phase I with
  cross-shard bound exchange.
"""

from repro.engine.pipeline import SolverPipeline
from repro.engine.registry import (
    Solver,
    SolverCapabilities,
    SolverSpec,
    create_pipeline,
    create_solver,
    get_solver_spec,
    register_solver,
    run_pipeline,
    solver_names,
    unregister_solver,
)
from repro.engine.report import STAGES, RunReport
from repro.engine.sharded import ShardedMaxFirst, ShardPlan, tile_grid

__all__ = [
    "STAGES",
    "RunReport",
    "ShardPlan",
    "ShardedMaxFirst",
    "Solver",
    "SolverCapabilities",
    "SolverPipeline",
    "SolverSpec",
    "create_pipeline",
    "create_solver",
    "get_solver_spec",
    "register_solver",
    "run_pipeline",
    "solver_names",
    "tile_grid",
    "unregister_solver",
]
