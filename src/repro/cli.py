"""Command-line interface.

Five subcommands::

    repro-maxbrknn solve --customers o.csv --sites p.csv -k 2 \
        --probability 0.8,0.2
    repro-maxbrknn generate --kind uniform -n 1000 -o points.csv --seed 7
    repro-maxbrknn bench --figure fig10a --scale tiny
    repro-maxbrknn serve --port 0 --store shm --workers 2
    repro-maxbrknn query --url 127.0.0.1:8421 --instance ID --kind brknn \
        --site 3

``solve`` prints the optimum, its regions and the Phase I statistics;
``bench`` regenerates one paper figure as a table and ASCII chart;
``serve`` runs the persistent query daemon (:mod:`repro.serve`) and
``query`` talks to one — publish an instance once, then issue
``brknn`` / ``site_influence`` / ``impact`` / ``solve`` /
``solve_anytime`` requests against it over the socket.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench import figures as _figures
from repro.bench.config import get_profile, profile_names
from repro.bench.report import ascii_chart, format_table
from repro.core.problem import MaxBRkNNProblem
from repro.datasets.loader import load_points_csv, save_points_csv
from repro.datasets.realworld import make_ne, make_ux
from repro.datasets.synthetic import (clustered_points, normal_points,
                                      uniform_points)

_FIGURES = {
    "fig8": lambda p: _figures.fig08_effect_of_m(p),
    "fig10a": lambda p: _figures.fig10_effect_of_customers("uniform", p),
    "fig10b": lambda p: _figures.fig10_effect_of_customers("normal", p),
    "fig11a": lambda p: _figures.fig11_effect_of_sites("uniform", p),
    "fig11b": lambda p: _figures.fig11_effect_of_sites("normal", p),
    "fig12a": lambda p: _figures.fig12a_effect_of_k(p),
    "fig12b": lambda p: _figures.fig12b_probability_models(p),
    "fig13a": lambda p: _figures.fig13_pruning("uniform", p),
    "fig13b": lambda p: _figures.fig13_pruning("normal", p),
    "fig14a": lambda p: _figures.fig14_real_world("ux", p),
    "fig14b": lambda p: _figures.fig14_real_world("ne", p),
    "ablation-backends": lambda p: _figures.ablation_backends(p),
    "ablation-theorem3": lambda p: _figures.ablation_theorem3(p),
}

_GENERATORS = {
    "uniform": lambda n, seed: uniform_points(n, seed),
    "normal": lambda n, seed: normal_points(n, seed),
    "clustered": lambda n, seed: clustered_points(n, seed=seed),
    "ux": lambda n, seed: make_ux(n, seed=seed),
    "ne": lambda n, seed: make_ne(n, seed=seed),
}


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    parser.print_help()
    return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-maxbrknn",
        description="MaxFirst for MaxBRkNN (ICDE 2011 reproduction)")
    sub = parser.add_subparsers(dest="command")

    solve = sub.add_parser("solve", help="solve a MaxBRkNN instance")
    solve.add_argument("--customers", required=True,
                       help="CSV of customer points (x,y)")
    solve.add_argument("--sites", required=True,
                       help="CSV of service-site points (x,y)")
    solve.add_argument("-k", type=int, default=1,
                       help="number of nearest sites per customer")
    solve.add_argument("--probability", default=None,
                       help="comma-separated model, e.g. 0.8,0.2 "
                            "(default: uniform)")
    solve.add_argument("--weights", default=None,
                       help="CSV with one weight per customer (first "
                            "column)")
    from repro.engine import solver_names

    solve.add_argument("--solver", choices=solver_names(),
                       default="maxfirst")
    solve.add_argument("--top-t", type=int, default=1,
                       help="return the t best-scoring distinct regions "
                            "(MaxFirst only)")
    solve.add_argument("--report", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="emit the engine RunReport (per-stage timings "
                            "and counters) as JSON to stdout, or to PATH")
    solve.add_argument("--shards", type=int, default=2,
                       help="tile count for --solver maxfirst-sharded "
                            "(rounded up to a full near-square grid)")
    solve.add_argument("--shard-mode",
                       choices=("auto", "serial", "tiles", "pool",
                                "process"),
                       default="auto",
                       help="execution mode for --solver maxfirst-sharded: "
                            "serial = one unified in-process frontier, "
                            "tiles = tile-at-a-time in-process, pool = "
                            "worker processes (process is a legacy alias)")
    solve.add_argument("--pool", type=int, default=None, metavar="WORKERS",
                       help="worker-process count for pool-mode sharding "
                            "(default: min(shards, cpu count))")
    solve.add_argument("--oversubscribe", type=int, default=1,
                       help="cut each shard into this many finer tiles so "
                            "idle pool workers can steal queued work")
    solve.add_argument("--store", choices=("ram", "shm", "memmap"),
                       default=None,
                       help="NLC storage backend: ram keeps in-process "
                            "arrays (default), shm publishes one POSIX "
                            "shared-memory block, memmap a paged "
                            "on-disk file (out-of-core scale tier); "
                            "unset defers to the REPRO_STORE "
                            "environment variable")
    solve.add_argument("--metric", choices=("l2", "l1"), default="l2",
                       help="distance metric: Euclidean (default) or "
                            "Manhattan (exact rectilinear sweep)")
    solve.add_argument("--trace", default=None, metavar="PATH",
                       help="record spans during the solve and write a "
                            "trace to PATH (see docs/observability.md)")
    solve.add_argument("--trace-format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="trace output format: Chrome trace_event "
                            "JSON for Perfetto (default) or JSON lines")
    solve.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the run's observability counters and "
                            "gauges as a flat metrics.json to PATH")

    gen = sub.add_parser("generate", help="generate a point dataset")
    gen.add_argument("--kind", choices=sorted(_GENERATORS),
                     default="uniform")
    gen.add_argument("-n", type=int, required=True)
    gen.add_argument("-o", "--output", required=True)
    gen.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench", help="re-run one paper figure")
    bench.add_argument("--figure", choices=sorted(_FIGURES), required=True)
    bench.add_argument("--scale", choices=profile_names(), default=None)

    from repro.serve.protocol import REQUEST_KINDS

    serve = sub.add_parser(
        "serve", help="run the persistent query daemon")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (loopback by default)")
    serve.add_argument("--port", type=int, default=8421,
                       help="bind port; 0 picks an ephemeral one (the "
                            "daemon prints the bound address)")
    serve.add_argument("--store", choices=("ram", "shm", "memmap"),
                       default=None,
                       help="NLC storage backend for published "
                            "instances (unset defers to REPRO_STORE, "
                            "then ram)")
    serve.add_argument("--workers", type=int, default=None,
                       metavar="N",
                       help="answer batches through N pool worker "
                            "processes mapping the store zero-copy "
                            "(default: in-process)")
    serve.add_argument("--linger", type=float, default=0.005,
                       help="batch-coalescing window in seconds")
    serve.add_argument("--cache-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="result-cache byte budget (default 64 MiB; "
                            "0 disables caching)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="record serve spans; write a Chrome trace "
                            "to PATH on shutdown")
    serve.add_argument("--metrics", default=None, metavar="PATH",
                       help="write final counters/gauges as "
                            "metrics.json to PATH on shutdown")

    query = sub.add_parser(
        "query", help="talk to a running serve daemon")
    query.add_argument("--url", required=True, metavar="HOST:PORT",
                       help="daemon address, e.g. 127.0.0.1:8421")
    query.add_argument("--publish", action="store_true",
                       help="publish an instance first (needs "
                            "--customers/--sites/-k); its id becomes "
                            "the target of --kind")
    query.add_argument("--customers", default=None,
                       help="CSV of customer points (with --publish)")
    query.add_argument("--sites", default=None,
                       help="CSV of service-site points (with "
                            "--publish)")
    query.add_argument("-k", type=int, default=1,
                       help="neighbourhood size (with --publish)")
    query.add_argument("--probability", default=None,
                       help="comma-separated model or a named one "
                            "(uniform/linear/harmonic; with --publish)")
    query.add_argument("--weights", default=None,
                       help="CSV with one weight per customer (with "
                            "--publish)")
    query.add_argument("--store", choices=("ram", "shm", "memmap"),
                       default=None,
                       help="storage backend for --publish (daemon "
                            "default otherwise)")
    query.add_argument("--instance", default=None, metavar="ID",
                       help="target instance id (from a previous "
                            "--publish)")
    query.add_argument("--kind", choices=REQUEST_KINDS, default=None,
                       help="request kind to issue")
    query.add_argument("--site", type=int, default=None,
                       help="site index (--kind brknn)")
    query.add_argument("--x", type=float, default=None,
                       help="candidate x (--kind impact)")
    query.add_argument("--y", type=float, default=None,
                       help="candidate y (--kind impact)")
    query.add_argument("--top-t", type=int, default=1,
                       help="distinct regions to return (--kind solve)")
    query.add_argument("--epsilon", type=float, default=0.1,
                       help="approximation bound (--kind solve_anytime)")
    query.add_argument("--nx", type=int, default=32,
                       help="tile columns (--kind heatmap)")
    query.add_argument("--ny", type=int, default=32,
                       help="tile rows (--kind heatmap)")
    query.add_argument("--svg", default=None, metavar="PATH",
                       help="with --kind heatmap: render the tiles to "
                            "an SVG at PATH instead of printing JSON")
    return parser


def _cmd_solve(args) -> int:
    customers = load_points_csv(args.customers)
    sites = load_points_csv(args.sites)
    probability = None
    if args.probability:
        probability = [float(p) for p in args.probability.split(",")]
    weights = None
    if args.weights:
        weights = np.loadtxt(args.weights, delimiter=",", skiprows=0,
                             usecols=0, ndmin=1)
    problem = MaxBRkNNProblem(customers=customers, sites=sites, k=args.k,
                              weights=weights, probability=probability)
    if args.metric == "l1":
        from repro.l1 import solve_l1
        result = solve_l1(problem)
        print(f"L1 optimum: score {result.score:.6g} attained in "
              f"{len(result.regions)} region(s)")
        for i, region in enumerate(result.regions):
            x, y = region.representative_point()
            print(f"  region {i}: area {region.area:.6g}, e.g. location "
                  f"({x:.6g}, {y:.6g})")
        return 0
    from repro.engine import run_pipeline

    options = {}
    if args.solver == "maxfirst":
        options["top_t"] = args.top_t
    elif args.solver == "maxfirst-sharded":
        options["shards"] = args.shards
        options["mode"] = args.shard_mode
        options["max_workers"] = args.pool
        options["oversubscribe"] = args.oversubscribe
    if args.store is not None:
        options["store"] = args.store
    tracing = args.trace is not None
    if tracing:
        from repro.obs.trace import TRACER
        TRACER.reset(enabled=True)
    try:
        result, report = run_pipeline(args.solver, problem, **options)
    finally:
        if tracing:
            TRACER.disable()
    print(result.summary())
    if tracing:
        from repro.obs.export import write_chrome_trace, write_spans_jsonl
        spans = TRACER.finished()
        if args.trace_format == "chrome":
            write_chrome_trace(args.trace, spans)
        else:
            write_spans_jsonl(args.trace, spans)
        print(f"trace ({args.trace_format}, {len(spans)} spans) written "
              f"to {args.trace}")
    if args.metrics is not None:
        from repro.obs.export import write_metrics_json
        write_metrics_json(args.metrics, report.counters, report.gauges,
                           meta={"solver": report.solver,
                                 **report.meta})
        print(f"metrics written to {args.metrics}")
    if args.report is not None:
        if args.report == "-":
            print(report.to_json())
        else:
            report.save(args.report)
            print(f"report written to {args.report}")
    return 0


def _cmd_generate(args) -> int:
    points = _GENERATORS[args.kind](args.n, args.seed)
    save_points_csv(args.output, points)
    print(f"wrote {points.shape[0]} points to {args.output}")
    return 0


def _cmd_bench(args) -> int:
    profile = get_profile(args.scale)
    result = _FIGURES[args.figure](profile)
    print(f"# {result.experiment}  (profile: {profile.name})")
    for key, value in result.meta.items():
        print(f"#   {key}: {value}")
    print(format_table(result.rows))
    numeric = [k for k, v in result.rows[0].items()
               if isinstance(v, (int, float)) and k.endswith("_s")]
    if numeric and len(result.rows) > 1:
        x_key = next(iter(result.rows[0]))
        print()
        print(ascii_chart(
            [row[x_key] for row in result.rows],
            {k: [row.get(k) for row in result.rows] for k in numeric},
            title=f"{result.experiment} (seconds, log scale)"))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.daemon import ServeDaemon

    tracing = args.trace is not None
    if tracing:
        from repro.obs.trace import TRACER
        TRACER.reset(enabled=True)
    kwargs = {}
    if args.cache_bytes is not None:
        kwargs["cache_bytes"] = args.cache_bytes
    daemon = ServeDaemon(host=args.host, port=args.port,
                         store=args.store, workers=args.workers,
                         linger=args.linger, **kwargs)
    host, port = daemon.address
    # The smoke harness parses this line to find an ephemeral port, so
    # keep the format stable and flush before blocking.
    print(f"serving on {host}:{port}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.close()
    if tracing:
        from repro.obs.export import write_chrome_trace
        from repro.obs.trace import TRACER
        TRACER.disable()
        spans = TRACER.finished()
        write_chrome_trace(args.trace, spans)
        print(f"trace ({len(spans)} spans) written to {args.trace}")
    if args.metrics is not None:
        from repro.obs import metrics as _obs_metrics
        from repro.obs.export import write_metrics_json
        write_metrics_json(args.metrics,
                           _obs_metrics.REGISTRY.snapshot(),
                           _obs_metrics.REGISTRY.gauges_snapshot(),
                           meta={"component": "serve"})
        print(f"metrics written to {args.metrics}")
    return 0


def _save_heatmap_svg(response, path: str) -> None:
    """Render a served ``heatmap`` response to an SVG file."""
    from repro.core.heatmap import InfluenceHeatmap
    from repro.geometry.rect import Rect
    from repro.viz.heatmap import render_heatmap

    nx, ny = response.nx, response.ny
    heatmap = InfluenceHeatmap(
        space=Rect(*response.bounds), nx=nx, ny=ny,
        lower=np.asarray(response.lower,
                         dtype=np.float64).reshape(ny, nx),
        upper=np.asarray(response.upper,
                         dtype=np.float64).reshape(ny, nx))
    render_heatmap(heatmap).save(path)


def _cmd_query(args) -> int:
    import json as _json

    from repro.serve.client import ServeClient, ServeError
    from repro.serve.protocol import (AnytimeSolveRequest, BrknnRequest,
                                      HeatmapRequest, ImpactRequest,
                                      SiteInfluenceRequest, SolveRequest,
                                      encode_response)

    host, _, port = args.url.rpartition(":")
    if not host or not port.isdigit():
        print(f"--url must be HOST:PORT, got {args.url!r}",
              file=sys.stderr)
        return 2
    with ServeClient(host, int(port)) as client:
        try:
            instance = args.instance
            if args.publish:
                if not args.customers or not args.sites:
                    print("--publish needs --customers and --sites",
                          file=sys.stderr)
                    return 2
                doc = {
                    "customers": load_points_csv(
                        args.customers).tolist(),
                    "sites": load_points_csv(args.sites).tolist(),
                    "k": args.k,
                }
                if args.probability:
                    if "," in args.probability:
                        doc["probability"] = [
                            float(p)
                            for p in args.probability.split(",")]
                    else:
                        doc["probability"] = args.probability
                if args.weights:
                    doc["weights"] = np.loadtxt(
                        args.weights, delimiter=",", usecols=0,
                        ndmin=1).tolist()
                if args.store:
                    doc["store"] = args.store
                instance = client.publish(doc)
                print(f"published instance {instance}")
            if args.kind is None:
                return 0
            if instance is None:
                print("--kind needs --instance (or --publish)",
                      file=sys.stderr)
                return 2
            if args.kind == "brknn":
                if args.site is None:
                    print("--kind brknn needs --site", file=sys.stderr)
                    return 2
                request = BrknnRequest(instance, args.site)
            elif args.kind == "site_influence":
                request = SiteInfluenceRequest(instance)
            elif args.kind == "impact":
                if args.x is None or args.y is None:
                    print("--kind impact needs --x and --y",
                          file=sys.stderr)
                    return 2
                request = ImpactRequest(instance, args.x, args.y)
            elif args.kind == "solve":
                request = SolveRequest(instance, top_t=args.top_t)
            elif args.kind == "heatmap":
                request = HeatmapRequest(instance, nx=args.nx,
                                         ny=args.ny)
            else:
                request = AnytimeSolveRequest(instance, args.epsilon)
            response, = client.query([request])
            if args.kind == "heatmap" and args.svg is not None:
                if response.kind != "heatmap":
                    print(f"serve error: {response!r}", file=sys.stderr)
                    return 1
                _save_heatmap_svg(response, args.svg)
                print(f"heat map written to {args.svg}")
                return 0
            print(_json.dumps(encode_response(response), indent=2))
            return 0
        except ServeError as exc:
            print(f"serve error: {exc}", file=sys.stderr)
            return 1


if __name__ == "__main__":
    sys.exit(main())
