"""Axis-aligned rectangles.

Rectangles play two roles in this library: they are the *quadrants* that
MaxFirst recursively partitions (Algorithm 1 of the paper), and they are the
bounding boxes stored in the R-tree nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are legal; they arise
    as bounding boxes of single points.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"malformed Rect: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "Rect":
        """Bounding box of an iterable of ``(x, y)`` pairs.

        Raises ``ValueError`` on an empty iterable.
        """
        it = iter(points)
        try:
            x0, y0 = next(it)
        except StopIteration:
            raise ValueError("Rect.from_points: empty iterable") from None
        xmin = xmax = float(x0)
        ymin = ymax = float(y0)
        for x, y in it:
            xmin = min(xmin, x)
            xmax = max(xmax, x)
            ymin = min(ymin, y)
            ymax = max(ymax, y)
        return cls(xmin, ymin, xmax, ymax)

    @classmethod
    def from_center(cls, cx: float, cy: float, half_width: float,
                    half_height: float | None = None) -> "Rect":
        """Rectangle centred at ``(cx, cy)``; square when only one half-extent
        is given."""
        if half_height is None:
            half_height = half_width
        return cls(cx - half_width, cy - half_height,
                   cx + half_width, cy + half_height)

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) * 0.5,
                     (self.ymin + self.ymax) * 0.5)

    @property
    def diagonal(self) -> float:
        import math
        return math.hypot(self.width, self.height)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower left."""
        return (
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies in the closed rectangle."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (self.xmin <= other.xmin and other.xmax <= self.xmax
                and self.ymin <= other.ymin and other.ymax <= self.ymax)

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        return (self.xmin <= other.xmax and other.xmin <= self.xmax
                and self.ymin <= other.ymax and other.ymin <= self.ymax)

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both operands."""
        return Rect(min(self.xmin, other.xmin), min(self.ymin, other.ymin),
                    max(self.xmax, other.xmax), max(self.ymax, other.ymax))

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (R-tree insertion metric)."""
        return self.union(other).area - self.area

    def expanded(self, margin: float) -> "Rect":
        """A copy grown by ``margin`` on every side."""
        return Rect(self.xmin - margin, self.ymin - margin,
                    self.xmax + margin, self.ymax + margin)

    def split_at(self, x: float, y: float) -> tuple["Rect", ...]:
        """Split into (up to) four sub-rectangles at an interior point.

        This is the primitive behind both the regular centre split and the
        intersection-point split of Algorithm 1.  The split point must lie in
        the closed rectangle; sub-rectangles that would be degenerate *slivers*
        (the point lying exactly on an edge) are still returned — degenerate
        rectangles are harmless downstream — except that exact duplicates are
        dropped.
        """
        if not self.contains_point(x, y):
            raise ValueError(f"split point ({x}, {y}) outside {self}")
        quads = (
            Rect(self.xmin, self.ymin, x, y),
            Rect(x, self.ymin, self.xmax, y),
            Rect(self.xmin, y, x, self.ymax),
            Rect(x, y, self.xmax, self.ymax),
        )
        seen: set[Rect] = set()
        out: list[Rect] = []
        for quad in quads:
            if quad not in seen:
                seen.add(quad)
                out.append(quad)
        return tuple(out)

    def split_center(self) -> tuple["Rect", ...]:
        """Split into four equal quadrants at the centre (the regular split)."""
        cx = (self.xmin + self.xmax) * 0.5
        cy = (self.ymin + self.ymax) * 0.5
        if self.xmin < cx < self.xmax and self.ymin < cy < self.ymax:
            # Strictly interior centre: the four quadrants are distinct,
            # so skip split_at's containment check and dedup (this runs
            # once per MaxFirst split).
            return (
                Rect(self.xmin, self.ymin, cx, cy),
                Rect(cx, self.ymin, self.xmax, cy),
                Rect(self.xmin, cy, cx, self.ymax),
                Rect(cx, cy, self.xmax, self.ymax),
            )
        # Degenerate (zero-extent side, or a side so thin the midpoint
        # rounds onto an edge): fall back to the deduplicating split.
        return self.split_at(cx, cy)

    def min_distance_to_point(self, x: float, y: float) -> float:
        """Distance from ``(x, y)`` to the closest point of the rectangle
        (0 when inside)."""
        import math
        dx = max(self.xmin - x, 0.0, x - self.xmax)
        dy = max(self.ymin - y, 0.0, y - self.ymax)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, x: float, y: float) -> float:
        """Distance from ``(x, y)`` to the farthest point of the rectangle."""
        import math
        dx = max(x - self.xmin, self.xmax - x)
        dy = max(y - self.ymin, self.ymax - y)
        return math.hypot(dx, dy)
