"""Robust construction of the intersection of a set of closed disks.

The construction derives, for every circle, the angular portion of its
circumference that lies inside all other disks (an intersection of angular
intervals).  The surviving portions are exactly the boundary arcs of the
disk-intersection region.  This direct O(n^2) derivation is preferred over
incremental boundary clipping: ``n`` here is the handful of NLCs covering a
maximum-score quadrant, and the interval arithmetic has no cascading
floating-point cases.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.geometry.arcs import TWO_PI, AngularIntervals, Arc, ArcRegion
from repro.geometry.circle import Circle, circle_circle_intersection
from repro.geometry.point import Point


class DisjointDisksError(ValueError):
    """Raised when the disks have empty common intersection.

    The MaxFirst pipeline never triggers this on its own output (a
    maximum-score quadrant is covered by all its ``Q.C`` disks), but the
    public geometry API validates its input.
    """


def intersect_disks(circles: Iterable[Circle], tol: float = 1e-9) -> ArcRegion:
    """Intersection of closed disks as an :class:`ArcRegion`.

    Handles all the degeneracies the MaxBRkNN instances produce:

    * a single disk (region is the full disk);
    * one disk containing the whole intersection (that disk contributes the
      only arcs);
    * disks meeting in exactly one point — the *intersection point problem*
      of Section IV-A — yielding a degenerate point region;
    * duplicate disks (customers at identical locations).

    Raises :class:`DisjointDisksError` when the intersection is empty.
    """
    unique = _dedupe(circles, tol)
    if not unique:
        raise ValueError("intersect_disks: no circles given")
    if len(unique) == 1:
        only = unique[0]
        return ArcRegion(circles=(only,), arcs=(Arc(only, 0.0, TWO_PI),))

    arcs: list[Arc] = []
    for i, ci in enumerate(unique):
        intervals = AngularIntervals()
        alive = True
        for j, cj in enumerate(unique):
            if i == j:
                continue
            constraint = _arc_inside(ci, cj, tol)
            if constraint is None:  # cj's disk covers circle i: no constraint
                continue
            center, half_width = constraint
            if half_width <= 0.0:
                alive = False  # circle i lies wholly outside disk j
                break
            intervals.intersect_with(center, half_width)
            if intervals.is_empty:
                alive = False
                break
        if not alive:
            continue
        if intervals.is_full:
            arcs.append(Arc(ci, 0.0, TWO_PI))
        else:
            for start, end in intervals.intervals():
                sweep = end - start
                if sweep > tol:
                    arcs.append(Arc(ci, start, sweep))

    if arcs:
        return ArcRegion(circles=tuple(unique), arcs=tuple(arcs), _tol=tol)

    # No boundary arcs survive: the region is a single point or empty.
    point = _common_point(unique, tol)
    if point is not None:
        return ArcRegion(circles=tuple(unique), arcs=(),
                         degenerate_point=point, _tol=tol)
    raise DisjointDisksError("the disks have no common point")


class IncrementalDiskIntersection:
    """Incrementally maintained intersection of closed disks.

    Phase II of MaxFirst grows its region one disk at a time;
    re-running :func:`intersect_disks` from scratch after every
    addition repeats all earlier constraint work.  This class keeps the
    per-circle :class:`AngularIntervals` state alive between additions,
    so each :meth:`add` costs one constraint exchange per live circle
    instead of a full O(n²) rebuild.

    **Bit-identity.**  :meth:`region` returns float-for-float the
    :class:`ArcRegion` that ``intersect_disks(added_circles, tol=tol)``
    returns.  The from-scratch pass applies, to each circle *i*, the
    angular constraints of the other circles in list order; adding disks
    one at a time replays exactly that sequence — the new disk appends
    one ``intersect_with`` call to every predecessor's interval set, and
    the new circle's own intervals are built against the predecessors in
    list order — so circle *i* sees constraints ``0, …, i-1, i+1, …, n``
    in both constructions, and every interval endpoint (hence every arc)
    comes out identical.  Dead circles stay dead: constraints only
    shrink interval sets, which mirrors the from-scratch early ``break``
    (the property test in ``tests/geometry`` checks the equivalence
    prefix-by-prefix, degeneracies included).
    """

    __slots__ = ("_tol", "_circles", "_intervals", "_alive")

    def __init__(self, tol: float = 1e-9) -> None:
        self._tol = tol
        self._circles: list[Circle] = []
        self._intervals: list[AngularIntervals] = []
        self._alive: list[bool] = []

    def __len__(self) -> int:
        return len(self._circles)

    @property
    def circles(self) -> tuple[Circle, ...]:
        """The deduplicated circles added so far, in insertion order."""
        return tuple(self._circles)

    def add(self, circle: Circle) -> bool:
        """Clip the running intersection against one more disk.

        Returns ``False`` (a no-op) when the disk duplicates one already
        added — the same ``tol``-box test :func:`intersect_disks` uses
        in its dedup pass — and ``True`` otherwise.
        """
        tol = self._tol
        for o in self._circles:
            if (abs(circle.cx - o.cx) <= tol
                    and abs(circle.cy - o.cy) <= tol
                    and abs(circle.r - o.r) <= tol):
                return False
        new_intervals = AngularIntervals()
        new_alive = True
        for j, cj in enumerate(self._circles):
            if self._alive[j]:
                # The new disk constrains live predecessor j.
                constraint = _arc_inside(cj, circle, tol)
                if constraint is not None:
                    center, half_width = constraint
                    if half_width <= 0.0:
                        self._alive[j] = False
                    else:
                        intervals = self._intervals[j]
                        intervals.intersect_with(center, half_width)
                        if intervals.is_empty:
                            self._alive[j] = False
            if new_alive:
                # Predecessor j constrains the new circle (list order,
                # with the from-scratch early-stop once dead).
                constraint = _arc_inside(circle, cj, tol)
                if constraint is not None:
                    center, half_width = constraint
                    if half_width <= 0.0:
                        new_alive = False
                    else:
                        new_intervals.intersect_with(center, half_width)
                        if new_intervals.is_empty:
                            new_alive = False
        self._circles.append(circle)
        self._intervals.append(new_intervals)
        self._alive.append(new_alive)
        return True

    def region(self) -> ArcRegion:
        """The current intersection as an :class:`ArcRegion`.

        Identical (bit-for-bit) to ``intersect_disks`` over the added
        circles; raises :class:`DisjointDisksError` /
        :class:`ValueError` in the same cases.
        """
        unique = self._circles
        if not unique:
            raise ValueError("intersect_disks: no circles given")
        if len(unique) == 1:
            only = unique[0]
            return ArcRegion(circles=(only,),
                             arcs=(Arc(only, 0.0, TWO_PI),))
        tol = self._tol
        arcs: list[Arc] = []
        for ci, alive, intervals in zip(unique, self._alive,
                                        self._intervals):
            if not alive:
                continue
            if intervals.is_full:
                arcs.append(Arc(ci, 0.0, TWO_PI))
            else:
                for start, end in intervals.intervals():
                    sweep = end - start
                    if sweep > tol:
                        arcs.append(Arc(ci, start, sweep))
        if arcs:
            return ArcRegion(circles=tuple(unique), arcs=tuple(arcs),
                             _tol=tol)
        point = _common_point(unique, tol)
        if point is not None:
            return ArcRegion(circles=tuple(unique), arcs=(),
                             degenerate_point=point, _tol=tol)
        raise DisjointDisksError("the disks have no common point")


def disks_common_point(circles: Sequence[Circle],
                       tol: float = 1e-9) -> Point | None:
    """A point where *all* circle circumferences meet, if one exists.

    This is the detector for the intersection-point problem (Algorithm 1,
    lines 26-27): when the NLCs in ``Q.I - Q.C`` all pass through one point
    ``p`` inside ``Q``, the quadrant must be split at ``p`` or the regular
    centre split recurses forever.  Unlike :func:`_common_point` (interior
    membership), this requires the point to lie on every circumference
    within ``tol``.
    """
    if len(circles) < 2:
        return None
    candidates = circle_circle_intersection(circles[0], circles[1], tol)
    for p in candidates:
        if all(abs(c.distance_to_center(p.x, p.y) - c.r) <= tol
               for c in circles[2:]):
            return p
    return None


def _dedupe(circles: Iterable[Circle], tol: float) -> list[Circle]:
    out: list[Circle] = []
    for c in circles:
        duplicate = any(
            abs(c.cx - o.cx) <= tol and abs(c.cy - o.cy) <= tol
            and abs(c.r - o.r) <= tol
            for o in out
        )
        if not duplicate:
            out.append(c)
    return out


def _arc_inside(ci: Circle, cj: Circle,
                tol: float) -> tuple[float, float] | None:
    """Angular window of circle ``ci`` lying inside disk ``cj``.

    Returns ``None`` when disk ``cj`` covers all of circle ``ci`` (no
    constraint), or ``(center_angle, half_width)`` otherwise.  A
    ``half_width`` of 0 means no part of circle ``ci`` is inside ``cj``.
    """
    d = math.hypot(cj.cx - ci.cx, cj.cy - ci.cy)
    if d + ci.r <= cj.r + tol:
        return None  # disk j contains circle i entirely
    if d >= ci.r + cj.r - tol or d + cj.r <= ci.r + tol:
        # Disks (nearly) disjoint, or disk j strictly inside disk i: circle
        # i's circumference never enters disk j.
        return (0.0, 0.0)
    cos_alpha = (d * d + ci.r * ci.r - cj.r * cj.r) / (2.0 * d * ci.r)
    cos_alpha = max(-1.0, min(1.0, cos_alpha))
    alpha = math.acos(cos_alpha)
    center = math.atan2(cj.cy - ci.cy, cj.cx - ci.cx)
    return (center, alpha)


def _common_point(circles: Sequence[Circle], tol: float) -> Point | None:
    """A point in the intersection of all closed disks when that
    intersection has collapsed to (numerically) a single point."""
    for i in range(len(circles)):
        for j in range(i + 1, len(circles)):
            for p in circle_circle_intersection(circles[i], circles[j], tol):
                if all(c.contains_point(p.x, p.y, tol=tol) for c in circles):
                    return p
    # Tangent containments can meet at a point that is not a circumference
    # crossing of any pair; fall back to testing circle centres.
    for c in circles:
        if all(o.contains_point(c.cx, c.cy, tol=tol) for o in circles):
            return Point(c.cx, c.cy)
    return None
